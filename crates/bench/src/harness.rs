//! In-tree micro-benchmark harness (the `criterion` replacement).
//!
//! Each benchmark id is measured as `samples` timed samples of
//! `iters_per_sample` closure invocations; the per-iteration wall time of
//! every sample feeds the summary statistics (min / mean / median / p95 /
//! p99 / max). The iteration count is auto-calibrated during warmup so a
//! sample lasts long enough for the clock to resolve even
//! nanosecond-scale bodies. Suites that measure real per-event latencies
//! (the serve load generator) feed them in directly via
//! [`Harness::record_latencies`] instead of the timed-sample loop.
//!
//! On [`Harness::finish`] a suite prints an aligned table to stdout and
//! writes `BENCH_<suite>.json` — to `TDF_RESULTS_DIR` when set, else to
//! the *workspace root*. `cargo bench` runs bench binaries with the
//! package directory (`crates/bench/`) as their cwd, so a cwd-relative
//! default would scatter the artefacts under `crates/bench/` where
//! nothing looks for them. The JSON is the baseline artefact future
//! perf PRs diff against.
//!
//! Environment knobs (all optional):
//!
//! | variable              | default | meaning                          |
//! |-----------------------|---------|----------------------------------|
//! | `TDF_BENCH_SAMPLES`   | 30      | timed samples per benchmark      |
//! | `TDF_BENCH_SAMPLE_MS` | 20      | target duration of one sample    |
//! | `TDF_BENCH_WARMUP_MS` | 100     | warmup (and calibration) time    |
//!
//! CI smoke runs set small values so `cargo test --benches`-style
//! executions finish in seconds; local perf work uses the defaults.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Directory where `BENCH_<suite>.json` artefacts land: an explicit
/// non-empty `TDF_RESULTS_DIR` wins; otherwise the workspace root,
/// resolved from this crate's manifest directory so the answer does not
/// depend on the process cwd (`cargo bench` sets it to `crates/bench/`).
fn results_dir() -> PathBuf {
    results_dir_from(std::env::var_os("TDF_RESULTS_DIR"))
}

fn results_dir_from(explicit: Option<std::ffi::OsString>) -> PathBuf {
    match explicit {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/bench sits two levels below the workspace root")
            .to_path_buf(),
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Summary statistics for one benchmark id (per-iteration nanoseconds).
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark identifier, e.g. `pir/linear_2server_n4096`.
    pub id: String,
    /// `tdf-par` thread count in effect while the body ran.
    pub threads: usize,
    /// Closure invocations per timed sample (calibrated).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Mean over samples, ns per iteration.
    pub mean_ns: f64,
    /// Median over samples, ns per iteration.
    pub median_ns: f64,
    /// 95th percentile over samples, ns per iteration.
    pub p95_ns: f64,
    /// 99th percentile over samples, ns per iteration. For classic
    /// timed-sample benches with few samples this coincides with
    /// `max_ns`; it earns its keep on [`Harness::record_latencies`]
    /// entries, where every sample is one real request.
    pub p99_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Observability counters for one invocation of the body, captured by
    /// [`Harness::bench_with_obs`]; empty for plain [`Harness::bench`]
    /// runs. Sorted by name so the JSON artefact is deterministic.
    pub counters: Vec<(String, u64)>,
}

/// Percentile over a sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A benchmark suite: measure with [`bench`](Harness::bench), then
/// [`finish`](Harness::finish) to report and persist.
pub struct Harness {
    suite: String,
    samples: usize,
    sample_ns: u64,
    warmup_ns: u64,
    results: Vec<Summary>,
}

impl Harness {
    /// Creates a suite named `suite` (drives the `BENCH_<suite>.json`
    /// file name), reading the `TDF_BENCH_*` environment knobs.
    pub fn new(suite: &str) -> Self {
        Self {
            suite: suite.to_owned(),
            samples: env_u64("TDF_BENCH_SAMPLES", 30).max(1) as usize,
            sample_ns: env_u64("TDF_BENCH_SAMPLE_MS", 20) * 1_000_000,
            warmup_ns: env_u64("TDF_BENCH_WARMUP_MS", 100) * 1_000_000,
            results: Vec::new(),
        }
    }

    /// Measures `f`, recording per-iteration times under `id`. The
    /// closure's return value is passed through [`black_box`] so the
    /// optimiser cannot delete the measured work.
    pub fn bench<T, F: FnMut() -> T>(&mut self, id: &str, mut f: F) {
        // Warmup and calibration: run until the warmup budget is spent,
        // counting how many iterations fit.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed().as_nanos() as u64 >= self.warmup_ns {
                break;
            }
        }
        let per_iter_ns = (warmup_start.elapsed().as_nanos() as u64 / warmup_iters.max(1)).max(1);
        let iters_per_sample = (self.sample_ns / per_iter_ns).clamp(1, 1_000_000_000);

        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            times.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        times.sort_by(f64::total_cmp);
        let summary = Summary {
            id: id.to_owned(),
            threads: par::threads(),
            iters_per_sample,
            samples: times.len(),
            min_ns: times[0],
            mean_ns: times.iter().sum::<f64>() / times.len() as f64,
            median_ns: percentile(&times, 0.5),
            p95_ns: percentile(&times, 0.95),
            p99_ns: percentile(&times, 0.99),
            max_ns: *times.last().expect("samples >= 1"),
            counters: Vec::new(),
        };
        eprintln!(
            "{:<44} median {:>12}  p95 {:>12}",
            format!("{}/{}", self.suite, id),
            fmt_ns(summary.median_ns),
            fmt_ns(summary.p95_ns),
        );
        self.results.push(summary);
    }

    /// Measures `f` with the `tdf-par` thread count pinned to `threads`
    /// for the duration (warmup included). The recorded [`Summary`] keeps
    /// the pinned count, so one suite can hold a thread-scaling series.
    pub fn bench_at_threads<T, F: FnMut() -> T>(&mut self, id: &str, threads: usize, f: F) {
        par::with_threads(threads, || self.bench(id, f));
    }

    /// Records a summary from externally measured per-event latencies
    /// (e.g. per-request socket round trips from a load generator),
    /// bypassing the timed-sample loop: every latency is one sample and
    /// `iters_per_sample` is 1. `counters` lands in the JSON artefact
    /// verbatim (sorted by name); use it for run-level aggregates like
    /// throughput. Empty latency slices are rejected.
    pub fn record_latencies(
        &mut self,
        id: &str,
        latencies_ns: &[u64],
        counters: Vec<(String, u64)>,
    ) {
        assert!(!latencies_ns.is_empty(), "no latencies recorded for {id}");
        let mut times: Vec<f64> = latencies_ns.iter().map(|&ns| ns as f64).collect();
        times.sort_by(f64::total_cmp);
        let mut counters = counters;
        counters.sort();
        let summary = Summary {
            id: id.to_owned(),
            threads: par::threads(),
            iters_per_sample: 1,
            samples: times.len(),
            min_ns: times[0],
            mean_ns: times.iter().sum::<f64>() / times.len() as f64,
            median_ns: percentile(&times, 0.5),
            p95_ns: percentile(&times, 0.95),
            p99_ns: percentile(&times, 0.99),
            max_ns: *times.last().expect("non-empty"),
            counters,
        };
        eprintln!(
            "{:<44} median {:>12}  p95 {:>12}  p99 {:>12}",
            format!("{}/{}", self.suite, id),
            fmt_ns(summary.median_ns),
            fmt_ns(summary.p95_ns),
            fmt_ns(summary.p99_ns),
        );
        self.results.push(summary);
    }

    /// Measures `f` like [`bench`](Harness::bench), then captures the
    /// observability counters of exactly one extra invocation and attaches
    /// them to the recorded [`Summary`] (embedded in the JSON artefact as
    /// a `"counters"` object). The capture invocation runs outside the
    /// timing loop, at whatever `TDF_OBS` level is in effect — with
    /// observability disabled the counter set is simply empty.
    pub fn bench_with_obs<T, F: FnMut() -> T>(&mut self, id: &str, mut f: F) {
        self.bench(id, &mut f);
        obs::reset();
        black_box(f());
        let snap = obs::snapshot();
        obs::reset();
        let entry = self.results.last_mut().expect("bench just pushed");
        entry.counters = snap.counters.into_iter().collect();
    }

    /// Prints the suite table and writes `BENCH_<suite>.json`; returns
    /// the path written.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let mut out = String::new();
        out.push_str(&format!(
            "\n== {} ==\n{:<40} {:>12} {:>12} {:>12} {:>8}\n",
            self.suite, "benchmark", "median", "p95", "min", "iters"
        ));
        for s in &self.results {
            out.push_str(&format!(
                "{:<40} {:>12} {:>12} {:>12} {:>8}\n",
                s.id,
                fmt_ns(s.median_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.min_ns),
                s.iters_per_sample
            ));
        }
        println!("{out}");

        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.to_json())?;
        println!("wrote {}", path.display());
        Ok(path)
    }

    /// The suite's JSON document (stable key order, one result per entry).
    pub fn to_json(&self) -> String {
        let mut json = format!("{{\"suite\":\"{}\",\"results\":[", self.suite);
        for (i, s) in self.results.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"id\":\"{}\",\"threads\":{},\"iters_per_sample\":{},\"samples\":{},\
                 \"min_ns\":{:.1},\"mean_ns\":{:.1},\"median_ns\":{:.1},\
                 \"p95_ns\":{:.1},\"p99_ns\":{:.1},\"max_ns\":{:.1}}}",
                s.id,
                s.threads,
                s.iters_per_sample,
                s.samples,
                s.min_ns,
                s.mean_ns,
                s.median_ns,
                s.p95_ns,
                s.p99_ns,
                s.max_ns
            ));
            if !s.counters.is_empty() {
                json.pop(); // reopen the result object
                json.push_str(",\"counters\":{");
                for (i, (name, value)) in s.counters.iter().enumerate() {
                    if i > 0 {
                        json.push(',');
                    }
                    json.push_str(&format!("\"{name}\":{value}"));
                }
                json.push_str("}}");
            }
        }
        json.push_str("]}");
        json
    }

    /// Results recorded so far (for tests).
    pub fn results(&self) -> &[Summary] {
        &self.results
    }
}

/// Human formatting: ns with unit scaling.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> Harness {
        Harness {
            suite: "probe".into(),
            samples: 5,
            sample_ns: 50_000,
            warmup_ns: 50_000,
            results: Vec::new(),
        }
    }

    #[test]
    fn bench_records_ordered_statistics() {
        let mut h = tiny_harness();
        h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let s = &h.results()[0];
        assert_eq!(s.samples, 5);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.max_ns);
        assert!(s.min_ns > 0.0);
    }

    #[test]
    fn json_contains_median_and_p95() {
        let mut h = tiny_harness();
        h.bench("noop", || 1u64);
        let json = h.to_json();
        assert!(json.contains("\"suite\":\"probe\""));
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"p95_ns\""));
        assert!(json.contains("\"id\":\"noop\""));
        assert!(json.contains("\"threads\":"));
    }

    #[test]
    fn bench_at_threads_records_pinned_count() {
        let mut h = tiny_harness();
        h.bench_at_threads("pinned", 3, par::threads);
        let s = &h.results()[0];
        assert_eq!(s.threads, 3);
    }

    #[test]
    fn bench_with_obs_embeds_counters() {
        let mut h = tiny_harness();
        obs::set_level(1);
        h.bench_with_obs("counted", || obs::count("bench.test.events", 3));
        obs::set_level(0);
        let s = &h.results()[0];
        assert_eq!(
            s.counters,
            vec![("bench.test.events".to_owned(), 3)],
            "one capture invocation, exactly once"
        );
        let json = h.to_json();
        assert!(
            json.contains("\"counters\":{\"bench.test.events\":3}"),
            "{json}"
        );
    }

    #[test]
    fn plain_bench_has_no_counters_key() {
        let mut h = tiny_harness();
        h.bench("noop", || 1u64);
        assert!(h.results()[0].counters.is_empty());
        assert!(!h.to_json().contains("\"counters\""));
    }

    #[test]
    fn record_latencies_summarises_raw_events() {
        let mut h = tiny_harness();
        // 1..=1000 ns, shuffled order: the API must sort before ranking.
        let mut lat: Vec<u64> = (1..=1000).rev().collect();
        lat.rotate_left(317);
        h.record_latencies(
            "load",
            &lat,
            vec![("throughput_rps".into(), 42), ("answered".into(), 990)],
        );
        let s = &h.results()[0];
        assert_eq!(s.samples, 1000);
        assert_eq!(s.iters_per_sample, 1);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 500.0);
        assert_eq!(s.p95_ns, 950.0);
        assert_eq!(s.p99_ns, 990.0);
        assert_eq!(s.max_ns, 1000.0);
        // Counters are sorted by name for a deterministic artefact.
        assert_eq!(s.counters[0].0, "answered");
        let json = h.to_json();
        assert!(json.contains("\"p99_ns\":990.0"), "{json}");
        assert!(json.contains("\"counters\":{\"answered\":990,\"throughput_rps\":42}"));
    }

    #[test]
    fn json_reports_p99_for_timed_benches_too() {
        let mut h = tiny_harness();
        h.bench("noop", || 1u64);
        let s = &h.results()[0];
        assert!(s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
        assert!(h.to_json().contains("\"p99_ns\""));
    }

    #[test]
    fn results_dir_honours_an_explicit_override() {
        assert_eq!(
            results_dir_from(Some("custom/results".into())),
            PathBuf::from("custom/results")
        );
    }

    #[test]
    fn results_dir_defaults_to_the_workspace_root_not_the_cwd() {
        // Regression: bench binaries run with crates/bench/ as cwd, so a
        // "." default used to bury BENCH_*.json inside the package
        // directory. The default must be the workspace root regardless
        // of cwd, and an empty TDF_RESULTS_DIR counts as unset.
        let dir = results_dir_from(None);
        assert!(dir.join("Cargo.toml").is_file(), "{}", dir.display());
        assert!(
            dir.join("crates/bench/Cargo.toml").is_file(),
            "not the workspace root: {}",
            dir.display()
        );
        assert!(
            !dir.ends_with("crates/bench"),
            "artefacts must not land in the package directory"
        );
        assert_eq!(results_dir_from(Some("".into())), dir);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&xs, 0.5), 5.0);
        assert_eq!(percentile(&xs, 0.95), 10.0);
        assert_eq!(percentile(&xs, 1.0), 10.0);
        assert_eq!(percentile(&[42.0], 0.5), 42.0);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(950.0), "950 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
