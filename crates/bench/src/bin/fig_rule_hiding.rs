//! **F5** — association-rule hiding [25]: sensitive rules hidden versus
//! collateral damage (lost legitimate rules, ghost rules, item deletions)
//! as the set of rules to hide grows.

use tdf_bench::Series;
use tdf_microdata::synth::{transactions, TransactionConfig};
use tdf_ppdm::rules::{generate_rules, hide_rules, Itemset};

fn main() {
    let txs = transactions(&TransactionConfig {
        seed: tdf_bench::seed_from_env(0xBA5_CE7),
        ..Default::default()
    });
    let (min_support, min_confidence) = (0.08, 0.4);
    let before = generate_rules(&txs, min_support, min_confidence);
    println!(
        "F5 — rule hiding on {} transactions; {} rules minable at support {} / confidence {}\n",
        txs.len(),
        before.len(),
        min_support,
        min_confidence
    );

    let sensitive_pool: Vec<(Itemset, Itemset)> = vec![
        (vec![1], vec![2]),
        (vec![3], vec![4]),
        (vec![4], vec![5]),
        (vec![1], vec![7]),
    ];

    let mut series = Series::new(
        "fig_rule_hiding",
        &[
            "hidden_rules",
            "deletions",
            "still_visible",
            "lost_rules",
            "ghost_rules",
            "remaining_rules",
        ],
    );
    for take in 0..=sensitive_pool.len() {
        let sensitive = &sensitive_pool[..take];
        let report = hide_rules(&txs, sensitive, min_support, min_confidence);
        let after = generate_rules(&report.transactions, min_support, min_confidence);
        println!(
            "hide {take}: deletions {:>4}, still visible {}, lost {:>2}, ghosts {:>2}, rules left {:>3}",
            report.deletions,
            report.still_visible.len(),
            report.lost_rules.len(),
            report.ghost_rules.len(),
            after.len()
        );
        series.push(&[
            take.to_string(),
            report.deletions.to_string(),
            report.still_visible.len().to_string(),
            report.lost_rules.len().to_string(),
            report.ghost_rules.len().to_string(),
            after.len().to_string(),
        ]);
    }
    series.save().expect("results dir writable");
    println!(
        "\nReading: hiding succeeds (still_visible = 0) but collateral grows with the\n\
         number of hidden rules — the utility cost of use-specific owner privacy."
    );
}
