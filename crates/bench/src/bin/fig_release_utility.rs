//! **F7** (ablation) — data utility of each Table 2 release: a histogram
//! Bayes classifier predicting severe hypertension (systolic > 140) from
//! the key attributes (height, weight) is trained on every technology's
//! release and tested on clean held-out data. Together with `table2` this
//! charts the §6 risk–utility tension technology by technology.

use tdf_bench::{f3, Series};
use tdf_core::scoring::{release_for, Scenario};
use tdf_core::technology::TechnologyClass;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_microdata::Dataset;
use tdf_ppdm::classifier::HistogramBayes;
use tdf_ppdm::decision_tree::{DecisionTree, TreeConfig};

fn to_rows(data: &Dataset) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rows = Vec::with_capacity(data.num_rows());
    let mut labels = Vec::with_capacity(data.num_rows());
    for r in data.rows() {
        rows.push(vec![
            r[0].as_f64().unwrap_or(0.0),
            r[1].as_f64().unwrap_or(0.0),
        ]);
        labels.push(usize::from(r[2].as_f64().unwrap_or(0.0) > 140.0));
    }
    (rows, labels)
}

fn main() {
    let scenario = Scenario {
        n: 2000,
        seed: tdf_bench::seed_from_env(0x7D_F2007),
        ..Default::default()
    };
    // Standardize features into a common binning domain.
    let (lo, hi, bins) = (40.0f64, 220.0f64, 36usize);
    let test = patients(&PatientConfig {
        n: 800,
        seed: scenario.seed ^ 0xE57,
        ..Default::default()
    });
    let (test_rows, test_labels) = to_rows(&test);

    println!(
        "F7 — classifier utility of each release (train n = {}, test n = 800)\n",
        scenario.n
    );
    let mut series = Series::new(
        "fig_release_utility",
        &["technology", "bayes_accuracy", "tree_accuracy"],
    );

    let tree_cfg = TreeConfig::default();
    let eval = |rows: &[Vec<f64>], labels: &[usize]| -> (f64, f64) {
        let bayes =
            HistogramBayes::train(rows, labels, 2, lo, hi, bins).accuracy(&test_rows, &test_labels);
        let tree =
            DecisionTree::train(rows, labels, 2, &tree_cfg).accuracy(&test_rows, &test_labels);
        (bayes, tree)
    };

    // Baseline: train on the raw original.
    let original = scenario.population();
    let (rows, labels) = to_rows(&original);
    let (base, base_tree) = eval(&rows, &labels);
    println!(
        "{:<38} bayes {:.3}  tree {:.3}",
        "original data (no privacy)", base, base_tree
    );
    series.push(&["original".to_owned(), f3(base), f3(base_tree)]);

    for tech in [
        TechnologyClass::Sdc,
        TechnologyClass::UseSpecificNonCryptoPpdm,
        TechnologyClass::GenericNonCryptoPpdm,
        TechnologyClass::Pir,
    ] {
        let release = release_for(tech, &scenario)
            .expect("releases build")
            .expect("these classes release data");
        let (rows, labels) = to_rows(&release);
        let (bayes, tree) = eval(&rows, &labels);
        println!("{:<38} bayes {:.3}  tree {:.3}", tech.name(), bayes, tree);
        series.push(&[tech.name().to_owned(), f3(bayes), f3(tree)]);
    }
    println!(
        "{:<38} (no record-shaped release to train on)",
        TechnologyClass::CryptoPpdm.name()
    );
    series.save().expect("results dir writable");
    println!(
        "\nReading: every masking class keeps the classifier within a few points of\n\
         the original — the paper's §2 claim that masked releases stay mineable —\n\
         while crypto PPDM trades *all* record-level utility for maximal owner privacy."
    );
}
