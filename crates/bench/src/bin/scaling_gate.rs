//! The thread-scaling regression gate.
//!
//! The persistent executor exists so that adding threads never makes the
//! parallel kernels *slower* (the fork/join pool's failure mode: worse
//! than sequential at t4 on the MDAV/Mondrian benches). This binary
//! enforces that property as a pass/fail check, cheap enough for CI: the
//! MDAV (n=5000, k=5) and Mondrian (n=4000, k=5) kernels are timed at 1
//! and 4 `tdf-par` threads, and the t4 median must stay within
//! `GATE_RATIO` of the t1 median. It also asserts the determinism
//! contract directly — the t1 and t4 outputs must be identical.
//!
//! On hosts with fewer than 4 measured cores the timing comparison is
//! meaningless (the core clamp runs "t4" sequentially), so the gate
//! skips with a notice — exit 0, nothing asserted about time. Exit codes:
//! 0 pass/skip, 1 regression.
//!
//! Knobs: `TDF_GATE_SAMPLES` (default 9) timing samples per point;
//! `TDF_CORES` overrides core detection as everywhere else.

use std::time::Instant;
use tdf_anonymity::mondrian_anonymize;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_sdc::microaggregation::mdav_microaggregate;

/// Allowed t4/t1 median ratio: parity with 10% measurement headroom.
const GATE_RATIO: f64 = 1.10;

/// Median wall time of `samples` invocations, in nanoseconds.
fn median_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Times one kernel at t1 and t4 and checks the ratio. `fingerprint`
/// must be a pure function of the kernel output; it is compared across
/// thread counts to assert bit-identical results.
fn gate<T, K: FnMut() -> T>(
    name: &str,
    samples: usize,
    mut kernel: K,
    fingerprint: impl Fn(&T) -> Vec<u64>,
) -> bool {
    let out_t1 = par::with_threads(1, &mut kernel);
    let out_t4 = par::with_threads(4, &mut kernel);
    assert_eq!(
        fingerprint(&out_t1),
        fingerprint(&out_t4),
        "{name}: t1 and t4 outputs differ — determinism contract broken"
    );
    let t1 = par::with_threads(1, || median_ns(samples, &mut kernel));
    let t4 = par::with_threads(4, || median_ns(samples, &mut kernel));
    let ratio = t4 as f64 / t1 as f64;
    let ok = ratio <= GATE_RATIO;
    println!(
        "{} {name}: t1 median {:.2} ms, t4 median {:.2} ms, ratio {ratio:.3} (limit {GATE_RATIO})",
        if ok { "pass" } else { "FAIL" },
        t1 as f64 / 1e6,
        t4 as f64 / 1e6,
    );
    ok
}

fn main() {
    let cores = par::measured_cores();
    if cores < 4 {
        println!(
            "scaling_gate: skipped — {cores} measured core(s) < 4; the core clamp \
             runs t4 sequentially here, so a timing comparison would be vacuous \
             (set TDF_CORES to force)"
        );
        return;
    }
    let samples = std::env::var("TDF_GATE_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9)
        .max(1);

    let d = patients(&PatientConfig {
        n: 5000,
        ..Default::default()
    });
    let qi = d.schema().quasi_identifier_indices();
    let mdav_ok = gate(
        "mdav_n5000_k5",
        samples,
        || mdav_microaggregate(&d, &qi, 5).expect("mdav"),
        |r| {
            let mut fp: Vec<u64> = r.group_of.iter().map(|&g| g as u64).collect();
            fp.push(r.num_groups as u64);
            fp.push(r.sse.to_bits());
            fp
        },
    );

    let dm = patients(&PatientConfig {
        n: 4000,
        ..Default::default()
    });
    let mondrian_ok = gate(
        "mondrian_n4000_k5",
        samples,
        || mondrian_anonymize(&dm, 5),
        |r| {
            let mut fp: Vec<u64> = r.partition_of.iter().map(|&p| p as u64).collect();
            fp.push(r.num_partitions as u64);
            fp
        },
    );

    if !(mdav_ok && mondrian_ok) {
        eprintln!("scaling_gate: t4 regressed past {GATE_RATIO}x the t1 median");
        std::process::exit(1);
    }
    println!("scaling_gate: ok ({cores} cores, {samples} samples per point)");
}
