//! The thread-scaling regression gate.
//!
//! The persistent executor exists so that adding threads never makes the
//! parallel kernels *slower* (the fork/join pool's failure mode: worse
//! than sequential at t4 on the MDAV/Mondrian benches). This binary
//! enforces that property as a pass/fail check, cheap enough for CI: the
//! MDAV (n=5000, k=5) and Mondrian (n=4000, k=5) kernels are timed at 1
//! and 4 `tdf-par` threads, and the t4 median must stay within
//! `GATE_RATIO` of the t1 median. It also asserts the determinism
//! contract directly — the t1 and t4 outputs must be identical.
//!
//! A second leg gates the **PIR batch/hint economics** at n = 10⁶:
//! answering a queue of 64 queries through the offline/online hint path
//! must cost at most `PIR_BATCH_RATIO` of one full-scan single-query
//! retrieval per query, and the fused 64-lane sweep must produce
//! bit-identical records to 64 sequential single-query retrievals. This
//! leg is single-threaded arithmetic-vs-arithmetic, so it runs even on
//! small hosts, *before* the core-count skip below.
//!
//! On hosts with fewer than 4 measured cores the thread-scaling timing
//! comparison is meaningless (the core clamp runs "t4" sequentially), so
//! that part skips with a notice — exit 0, nothing asserted about time.
//! Exit codes: 0 pass/skip, 1 regression.
//!
//! Knobs: `TDF_GATE_SAMPLES` (default 9) timing samples per point;
//! `TDF_CORES` overrides core detection as everywhere else.

use std::time::Instant;
use tdf_anonymity::mondrian_anonymize;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_pir::store::Database;
use tdf_sdc::microaggregation::mdav_microaggregate;

/// Allowed t4/t1 median ratio: parity with 10% measurement headroom.
const GATE_RATIO: f64 = 1.10;

/// Median wall time of `samples` invocations, in nanoseconds.
fn median_ns<T>(samples: usize, mut f: impl FnMut() -> T) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Times one kernel at t1 and t4 and checks the t4/t1 median ratio
/// against `limit` (parity gates pass ≤ 1.10; speedup gates demand < 1).
/// `fingerprint` must be a pure function of the kernel output; it is
/// compared across thread counts to assert bit-identical results.
fn gate<T, K: FnMut() -> T>(
    name: &str,
    samples: usize,
    limit: f64,
    mut kernel: K,
    fingerprint: impl Fn(&T) -> Vec<u64>,
) -> bool {
    let out_t1 = par::with_threads(1, &mut kernel);
    let out_t4 = par::with_threads(4, &mut kernel);
    assert_eq!(
        fingerprint(&out_t1),
        fingerprint(&out_t4),
        "{name}: t1 and t4 outputs differ — determinism contract broken"
    );
    let t1 = par::with_threads(1, || median_ns(samples, &mut kernel));
    let t4 = par::with_threads(4, || median_ns(samples, &mut kernel));
    let ratio = t4 as f64 / t1 as f64;
    let ok = ratio <= limit;
    println!(
        "{} {name}: t1 median {:.2} ms, t4 median {:.2} ms, ratio {ratio:.3} (limit {limit})",
        if ok { "pass" } else { "FAIL" },
        t1 as f64 / 1e6,
        t4 as f64 / 1e6,
    );
    ok
}

/// Required t4/t1 ratio for segment-parallel epoch publication: masking
/// 12 independent segments across 4 threads must be a real speedup
/// (≥ 1.6×), not mere parity — the coarse `par_map_heavy` fan-out has no
/// sequential-threshold excuse at this granularity.
const PUBLISH_PAR_RATIO: f64 = 0.60;

/// FNV-1a over the canonical segment encoding of a release: one u64
/// that changes if any masked cell, row order or schema bit changes.
fn release_fingerprint(release: &tdf_sdc::EpochRelease) -> Vec<u64> {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in tdf_microdata::segio::encode_segment(&release.data) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    vec![
        h,
        release.reclustered as u64,
        release.data.num_rows() as u64,
    ]
}

/// Allowed amortized-online/full-scan per-query ratio at q=64, n=10⁶.
/// The hint path touches O(√n) words online, so the true ratio is far
/// below this; 0.25 is the regression wall, not the expectation.
const PIR_BATCH_RATIO: f64 = 0.25;

/// Gates the PIR batching economics: fused 64-lane sweeps must be
/// bit-identical to sequential retrievals, and the hint path's amortized
/// per-query online cost must undercut the full-scan single query by at
/// least 4×.
fn pir_batch_gate(samples: usize) -> bool {
    use rngkit::SeedableRng;
    const N: usize = 1_000_000;
    const Q: usize = 64;
    let db = Database::from_fn(N, 32, |i, rec| {
        for (j, b) in rec.iter_mut().enumerate() {
            *b = (i.wrapping_mul(31).wrapping_add(j * 7)) as u8;
        }
    });
    let mut rng = rngkit::rngs::StdRng::seed_from_u64(0x6A7E);
    let targets: Vec<usize> = (0..Q).map(|t| (t * (N / Q) + 11) % N).collect();

    // Correctness first: one fused sweep vs the same indices answered
    // sequentially — the records must be bit-identical.
    let fused = tdf_pir::batch::retrieve_batch(&mut rng, &db, &targets);
    let sequential: Vec<Vec<u8>> = targets
        .iter()
        .map(|&i| tdf_pir::linear::retrieve(&mut rng, &db, 2, i).0)
        .collect();
    assert_eq!(
        fused.records, sequential,
        "pir_batch: fused 64-lane sweep and sequential single-query \
         retrievals disagree — batching broke correctness"
    );

    // Economics: amortized per-query online cost of answering a fresh
    // 64-query queue from a prepared hint pool, vs one full-scan query.
    // A deep pool (16·√n hints ⇒ refresh probability ≈ e⁻¹⁶ per query)
    // and a per-round epoch check keep offline refresh passes out of the
    // online timing; each round consumes distinct indices so hints are
    // never exhausted by repetition.
    let single = median_ns(samples, || {
        tdf_pir::linear::retrieve(&mut rng, &db, 2, targets[0]).0
    });
    let hint_count = 16 * (N as f64).sqrt().ceil() as usize;
    let mut pool = tdf_pir::hints::ClientHints::prepare(&db, 0x6A7E, hint_count);
    let mut online_rounds: Vec<u64> = Vec::with_capacity(samples);
    let mut round = 0usize;
    while online_rounds.len() < samples {
        let queue: Vec<usize> = (0..Q).map(|t| (t * (N / Q) + 101 * round) % N).collect();
        round += 1;
        let epoch = pool.epoch();
        let start = Instant::now();
        let records: Vec<Vec<u8>> = queue
            .iter()
            .map(|&i| pool.retrieve(&db, i).record)
            .collect();
        let elapsed = start.elapsed().as_nanos() as u64;
        for (i, record) in queue.iter().zip(&records) {
            assert_eq!(record, db.record(*i), "hint answer for index {i}");
        }
        if pool.epoch() == epoch {
            online_rounds.push(elapsed);
        }
    }
    online_rounds.sort_unstable();
    let online = online_rounds[online_rounds.len() / 2] / Q as u64;
    let fused_amortized = median_ns(samples, || {
        tdf_pir::batch::retrieve_batch(&mut rng, &db, &targets)
    }) / Q as u64;

    let ratio = online as f64 / single as f64;
    let ok = ratio <= PIR_BATCH_RATIO;
    println!(
        "{} pir_batch_n1e6_q64: single full-scan {:.2} ms/query, hint online \
         {:.3} ms/query amortized, ratio {ratio:.4} (limit {PIR_BATCH_RATIO}); \
         fused sweep {:.2} ms/query amortized (memory-bound, informational)",
        if ok { "pass" } else { "FAIL" },
        single as f64 / 1e6,
        online as f64 / 1e6,
        fused_amortized as f64 / 1e6,
    );
    ok
}

fn main() {
    let samples = std::env::var("TDF_GATE_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9)
        .max(1);

    // The PIR economics leg is single-threaded and core-count
    // independent: run it before the thread-scaling skip.
    if !pir_batch_gate(samples) {
        eprintln!(
            "scaling_gate: hint-path amortized online cost regressed past \
             {PIR_BATCH_RATIO}x the single-query full scan"
        );
        std::process::exit(1);
    }

    let cores = par::measured_cores();
    if cores < 4 {
        println!(
            "scaling_gate: skipped — {cores} measured core(s) < 4; the core clamp \
             runs t4 sequentially here, so a timing comparison would be vacuous \
             (set TDF_CORES to force)"
        );
        return;
    }
    let samples = std::env::var("TDF_GATE_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9)
        .max(1);

    let d = patients(&PatientConfig {
        n: 5000,
        ..Default::default()
    });
    let qi = d.schema().quasi_identifier_indices();
    let mdav_ok = gate(
        "mdav_n5000_k5",
        samples,
        GATE_RATIO,
        || mdav_microaggregate(&d, &qi, 5).expect("mdav"),
        |r| {
            let mut fp: Vec<u64> = r.group_of.iter().map(|&g| g as u64).collect();
            fp.push(r.num_groups as u64);
            fp.push(r.sse.to_bits());
            fp
        },
    );

    let dm = patients(&PatientConfig {
        n: 4000,
        ..Default::default()
    });
    let mondrian_ok = gate(
        "mondrian_n4000_k5",
        samples,
        GATE_RATIO,
        || mondrian_anonymize(&dm, 5),
        |r| {
            let mut fp: Vec<u64> = r.partition_of.iter().map(|&p| p as u64).collect();
            fp.push(r.num_partitions as u64);
            fp
        },
    );

    // Segment-parallel publication: 12 dirty 400-row segments fan out
    // over `par_map_heavy` — one coarse task each. A fresh publisher per
    // invocation keeps every epoch fully dirty (cache reuse would time
    // the concat, not the masking).
    let dp = patients(&PatientConfig {
        n: 4800,
        ..Default::default()
    });
    let qip = dp.schema().quasi_identifier_indices();
    let segp = tdf_microdata::SegmentedDataset::from_dataset(&dp, 400);
    let publish_ok = gate(
        "publish_par_12x400_k5",
        samples,
        PUBLISH_PAR_RATIO,
        || {
            tdf_sdc::EpochPublisher::new(tdf_sdc::EpochMasker::Mdav {
                cols: qip.clone(),
                k: 5,
            })
            .publish(&segp)
            .expect("publish")
        },
        release_fingerprint,
    );

    if !(mdav_ok && mondrian_ok && publish_ok) {
        eprintln!(
            "scaling_gate: t4 regressed past its limit ({GATE_RATIO}x parity legs, \
             {PUBLISH_PAR_RATIO}x publish_par)"
        );
        std::process::exit(1);
    }
    println!("scaling_gate: ok ({cores} cores, {samples} samples per point)");
}
