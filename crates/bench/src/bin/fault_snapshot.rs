//! Deterministic fault-injection snapshot.
//!
//! Installs one fixed fault plan (fixed seed, fixed rates), runs a small
//! F1-style pipeline — redundant PIR, deadline-limited queries, a secure
//! sum — with the thread count pinned to 1 and `TDF_OBS` forced to 2,
//! then prints the merged registry as deterministic JSON-lines. Fault
//! decisions are pure functions of (plan seed, site, draw index), so the
//! output is bit-stable across runs and machines; CI diffs it against
//! `ci/golden/faults_f1.jsonl`. A drift here means injection points moved,
//! fired differently, or stopped being counted — all reviewable events.
//!
//! Regenerate the golden file after an intentional change:
//!
//! ```sh
//! cargo run --release --offline -p tdf-bench --bin fault_snapshot \
//!     > ci/golden/faults_f1.jsonl
//! ```

use rngkit::SeedableRng;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_pir::redundant::{retrieve, RetryPolicy, VerifiedDatabase};
use tdf_querydb::control::ControlPolicy;
use tdf_querydb::statdb::StatDb;
use tdf_smc::secure_sum::ring_secure_sum;

/// The pinned plan: every deterministic (thread-free) injection site,
/// with rates chosen so the snapshot shows masked faults, refusals and a
/// detected corruption side by side. `par.worker_panic` is deliberately
/// absent — which worker dies first depends on scheduling, and this
/// artefact must be bit-stable.
const PLAN: &str = "pir.server_drop=3@0.25,pir.corrupt_word=3@0.2,\
                    querydb.deadline=25@0.5,smc.corrupt_word=2@1";
const PLAN_SEED: u64 = 0xFA17;

fn main() {
    // Forced level, plan and thread count: the golden file must not
    // depend on the TDF_OBS / TDF_FAULTS / TDF_THREADS environment of
    // whoever runs this.
    obs::set_level(2);
    obs::reset();
    faultkit::set_plan(Some(
        faultkit::FaultPlan::parse_with_seed(PLAN, PLAN_SEED).expect("pinned plan parses"),
    ));
    par::with_threads(1, || {
        // Redundant PIR: 48 retrievals over synthetic byte records, wide
        // enough for the budgeted drops and corruptions to all fire.
        let records: Vec<Vec<u8>> = (0..256usize)
            .map(|i| vec![i as u8, (i * 11) as u8, (i * 29) as u8])
            .collect();
        let vdb = VerifiedDatabase::new(records.clone());
        let policy = RetryPolicy::default();
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(0xF1);
        for k in 0..48usize {
            let index = (k * 37) % records.len();
            match retrieve(&mut rng, &vdb, 6, 1, index, &policy) {
                Ok(out) => assert_eq!(out.record, records[index], "never a wrong record"),
                Err(err) => {
                    let _ = err; // typed failure beyond tolerance: allowed
                }
            }
        }

        // Deadline-limited queries: 40 rows against an injected 25-row
        // allowance at rate 0.5 — roughly half refuse, half answer.
        let d = patients(&PatientConfig {
            n: 40,
            seed: 0xF1,
            ..Default::default()
        });
        let mut db = StatDb::new(d, ControlPolicy::SizeRestriction { min_size: 2 });
        for _ in 0..24 {
            db.query_str("SELECT AVG(weight) FROM t WHERE height >= 150")
                .expect("refusal, not error");
        }

        // Secure sum: the budget of 2 corrupts two transcript messages;
        // verification detects the first.
        let inputs: Vec<tdf_mathkit::Fp61> = (0..6u64).map(tdf_mathkit::Fp61::new).collect();
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(0x5C);
        let (_, transcript) = ring_secure_sum(&mut rng, &inputs);
        assert!(transcript.verify().is_err(), "corruption must be detected");
    });
    faultkit::set_plan(None);
    print!("{}", obs::snapshot().deterministic_jsonl());
}
