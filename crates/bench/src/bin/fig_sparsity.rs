//! **F2** — the sparsity re-identification curve of [11] (§2 "owner
//! privacy without respondent privacy"): record-linkage success on
//! noise-masked data as dimensionality grows, per noise level.

use tdf_bench::{f3, Series};
use tdf_ppdm::sparsity::sparsity_sweep;

fn main() {
    let dims = [2usize, 4, 8, 16, 32, 64];
    let alphas = [0.5f64, 1.0, 2.0];
    let n = 300;
    let seed = tdf_bench::seed_from_env(0x5BA1);
    println!("F2 — high-dimensional sparsity attack on noise addition (n = {n})\n");

    let mut series = Series::new("fig_sparsity", &["alpha", "dims", "linkage_rate"]);
    for &alpha in &alphas {
        println!("noise alpha = {alpha}");
        for (d, rate) in sparsity_sweep(n, &dims, alpha, seed) {
            println!("  d = {d:>3}: linkage {rate:.3}");
            series.push(&[f3(alpha), d.to_string(), f3(rate)]);
        }
        println!();
    }
    series.save().expect("results dir writable");
    println!(
        "Reading: at fixed noise, linkage rises with dimension — the owner's\n\
         distribution stays protected while respondents become re-identifiable."
    );
}
