//! **F1** — the §6 composition sweep: risk–utility frontier of the full
//! three-dimensional deployment (k-anonymization + PIR) versus the
//! plaintext one, over k. This is the experiment the paper's future-work
//! section asks for: "the impact on data utility of offering the three
//! dimensions of privacy".

use tdf_bench::{f3, Series};
use tdf_core::experiments::tradeoff_sweep;
use tdf_microdata::rng::seeded;

fn main() {
    let ks = [1usize, 2, 3, 5, 10, 15, 25, 50];
    let n = 300;
    let mut rng = seeded(tdf_bench::seed_from_env(0xF16));
    println!("F1 — three-dimensional deployment sweep (n = {n})\n");

    for (label, pir) in [
        ("k-anonymized + PIR (all three dimensions)", true),
        (
            "k-anonymized, plaintext access (respondent+owner only)",
            false,
        ),
    ] {
        let points = tradeoff_sweep(pir, &ks, n, &mut rng).expect("sweep runs");
        println!("--- {label} ---");
        let mut series = Series::new(
            if pir {
                "fig_tradeoff_pir"
            } else {
                "fig_tradeoff_plain"
            },
            &["k", "respondent", "owner", "user", "il1s", "bits_per_query"],
        );
        for p in &points {
            series.push(&[
                p.k.to_string(),
                f3(p.respondent),
                f3(p.owner),
                f3(p.user),
                f3(p.information_loss),
                p.bits_per_query.to_string(),
            ]);
        }
        println!("{}", series.render());
        series.save().expect("results dir writable");
    }
    println!(
        "Reading: respondent protection and information loss both rise with k;\n\
         PIR adds a constant user-privacy gain at a multiplicative communication cost."
    );
}
