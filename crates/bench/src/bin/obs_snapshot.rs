//! Deterministic observability snapshot of the F1 pipeline.
//!
//! Runs the §6 composition sweep (`tradeoff_sweep`, the same pipeline as
//! the `fig_tradeoff` binary at a reduced scale) with the thread count
//! pinned to 1, the seed fixed, and `TDF_OBS` forced to 2, then prints the
//! merged registry as deterministic JSON-lines — counters, gauges and
//! histograms only, no wall-clock. The output is bit-stable across runs
//! and machines, so CI diffs it against `ci/golden/obs_f1.jsonl`: any
//! unreviewed change to what the kernels count fails the gate.
//!
//! Regenerate the golden file after an intentional instrumentation change:
//!
//! ```sh
//! cargo run --release --offline -p tdf-bench --bin obs_snapshot \
//!     > ci/golden/obs_f1.jsonl
//! ```

use tdf_core::experiments::tradeoff_sweep;
use tdf_microdata::rng::seeded;

fn main() {
    // Forced level and thread count: the golden file must not depend on
    // the TDF_OBS / TDF_THREADS environment of whoever runs this.
    obs::set_level(2);
    obs::reset();
    par::with_threads(1, || {
        let mut rng = seeded(0xF16);
        let points = tradeoff_sweep(true, &[2, 5, 10], 120, &mut rng).expect("tradeoff sweep runs");
        assert!(!points.is_empty());
    });
    print!("{}", obs::snapshot().deterministic_jsonl());
}
