//! **F4** — Agrawal–Srikant [5] reconstruction fidelity and mining utility
//! versus noise level: total-variation distance of the raw noisy vs the
//! Bayes-reconstructed distribution, and accuracy of a histogram Bayes
//! classifier trained on (a) original, (b) raw noisy, (c) reconstructed
//! per-class distributions.

use tdf_bench::{f3, Series};
use tdf_microdata::rng::{seeded, standard_normal};
use tdf_microdata::stats;
use tdf_ppdm::agrawal::{distort_column, empirical_distribution, reconstruct_distribution};
use tdf_ppdm::classifier::HistogramBayes;

/// Two-class, two-attribute population with *asymmetric* classes (unequal
/// spread and prior), so that training on raw noisy values misplaces the
/// decision boundary — the failure mode [5]'s reconstruction repairs.
fn population(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut r = seeded(seed);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = usize::from(i % 10 >= 7); // 70/30 prior
        let (center, spread) = if c == 0 { (-0.5, 0.4) } else { (1.5, 1.6) };
        rows.push(vec![
            center + spread * standard_normal(&mut r),
            center + spread * standard_normal(&mut r),
        ]);
        labels.push(c);
    }
    (rows, labels)
}

fn main() {
    let (lo, hi, bins) = (-8.0f64, 8.0f64, 24usize);
    let n = 4000;
    let sigmas = [0.25f64, 0.5, 1.0, 2.0, 4.0];
    println!("F4 — Agrawal–Srikant reconstruction vs noise level (n = {n})\n");

    let seed = tdf_bench::seed_from_env(1);
    let (train_rows, train_labels) = population(n, seed);
    let (test_rows, test_labels) = population(1000, seed.wrapping_add(1));
    let baseline = HistogramBayes::train(&train_rows, &train_labels, 2, lo, hi, bins)
        .accuracy(&test_rows, &test_labels);
    println!("classifier accuracy on ORIGINAL data: {baseline:.3}\n");

    let mut series = Series::new(
        "fig_reconstruction",
        &[
            "sigma",
            "tv_noisy",
            "tv_reconstructed",
            "acc_original",
            "acc_noisy",
            "acc_reconstructed",
        ],
    );
    for &sigma in &sigmas {
        let mut rng = seeded(seed.wrapping_mul(42) ^ sigma.to_bits());
        // Column-level fidelity on attribute 0 of class 0.
        let xs: Vec<f64> = train_rows
            .iter()
            .zip(&train_labels)
            .filter(|(_, &l)| l == 0)
            .map(|(r, _)| r[0])
            .collect();
        let ws = distort_column(&xs, sigma, &mut rng);
        let truth = empirical_distribution(&xs, lo, hi, bins);
        let noisy_dist = empirical_distribution(&ws, lo, hi, bins);
        let recon = reconstruct_distribution(&ws, sigma, lo, hi, bins, 200);
        let tv_noisy = stats::total_variation(&noisy_dist, &truth);
        let tv_recon = recon.tv_distance(&truth);

        // Mining utility: train on noisy rows vs reconstructed per-class
        // distributions.
        let noisy_rows: Vec<Vec<f64>> = {
            let mut out = Vec::with_capacity(train_rows.len());
            for row in &train_rows {
                out.push(
                    row.iter()
                        .map(|&x| x + sigma * standard_normal(&mut rng))
                        .collect(),
                );
            }
            out
        };
        let acc_noisy = HistogramBayes::train(&noisy_rows, &train_labels, 2, lo, hi, bins)
            .accuracy(&test_rows, &test_labels);

        // Reconstructed per-class, per-attribute densities.
        let mut densities = Vec::with_capacity(2);
        let mut priors = Vec::with_capacity(2);
        for class in 0..2usize {
            let members: Vec<usize> = (0..train_rows.len())
                .filter(|&i| train_labels[i] == class)
                .collect();
            priors.push(members.len() as f64 / train_rows.len() as f64);
            let per_attr: Vec<Vec<f64>> = (0..2)
                .map(|a| {
                    let noisy: Vec<f64> = members.iter().map(|&i| noisy_rows[i][a]).collect();
                    reconstruct_distribution(&noisy, sigma, lo, hi, bins, 200).density
                })
                .collect();
            densities.push(per_attr);
        }
        let acc_recon = HistogramBayes::from_distributions(lo, hi, bins, priors, densities)
            .accuracy(&test_rows, &test_labels);

        println!(
            "sigma {sigma:>4}: TV noisy {tv_noisy:.3} vs reconstructed {tv_recon:.3}; \
             accuracy orig {baseline:.3} / noisy {acc_noisy:.3} / reconstructed {acc_recon:.3}"
        );
        series.push(&[
            f3(sigma),
            f3(tv_noisy),
            f3(tv_recon),
            f3(baseline),
            f3(acc_noisy),
            f3(acc_recon),
        ]);
    }
    series.save().expect("results dir writable");
    println!(
        "\nReading: reconstruction recovers the distribution shape the noise smeared;\n\
         classifiers trained on reconstructed distributions track the original accuracy\n\
         far better than ones trained on raw noisy values — the [5] headline result."
    );
}
