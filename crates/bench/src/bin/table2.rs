//! Regenerates **Table 2** of the paper: the 8×3 technology-class scoring,
//! with measured grades from the empirical harness next to the paper's
//! qualitative ones.

use tdf_bench::{f3, Series};
use tdf_core::report::{render_scores, render_table2};
use tdf_core::scoring::{scoring_table, Scenario};

fn main() {
    let scenario = Scenario {
        seed: tdf_bench::seed_from_env(0x7D_F2007),
        ..Default::default()
    };
    println!(
        "Table 2 — technology scoring on a synthetic patient population \
         (n = {}, seed = {:#x})\n",
        scenario.n, scenario.seed
    );
    let rows = scoring_table(&scenario).expect("scenario is well-formed");
    println!("{}", render_table2(&rows));
    println!("raw scores:\n{}", render_scores(&rows));

    let mut series = Series::new(
        "table2",
        &[
            "technology",
            "respondent",
            "owner",
            "user",
            "paper_respondent",
            "paper_owner",
            "paper_user",
        ],
    );
    let mut matches = 0usize;
    for r in &rows {
        series.push(&[
            r.technology.name().to_owned(),
            f3(r.scores.respondent),
            f3(r.scores.owner),
            f3(r.scores.user),
            r.paper[0].to_string(),
            r.paper[1].to_string(),
            r.paper[2].to_string(),
        ]);
        matches += (0..3).filter(|&d| r.measured[d] == r.paper[d]).count();
    }
    series.save().expect("results dir writable");
    if let Some(dir) = std::env::var_os("TDF_RESULTS_DIR") {
        let path = std::path::PathBuf::from(dir).join("table2.json");
        std::fs::write(&path, tdf_core::report::render_json(&rows)).expect("json writable");
        println!("wrote {}", path.display());
    }
    println!("cells matching the paper's grades exactly: {matches}/24");
    println!(
        "(deviations are confined to the respondent column of non-crypto PPDM rows,\n \
         where measured protection exceeds the paper's tentative 'medium'; see EXPERIMENTS.md)"
    );
}
