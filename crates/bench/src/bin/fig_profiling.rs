//! **F8** (extension) — the §1 AOL anecdote quantified: how reliably does
//! the owner's query log re-link users across a pseudonym rotation, as a
//! function of how repetitive their interests are? Under PIR the log does
//! not exist; this figure measures exactly what that removes.

use rngkit::Rng;
use tdf_bench::{f3, Series};
use tdf_microdata::rng::seeded;
use tdf_querydb::ast::{Aggregate, CmpOp, Predicate, Query};
use tdf_querydb::profiling::{build_profiles, relink_rate};

/// Builds a log where all users draw from a *shared* pool of 50 queries,
/// but each user issues their personal signature query with probability
/// `affinity` — the knob that turns anonymous traffic into a fingerprint.
fn synth_log(users: u32, per_user: usize, affinity: f64, seed: u64) -> Vec<(u32, Query)> {
    let mut rng = seeded(seed);
    let pool = 50usize;
    let query = |i: usize| Query {
        aggregate: Aggregate::Count,
        predicate: Predicate::cmp("height", CmpOp::Gt, i as f64),
    };
    let mut log = Vec::new();
    for u in 0..users {
        let signature = (u as usize * 7) % pool;
        for _ in 0..per_user {
            let q = if rng.gen::<f64>() < affinity {
                query(signature)
            } else {
                query(rng.gen_range(0..pool))
            };
            log.push((u, q));
        }
    }
    log
}

fn main() {
    let base_seed = tdf_bench::seed_from_env(0xA01);
    println!("F8 — query-log profiling (40 users, 60 queries each)\n");
    let mut series = Series::new(
        "fig_profiling",
        &["affinity", "relink_rate", "mean_entropy_bits"],
    );
    for &affinity in &[0.0f64, 0.1, 0.25, 0.5, 0.75, 0.95] {
        let log = synth_log(40, 60, affinity, base_seed + (affinity * 100.0) as u64);
        let rate = relink_rate(&log);
        let profiles = build_profiles(&log);
        let mean_entropy: f64 =
            profiles.values().map(|p| p.entropy_bits()).sum::<f64>() / profiles.len() as f64;
        println!(
            "signature affinity {affinity:.2}: relink {rate:.2}, mean profile entropy {mean_entropy:.2} bits"
        );
        series.push(&[f3(affinity), f3(rate), f3(mean_entropy)]);
    }
    series.save().expect("results dir writable");
    println!(
        "\nReading: users with stable interests are re-linked across pseudonyms with\n\
         near certainty — the AOL effect. The rate falls only when profiles drown in\n\
         one-off queries. PIR removes the log entirely (leakage \u{2248} 0 bits: see\n\
         `cargo run --example private_search`)."
    );
}
