//! Runs the §2–§4 independence experiments (E1–E7).
//!
//! Usage: `exp_independence [e1|e2|...|e7|all]` (default: all).

use tdf_core::experiments::{self, ExperimentOutcome};

fn print(outcome: &ExperimentOutcome) {
    println!("=== {} ===", outcome.id);
    println!("claim: {}", outcome.claim);
    for fact in &outcome.facts {
        println!("  measured: {fact}");
    }
    println!(
        "verdict: {}",
        if outcome.matches_paper {
            "MATCHES PAPER"
        } else {
            "DOES NOT MATCH"
        }
    );
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let outcomes = match which.as_str() {
        "e1" => vec![experiments::e1_respondent_without_owner()],
        "e2" => vec![experiments::e2_masking_protects_both()],
        "e3" => vec![experiments::e3_owner_without_respondent()],
        "e4" => vec![experiments::e4_interactive_sdc()],
        "e5" => vec![experiments::e5_pir_isolation_attack()],
        "e6" => vec![experiments::e6_kanon_plus_pir()],
        "e7" => vec![experiments::e7_crypto_vs_noncrypto()],
        "all" => experiments::all_experiments()
            .map(|v| v.into_iter().map(Ok).collect())
            .unwrap_or_else(|e| vec![Err(e)]),
        other => {
            eprintln!("unknown experiment `{other}` (expected e1..e7 or all)");
            std::process::exit(2);
        }
    };
    let mut all_ok = true;
    for outcome in outcomes {
        match outcome {
            Ok(o) => {
                all_ok &= o.matches_paper;
                print(&o);
            }
            Err(e) => {
                eprintln!("experiment failed to run: {e}");
                std::process::exit(1);
            }
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}
