//! **F6** — tracker-attack success versus inference-control regime: the
//! Schlörer tracker [22] against no control, query-set-size restriction
//! (several thresholds), output noise [14] and exact auditing [7], on
//! populations of isolatable targets.

use tdf_bench::{f3, Series};
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_microdata::Dataset;
use tdf_querydb::ast::{CmpOp, Predicate};
use tdf_querydb::control::{Auditor, ControlPolicy};
use tdf_querydb::statdb::StatDb;
use tdf_querydb::tracker::disclose_individual;

/// Picks sample-unique targets and a characteristic predicate for each.
fn targets(data: &Dataset, max: usize) -> Vec<(usize, Predicate)> {
    let mut out = Vec::new();
    for (key, members) in data.quasi_identifier_groups() {
        if members.len() == 1 && out.len() < max {
            let h = key[0].as_f64().unwrap();
            let w = key[1].as_f64().unwrap();
            let pred =
                Predicate::cmp("height", CmpOp::Eq, h).and(Predicate::cmp("weight", CmpOp::Eq, w));
            out.push((members[0], pred));
        }
    }
    out
}

fn main() {
    let data = patients(&PatientConfig {
        n: 150,
        seed: tdf_bench::seed_from_env(0xD0_C7),
        ..Default::default()
    });
    let tracker = Predicate::cmp("aids", CmpOp::Eq, false);
    let victims = targets(&data, 20);
    println!(
        "F6 — tracker attack on an interactive statistical database \
         (n = {}, {} sample-unique targets)\n",
        data.num_rows(),
        victims.len()
    );

    let regimes: Vec<(String, Box<dyn Fn() -> ControlPolicy>)> = vec![
        ("no control".to_owned(), Box::new(|| ControlPolicy::None)),
        (
            "size>=3".to_owned(),
            Box::new(|| ControlPolicy::SizeRestriction { min_size: 3 }),
        ),
        (
            "size>=10".to_owned(),
            Box::new(|| ControlPolicy::SizeRestriction { min_size: 10 }),
        ),
        (
            "size>=25".to_owned(),
            Box::new(|| ControlPolicy::SizeRestriction { min_size: 25 }),
        ),
        (
            "noise sd=5".to_owned(),
            Box::new(|| ControlPolicy::noise(5.0, 0xF6)),
        ),
    ];

    let mut series = Series::new(
        "fig_tracker",
        &["regime", "exact_disclosures", "targets", "success_rate"],
    );
    for (name, make_policy) in &regimes {
        let mut exact = 0usize;
        for (victim, pred) in &victims {
            let mut db = StatDb::new(data.clone(), make_policy());
            let truth = data.value(*victim, 2).as_f64().unwrap();
            if let Some(v) = disclose_individual(&mut db, "blood_pressure", pred, &tracker)
                .expect("queries are valid")
            {
                if (v - truth).abs() < 1e-6 {
                    exact += 1;
                }
            }
        }
        let rate = exact as f64 / victims.len() as f64;
        println!(
            "{name:<12} exact disclosures: {exact}/{} ({rate:.2})",
            victims.len()
        );
        series.push(&[
            name.clone(),
            exact.to_string(),
            victims.len().to_string(),
            f3(rate),
        ]);
    }

    // DP regime: Laplace answers from a fresh budget per victim.
    let mut exact = 0usize;
    for (victim, pred) in &victims {
        let mut dp = tdf_querydb::dp::DpPolicy::new(0.5, 100.0, 0xD9).with_range(
            "blood_pressure",
            100.0,
            180.0,
        );
        let truth = data.value(*victim, 2).as_f64().unwrap();
        // Drive the tracker by hand against the DP policy.
        let mut answer = |src: &str| -> Option<f64> {
            let q = tdf_querydb::parser::parse(src).unwrap();
            let e = tdf_querydb::engine::evaluate(&data, &q).unwrap();
            dp.apply(&data, &q, &e).point()
        };
        let t = "aids = N";
        let c = pred.to_string();
        let probes = [
            format!("SELECT SUM(blood_pressure) FROM t WHERE ({c}) OR {t}"),
            format!("SELECT SUM(blood_pressure) FROM t WHERE ({c}) OR NOT {t}"),
            format!("SELECT SUM(blood_pressure) FROM t WHERE {t}"),
            format!("SELECT SUM(blood_pressure) FROM t WHERE NOT {t}"),
        ];
        let vals: Vec<Option<f64>> = probes.iter().map(|p| answer(p)).collect();
        if let [Some(a), Some(b), Some(cc), Some(dd)] = vals[..] {
            let inferred = a + b - (cc + dd);
            if (inferred - truth).abs() < 1e-6 {
                exact += 1;
            }
        }
    }
    let rate = exact as f64 / victims.len() as f64;
    println!(
        "{:<12} exact disclosures: {exact}/{} ({rate:.2})",
        "dp eps=0.5",
        victims.len()
    );
    series.push(&[
        "dp_eps0.5".to_owned(),
        exact.to_string(),
        victims.len().to_string(),
        f3(rate),
    ]);

    // Auditing regime (stateful per attack, constructed fresh each victim).
    let mut exact = 0usize;
    for (victim, pred) in &victims {
        let mut db = StatDb::new(
            data.clone(),
            ControlPolicy::Audit(Auditor::new("blood_pressure", data.num_rows())),
        );
        let truth = data.value(*victim, 2).as_f64().unwrap();
        if let Some(v) = disclose_individual(&mut db, "blood_pressure", pred, &tracker)
            .expect("queries are valid")
        {
            if (v - truth).abs() < 1e-6 {
                exact += 1;
            }
        }
    }
    let rate = exact as f64 / victims.len() as f64;
    println!(
        "{:<12} exact disclosures: {exact}/{} ({rate:.2})",
        "auditing",
        victims.len()
    );
    series.push(&[
        "auditing".to_owned(),
        exact.to_string(),
        victims.len().to_string(),
        f3(rate),
    ]);
    series.save().expect("results dir writable");

    println!(
        "\nReading: size restriction alone does NOT stop the tracker (the 1980 result);\n\
         output noise destroys exactness; exact auditing refuses the closing query."
    );
}
