//! Ablation report — three roads to k-anonymity at equal k:
//! MDAV microaggregation, Mondrian partitioning, and full-domain interval
//! recoding. Quality is measured as record-linkage risk (must be ≤ 1/k for
//! all three) and information loss (IL1s for the numeric methods, plus the
//! generalization height for recoding). Timing lives in
//! `cargo bench --bench ablations`.

use tdf_anonymity::hierarchy::Hierarchy;
use tdf_anonymity::mondrian::mondrian_anonymize;
use tdf_anonymity::recoding::minimal_recoding;
use tdf_bench::{f3, Series};
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_sdc::microaggregation::mdav_microaggregate;
use tdf_sdc::risk::record_linkage_rate;
use tdf_sdc::utility::il1s;

fn main() {
    let data = patients(&PatientConfig {
        n: 400,
        seed: tdf_bench::seed_from_env(0xD0_C7),
        ..Default::default()
    });
    let qi = data.schema().quasi_identifier_indices();
    let hierarchies = vec![
        Hierarchy::Interval {
            base_width: 5.0,
            origin: 0.0,
            levels: 4,
        },
        Hierarchy::Interval {
            base_width: 10.0,
            origin: 0.0,
            levels: 4,
        },
    ];
    println!(
        "Ablation — three k-anonymizers on n = {}:\n",
        data.num_rows()
    );
    let mut series = Series::new("ablate_kanon", &["method", "k", "linkage", "il1s", "note"]);

    for k in [3usize, 5, 10, 25] {
        let mdav = mdav_microaggregate(&data, &qi, k).unwrap().data;
        let mondrian = mondrian_anonymize(&data, k).data;
        let recoded = minimal_recoding(&data, &hierarchies, k, data.num_rows() / 20)
            .expect("full suppression always succeeds");

        for (name, release, note) in [
            ("mdav", &mdav, String::new()),
            ("mondrian", &mondrian, String::new()),
        ] {
            let linkage = record_linkage_rate(&data, release, &qi).unwrap();
            let loss = il1s(&data, release, &qi).unwrap();
            println!(
                "k={k:<3} {name:<9} linkage {linkage:.3} (bound {:.3})  IL1s {loss:.3}",
                1.0 / k as f64
            );
            assert!(
                linkage <= 1.0 / k as f64 + 1e-9,
                "{name} violated the k-bound"
            );
            series.push(&[
                name.to_owned(),
                k.to_string(),
                f3(linkage),
                f3(loss),
                note.clone(),
            ]);
        }
        // Recoding releases interval strings: report generalization height
        // and suppression instead of IL1s.
        let height: usize = recoded.levels.iter().sum();
        println!(
            "k={k:<3} {:<9} levels {:?} (height {height}), {} records suppressed",
            "recoding", recoded.levels, recoded.suppressed_records
        );
        series.push(&[
            "recoding".to_owned(),
            k.to_string(),
            String::from("-"),
            String::from("-"),
            format!("height={height},suppressed={}", recoded.suppressed_records),
        ]);
        println!();
    }
    series.save().expect("results dir writable");
    println!(
        "Reading: MDAV buys the lowest numeric distortion; Mondrian is close and\n\
         faster; recoding pays in generalization height but yields publishable\n\
         categorical intervals. All three respect the 1/k linkage bound."
    );
}
