//! **F3** — PIR communication/computation versus database size, per
//! scheme: trivial download, 2-server linear XOR [8], 2-server square
//! (O(√n)), and single-server computational PIR (Goldwasser–Micali).

use rngkit::SeedableRng;
use tdf_bench::Series;
use tdf_pir::store::Database;
use tdf_pir::{cpir, cube, linear, square, trivial};

fn main() {
    let sizes = [64usize, 256, 1024, 4096, 16384];
    let record_size = 32;
    println!("F3 — PIR cost vs database size (record size {record_size} B)\n");
    let mut rng = rngkit::rngs::StdRng::seed_from_u64(tdf_bench::seed_from_env(0xF1C0));
    let cpir_client = cpir::Client::new(&mut rng, 96);

    let mut series = Series::new(
        "fig_pir_cost",
        &[
            "scheme",
            "n",
            "uplink_bits",
            "downlink_bits",
            "total_bits",
            "server_ops",
        ],
    );
    for &n in &sizes {
        let db = Database::new((0..n).map(|i| vec![(i % 251) as u8; record_size]).collect());
        let bit_db = Database::from_bits(&(0..n).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let idx = n / 2;

        let (_, _, triv) = trivial::retrieve(&db, idx);
        let (_, _, lin) = linear::retrieve(&mut rng, &db, 2, idx);
        let (_, _, sq) = square::retrieve(&mut rng, &db, idx);
        let (_, _, cb) = cube::retrieve(&mut rng, &db, 3, idx);
        // cPIR fetches one *bit*; scale below is per-bit and noted.
        let (_, _, cp) = cpir::retrieve_bit(&mut rng, &cpir_client, &bit_db, idx);

        for (scheme, c) in [
            ("trivial", triv),
            ("linear-2server", lin),
            ("square-2server", sq),
            ("cube-8server-d3", cb),
            ("cpir-GM-per-bit", cp),
        ] {
            series.push(&[
                scheme.to_owned(),
                n.to_string(),
                c.uplink_bits.to_string(),
                c.downlink_bits.to_string(),
                c.total_bits().to_string(),
                c.server_ops.to_string(),
            ]);
        }
    }
    println!("{}", series.render());
    series.save().expect("results dir writable");
    println!(
        "Reading: trivial grows linearly in n; the linear scheme's uplink is n bits;\n\
         the square scheme and cPIR grow as \u{221a}n (cPIR pays a ~modulus-size factor\n\
         per bit but needs only ONE server)."
    );
}
