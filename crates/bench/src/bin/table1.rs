//! Regenerates **Table 1** of the paper: the two patient toy datasets and
//! the k-anonymity / p-sensitivity analysis §2 performs on them.

use tdf_anonymity::model::{equivalence_classes, k_anonymity_level, p_sensitivity_level};
use tdf_microdata::patients;

fn analyze(name: &str, data: &tdf_microdata::Dataset) {
    println!("=== {name} ===");
    println!("{data}");
    println!(
        "k-anonymity level w.r.t. (height, weight): {}",
        k_anonymity_level(data).map_or("-".to_owned(), |k| k.to_string())
    );
    println!(
        "p-sensitivity level: {}",
        p_sensitivity_level(data).map_or("-".to_owned(), |p| p.to_string())
    );
    println!("equivalence classes:");
    for class in equivalence_classes(data) {
        println!(
            "  key {:?}: {} member(s), distinct confidential values {:?}",
            class
                .key
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            class.members.len(),
            class.distinct_confidential
        );
    }
    println!();
}

fn main() {
    println!("Table 1 — patient datasets (reconstructed; see DESIGN.md)\n");
    let d1 = patients::dataset1();
    let d2 = patients::dataset2();
    analyze("Dataset 1 (left)", &d1);
    analyze("Dataset 2 (right)", &d2);

    println!("Paper claims checked:");
    println!(
        "  Dataset 1 spontaneously 3-anonymous: {}",
        k_anonymity_level(&d1) == Some(3)
    );
    println!(
        "  Dataset 2 not 3-anonymous (all keys unique): {}",
        k_anonymity_level(&d2) == Some(1)
    );
    let isolated =
        d2.matching_indices(|r| r[0].as_f64().unwrap() < 165.0 && r[1].as_f64().unwrap() > 105.0);
    println!(
        "  exactly one record with height<165 & weight>105, blood pressure 146: {}",
        isolated == vec![patients::DATASET2_ISOLATED_ROW]
            && d2.value(patients::DATASET2_ISOLATED_ROW, 2).as_f64() == Some(146.0)
    );
}
