//! Shared helpers for the table/figure report binaries, plus the in-tree
//! micro-benchmark harness (the workspace's `criterion` replacement).
//!
//! Every binary prints a human-readable report to stdout and, when the
//! `TDF_RESULTS_DIR` environment variable is set, also writes a
//! tab-separated file there for plotting.

pub mod harness;

use std::io::Write;
use std::path::PathBuf;

/// Reads the global experiment seed from the `TDF_SEED` environment
/// variable (decimal or `0x`-prefixed hex), falling back to the binary's
/// canonical default. Every figure/table binary routes its seed through
/// this, so
///
/// ```sh
/// TDF_SEED=123 cargo run --release --bin table2
/// ```
///
/// reproduces (or intentionally varies) any artefact from the command
/// line. With the variable unset, outputs are bit-identical to the
/// committed defaults.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("TDF_SEED") {
        Ok(text) => {
            let text = text.trim();
            let parsed =
                if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                    u64::from_str_radix(&hex.replace('_', ""), 16).ok()
                } else {
                    text.replace('_', "").parse().ok()
                };
            parsed.unwrap_or_else(|| {
                eprintln!("warning: unparsable TDF_SEED `{text}`, using default {default}");
                default
            })
        }
        Err(_) => default,
    }
}

/// A tab-separated series destined for a results file.
pub struct Series {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Series {
    /// Creates a series with the given column header.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row (stringified cells).
    pub fn push(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders as aligned text for stdout.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        for (i, h) in self.header.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", h, w = widths[i]));
        }
        s.push('\n');
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            s.push('\n');
        }
        s
    }

    /// Writes a TSV file under `TDF_RESULTS_DIR` when that variable is set.
    pub fn save(&self) -> std::io::Result<()> {
        let dir = match std::env::var_os("TDF_RESULTS_DIR") {
            Some(d) => PathBuf::from(d),
            None => return Ok(()),
        };
        std::fs::create_dir_all(&dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.tsv", self.name)))?;
        writeln!(f, "{}", self.header.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

/// Formats an `f64` to three decimals (report convention).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_renders_aligned() {
        let mut s = Series::new("t", &["k", "value"]);
        s.push(&["3".into(), "0.123".into()]);
        s.push(&["25".into(), "0.9".into()]);
        let out = s.render();
        assert!(out.contains("value"));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut s = Series::new("t", &["a"]);
        s.push(&["1".into(), "2".into()]);
    }
}
