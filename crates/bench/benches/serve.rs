//! End-to-end service bench: the `tdf-serve` TCP front-end under the
//! closed-loop Zipfian load generator, over real sockets on loopback.
//!
//! One in-process server (the same binary protocol and admission path as
//! production use) is driven by concurrent client connections; every
//! per-request round-trip latency feeds the summary directly via
//! [`Harness::record_latencies`], so the p50/p95/p99 in the artefact are
//! true request quantiles, not timed-sample statistics. Run-level
//! aggregates (throughput, answered/refused/error counts) ride along as
//! counters.
//!
//! Environment knobs (all optional) — CI smoke shrinks these; the
//! committed artefact uses the defaults (≥1000 simulated users):
//!
//! | variable               | default | meaning                          |
//! |------------------------|---------|----------------------------------|
//! | `TDF_SERVE_CLIENTS`    | 8       | concurrent client connections    |
//! | `TDF_SERVE_USERS`      | 1000    | simulated user-id population     |
//! | `TDF_SERVE_REQS`       | 250     | requests per client              |
//! | `TDF_SERVE_ROWS`       | 1000    | synthetic patient rows served    |
//!
//! Emits `BENCH_serve.json`.

use tdf_bench::harness::Harness;
use tdf_serve::{loadgen, LoadConfig, Server, ServerConfig, SessionConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One load run against a fresh server; records `id` with the full
/// latency distribution and run-level counters.
fn bench_load(h: &mut Harness, id: &str, budget: f64, load: &LoadConfig) {
    let server = Server::start(ServerConfig {
        rows: env_u64("TDF_SERVE_ROWS", 1000) as usize,
        seed: tdf_bench::seed_from_env(0x5E27E),
        workers: 0, // sized from measured cores
        session: SessionConfig {
            budget,
            ..SessionConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("server starts");
    let (report, latencies) =
        loadgen::run_with_latencies(server.addr(), load).expect("load run completes");
    server.shutdown();
    assert_eq!(report.errors, 0, "loopback load must be error-free");
    h.record_latencies(
        id,
        &latencies,
        vec![
            (
                "throughput_rps".into(),
                report.throughput_rps.round() as u64,
            ),
            ("requests".into(), report.requests),
            ("answered".into(), report.answered),
            ("refused".into(), report.refused),
            ("errors".into(), report.errors),
            ("connections".into(), report.connections),
            // Keep-alive ratio, fixed-point ×100: equals 100× the
            // requests-per-client setting unless connections died early.
            (
                "reqs_per_conn_x100".into(),
                (report.reqs_per_conn * 100.0).round() as u64,
            ),
        ],
    );
}

fn main() {
    let mut h = Harness::new("serve");
    let clients = env_u64("TDF_SERVE_CLIENTS", 8) as usize;
    let users = env_u64("TDF_SERVE_USERS", 1000);
    let requests_per_client = env_u64("TDF_SERVE_REQS", 250) as usize;
    let seed = tdf_bench::seed_from_env(0x10AD);

    // Steady state: generous budgets, so (nearly) every request does the
    // full parse→evaluate→perturb pipeline. The latency quantiles here
    // are the service's answer-path cost.
    bench_load(
        &mut h,
        &format!("load/steady_c{clients}_u{users}"),
        1e9,
        &LoadConfig {
            clients,
            users,
            requests_per_client,
            zipf_s: 1.1,
            seed,
        },
    );

    // Contended regime: tight budgets and a heavy Zipf head, so popular
    // users exhaust ε mid-run and the refusal fast path carries a large
    // share of requests — the admission path under pressure.
    bench_load(
        &mut h,
        &format!("load/contended_c{clients}_u{users}"),
        5.0,
        &LoadConfig {
            clients,
            users,
            requests_per_client,
            zipf_s: 1.3,
            seed,
        },
    );

    h.finish().expect("write BENCH_serve.json");
}
