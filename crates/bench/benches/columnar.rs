//! Columnar-vs-row-major benches for the typed dataset core.
//!
//! Every pair measures the live columnar kernel against a faithful
//! reimplementation of the pre-refactor row-major path — `Vec<Vec<Value>>`
//! rows, per-row `Standardizer::transform`, `Vec<Vec<f64>>` point sets,
//! `Vec<Value>` grouping keys — in the *same run*, so the ratio is a
//! storage-layout comparison, not a machine comparison. The baselines
//! reproduce the seed commit's algorithms line for line (same selection
//! order, same fold order); a pre-flight assert checks they still produce
//! the very same groups/answers as the columnar kernels before anything is
//! timed.
//!
//! Emits `BENCH_columnar.json`.

use std::collections::BTreeMap;
use tdf_bench::harness::Harness;
use tdf_microdata::distance::sq_euclidean;
use tdf_microdata::synth::{census, patients, PatientConfig};
use tdf_microdata::{Dataset, Value};
use tdf_sdc::microaggregation::mdav_microaggregate;
use tdf_sdc::risk::record_linkage_rate;

/// The pre-refactor row-major table: one `Vec<Value>` per record.
struct RowTable {
    rows: Vec<Vec<Value>>,
}

impl RowTable {
    fn of(data: &Dataset) -> Self {
        Self { rows: data.rows() }
    }
}

/// The seed commit's `Standardizer::fit` against row storage: per column,
/// materialize the numeric cells (`rows.iter().filter_map(as_f64)`), then
/// mean and standard deviation. The arithmetic matches the live fit, so
/// both layouts standardize identically — only the storage walk differs.
struct RowStd {
    cols: Vec<usize>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl RowStd {
    fn fit(table: &RowTable, cols: &[usize]) -> Self {
        let mut means = Vec::with_capacity(cols.len());
        let mut stds = Vec::with_capacity(cols.len());
        for &c in cols {
            let xs: Vec<f64> = table.rows.iter().filter_map(|r| r[c].as_f64()).collect();
            means.push(tdf_microdata::stats::mean(&xs).unwrap_or(0.0));
            let sd = tdf_microdata::stats::std_dev(&xs).unwrap_or(1.0);
            stds.push(if sd > 0.0 { sd } else { 1.0 });
        }
        Self {
            cols: cols.to_vec(),
            means,
            stds,
        }
    }

    fn transform(&self, row: &[Value]) -> Vec<f64> {
        self.cols
            .iter()
            .enumerate()
            .map(|(j, &c)| match row[c].as_f64() {
                Some(x) => (x - self.means[j]) / self.stds[j],
                None => 0.0,
            })
            .collect()
    }
}

// ---- row-major MDAV (the seed commit's implementation) -----------------

fn argmax(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (p, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = p;
        }
    }
    best
}

fn k_nearest(remaining: &[usize], dists: &[f64], k: usize) -> Vec<usize> {
    let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
    for (p, &id) in remaining.iter().enumerate() {
        let cand = (dists[p], id);
        if best.len() == k {
            let worst = *best.last().expect("k >= 1");
            if (cand.0, cand.1) >= (worst.0, worst.1) {
                continue;
            }
            best.pop();
        }
        let at = best.partition_point(|&(d, i)| (d, i) < (cand.0, cand.1));
        best.insert(at, cand);
    }
    best.into_iter().map(|(_, id)| id).collect()
}

fn remove_members(remaining: &mut Vec<usize>, members: &[usize]) {
    let taken: std::collections::HashSet<usize> = members.iter().copied().collect();
    remaining.retain(|i| !taken.contains(i));
}

fn centroid_of(points: &[Vec<f64>], remaining: &[usize]) -> Vec<f64> {
    let d = points[remaining[0]].len();
    let mut sums = vec![0.0f64; d];
    for &i in remaining {
        for (a, v) in sums.iter_mut().zip(&points[i]) {
            *a += v;
        }
    }
    sums.into_iter()
        .map(|s| s / remaining.len() as f64)
        .collect()
}

fn distances_to(points: &[Vec<f64>], remaining: &[usize], target: &[f64]) -> Vec<f64> {
    remaining
        .iter()
        .map(|&i| sq_euclidean(&points[i], target))
        .collect()
}

/// The seed commit's MDAV, end to end: row-major fit, per-row
/// standardization into `Vec<Vec<f64>>` points, pointer-chasing distance
/// scans, and a row-major finish that reads means through `Value` cells,
/// writes them back cell by cell, and accounts the standardized SSE.
fn rowmajor_mdav(table: &RowTable, cols: &[usize], k: usize) -> Vec<usize> {
    let std = RowStd::fit(table, cols);
    let points: Vec<Vec<f64>> = table.rows.iter().map(|r| std.transform(r)).collect();
    let mut remaining: Vec<usize> = (0..table.rows.len()).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    while remaining.len() >= 3 * k {
        let centroid = centroid_of(&points, &remaining);
        let d_centroid = distances_to(&points, &remaining, &centroid);
        let r = remaining[argmax(&d_centroid)];
        let d_r = distances_to(&points, &remaining, &points[r]);
        let s = remaining[argmax(&d_r)];
        let group_r = k_nearest(&remaining, &d_r, k);
        remove_members(&mut remaining, &group_r);
        groups.push(group_r);
        let d_s = distances_to(&points, &remaining, &points[s]);
        let group_s = k_nearest(&remaining, &d_s, k);
        remove_members(&mut remaining, &group_s);
        groups.push(group_s);
    }
    if remaining.len() >= 2 * k {
        let centroid = centroid_of(&points, &remaining);
        let d_centroid = distances_to(&points, &remaining, &centroid);
        let r = remaining[argmax(&d_centroid)];
        let d_r = distances_to(&points, &remaining, &points[r]);
        let group = k_nearest(&remaining, &d_r, k);
        remove_members(&mut remaining, &group);
        groups.push(group);
    }
    if !remaining.is_empty() {
        groups.push(remaining);
    }

    // Row-major finish: centroid write-back through `Value` cells, plus
    // the seed's standardized-SSE accounting pass.
    let mut out = table.rows.clone();
    let mut group_of = vec![0usize; table.rows.len()];
    let mut sse = 0.0f64;
    for (gid, members) in groups.iter().enumerate() {
        for &c in cols {
            let mean = members
                .iter()
                .filter_map(|&i| table.rows[i][c].as_f64())
                .sum::<f64>()
                / members.len() as f64;
            for &i in members {
                out[i][c] = Value::Float(mean);
            }
        }
        let c = centroid_of(&points, members);
        for &i in members {
            sse += sq_euclidean(&points[i], &c);
            group_of[i] = gid;
        }
    }
    std::hint::black_box((out, sse));
    group_of
}

// ---- row-major record linkage (the seed commit's implementation) -------

fn rowmajor_linkage(original: &RowTable, masked: &RowTable, cols: &[usize]) -> f64 {
    let std = RowStd::fit(original, cols);
    let masked_pts: Vec<Vec<f64>> = masked.rows.iter().map(|r| std.transform(r)).collect();
    let mut expected_hits = 0.0f64;
    for (i, row) in original.rows.iter().enumerate() {
        let target = std.transform(row);
        let mut best = f64::INFINITY;
        let mut ties: Vec<usize> = Vec::new();
        for (j, p) in masked_pts.iter().enumerate() {
            let d = sq_euclidean(&target, p);
            if d < best - 1e-12 {
                best = d;
                ties.clear();
                ties.push(j);
            } else if (d - best).abs() <= 1e-12 {
                ties.push(j);
            }
        }
        if ties.contains(&i) {
            expected_hits += 1.0 / ties.len() as f64;
        }
    }
    expected_hits / original.rows.len() as f64
}

// ---- row-major grouping (the seed commit's implementation) -------------

fn rowmajor_groups(table: &RowTable, cols: &[usize]) -> BTreeMap<Vec<Value>, Vec<usize>> {
    let mut groups: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
    for (i, row) in table.rows.iter().enumerate() {
        let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
        groups.entry(key).or_default().push(i);
    }
    groups
}

fn bench_mdav(h: &mut Harness) {
    let d = patients(&PatientConfig {
        n: 5000,
        ..Default::default()
    });
    let qi = d.schema().quasi_identifier_indices();
    let table = RowTable::of(&d);

    // Pre-flight: both layouts form the very same groups.
    let live = mdav_microaggregate(&d, &qi, 5).expect("mdav");
    assert_eq!(rowmajor_mdav(&table, &qi, 5), live.group_of);

    par::with_threads(1, || {
        h.bench("mdav_columnar_n5000_k5", || {
            mdav_microaggregate(&d, &qi, 5).expect("mdav")
        });
        h.bench("mdav_rowmajor_n5000_k5", || rowmajor_mdav(&table, &qi, 5));
    });
}

fn bench_linkage(h: &mut Harness) {
    let d = patients(&PatientConfig {
        n: 1500,
        ..Default::default()
    });
    let qi = d.schema().quasi_identifier_indices();
    let masked = mdav_microaggregate(&d, &qi, 5).expect("mdav").data;
    let orig_table = RowTable::of(&d);
    let masked_table = RowTable::of(&masked);

    let live = record_linkage_rate(&d, &masked, &qi).expect("linkage");
    assert_eq!(rowmajor_linkage(&orig_table, &masked_table, &qi), live);

    par::with_threads(1, || {
        h.bench("linkage_columnar_n1500", || {
            record_linkage_rate(&d, &masked, &qi).expect("linkage")
        });
        h.bench("linkage_rowmajor_n1500", || {
            rowmajor_linkage(&orig_table, &masked_table, &qi)
        });
    });
}

fn bench_grouping(h: &mut Harness) {
    // Mixed Integer / Nominal / Ordinal quasi-identifiers: the columnar
    // path groups on packed dictionary codes, the row-major one on cloned
    // `Vec<Value>` keys (heap strings included).
    let d = census(10_000, 0xC01);
    let qi = d.schema().quasi_identifier_indices();
    let table = RowTable::of(&d);

    let live = d.group_indices_by(&qi);
    assert_eq!(rowmajor_groups(&table, &qi), live);

    par::with_threads(1, || {
        h.bench("groupby_columnar_census_n10000", || d.group_indices_by(&qi));
        h.bench("groupby_rowmajor_census_n10000", || {
            rowmajor_groups(&table, &qi)
        });
    });
}

fn main() {
    let mut h = Harness::new("columnar");
    bench_mdav(&mut h);
    bench_linkage(&mut h);
    bench_grouping(&mut h);
    h.finish().expect("write BENCH_columnar.json");
}
