//! Observability overhead benches: every kernel workload measured with
//! `TDF_OBS` forced to 0 (instrumentation compiled in but disabled), 1
//! (counters/gauges/histograms) and 2 (spans on top).
//!
//! The level-0 / level-1 pair is the EXPERIMENTS P3 overhead budget: the
//! median of `*_obs1` must stay within 3% of `*_obs0`. Levels 1 and 2 run
//! through [`Harness::bench_with_obs`], so `BENCH_obs.json` embeds the
//! counter snapshot of one invocation next to the timings — the artefact
//! shows *what* was counted alongside what the counting cost.
//!
//! Threads are pinned to 1: overhead is a per-event property, and the
//! single-thread path has the least noise to hide it in.

use rngkit::SeedableRng;
use tdf_anonymity::mondrian::mondrian_anonymize;
use tdf_bench::harness::Harness;
use tdf_microdata::synth::{census, patients, PatientConfig};
use tdf_pir::store::Database;
use tdf_sdc::microaggregation::mdav_microaggregate;
use tdf_sdc::risk::record_linkage_rate;

/// Benches one closure at the three observability levels. Level 0 uses the
/// plain timing path; levels 1 and 2 also capture a counter snapshot.
fn at_levels<T, F: FnMut() -> T>(h: &mut Harness, id: &str, mut f: F) {
    obs::set_level(0);
    h.bench(&format!("{id}_obs0"), &mut f);
    obs::set_level(1);
    h.bench_with_obs(&format!("{id}_obs1"), &mut f);
    obs::set_level(2);
    h.bench_with_obs(&format!("{id}_obs2"), &mut f);
    obs::set_level(0);
}

fn main() {
    let mut h = Harness::new("obs");
    par::with_threads(1, || {
        let d = patients(&PatientConfig {
            n: 2000,
            ..Default::default()
        });
        let qi = d.schema().quasi_identifier_indices();
        at_levels(&mut h, "mdav_n2000_k5", || {
            mdav_microaggregate(&d, &qi, 5).expect("mdav")
        });

        let c = census(4000, 0x0B5);
        at_levels(&mut h, "mondrian_census_n4000_k10", || {
            mondrian_anonymize(&c, 10)
        });

        let small = patients(&PatientConfig {
            n: 800,
            ..Default::default()
        });
        let sqi = small.schema().quasi_identifier_indices();
        let masked = mdav_microaggregate(&small, &sqi, 5).expect("mdav").data;
        at_levels(&mut h, "linkage_n800", || {
            record_linkage_rate(&small, &masked, &sqi).expect("linkage")
        });

        let db = Database::new((0..4096usize).map(|i| vec![i as u8; 32]).collect());
        at_levels(&mut h, "pir_linear_3server_n4096", || {
            let mut rng = rngkit::rngs::StdRng::seed_from_u64(0x0B5);
            tdf_pir::linear::retrieve(&mut rng, &db, 3, 2048)
        });
    });
    h.finish().expect("write BENCH_obs.json");
}
