//! End-to-end benches: one entry per reproduced table/figure, measuring
//! the cost of regenerating each artefact (small parameterizations so the
//! suite completes in minutes). Emits `BENCH_experiments.json`.

use tdf_bench::harness::Harness;
use tdf_core::experiments::{all_experiments, tradeoff_sweep};
use tdf_core::scoring::{score_technology, Scenario};
use tdf_core::technology::TechnologyClass;
use tdf_microdata::patients;
use tdf_microdata::rng::seeded;
use tdf_ppdm::sparsity::linkage_rate_at_dimension;

fn main() {
    let mut h = Harness::new("experiments");
    let seed = tdf_bench::seed_from_env(1);

    let d1 = patients::dataset1();
    let d2 = patients::dataset2();
    h.bench("table1/kanon_analysis", || {
        let k1 = tdf_anonymity::k_anonymity_level(&d1);
        let k2 = tdf_anonymity::k_anonymity_level(&d2);
        let p1 = tdf_anonymity::p_sensitivity_level(&d1);
        (k1, k2, p1)
    });

    let scenario = Scenario {
        n: 120,
        pir_trials: 200,
        ..Default::default()
    };
    for tech in [
        TechnologyClass::Sdc,
        TechnologyClass::CryptoPpdm,
        TechnologyClass::Pir,
        TechnologyClass::GenericPpdmPlusPir,
    ] {
        h.bench(&format!("table2/score_{}", tech.name()), || {
            score_technology(tech, &scenario).unwrap()
        });
    }

    h.bench("independence/e1_to_e7", || all_experiments().unwrap());

    h.bench("fig_tradeoff/sweep_k3_n80", || {
        let mut rng = seeded(seed);
        tradeoff_sweep(true, &[3], 80, &mut rng).unwrap()
    });

    for dims in [4usize, 32] {
        h.bench(&format!("fig_sparsity/linkage_d{dims}"), || {
            linkage_rate_at_dimension(120, dims, 1.0, 7)
        });
    }

    h.finish().expect("write BENCH_experiments.json");
}
