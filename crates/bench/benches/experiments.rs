//! Criterion benches: one group per reproduced table/figure, measuring the
//! cost of regenerating each artefact (small parameterizations so `cargo
//! bench` completes in minutes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdf_core::experiments::{all_experiments, tradeoff_sweep};
use tdf_core::scoring::{score_technology, Scenario};
use tdf_core::technology::TechnologyClass;
use tdf_microdata::patients;
use tdf_microdata::rng::seeded;
use tdf_ppdm::sparsity::linkage_rate_at_dimension;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/kanon_analysis", |b| {
        let d1 = patients::dataset1();
        let d2 = patients::dataset2();
        b.iter(|| {
            let k1 = tdf_anonymity::k_anonymity_level(&d1);
            let k2 = tdf_anonymity::k_anonymity_level(&d2);
            let p1 = tdf_anonymity::p_sensitivity_level(&d1);
            std::hint::black_box((k1, k2, p1))
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let scenario = Scenario { n: 120, pir_trials: 200, ..Default::default() };
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for tech in [
        TechnologyClass::Sdc,
        TechnologyClass::CryptoPpdm,
        TechnologyClass::Pir,
        TechnologyClass::GenericPpdmPlusPir,
    ] {
        group.bench_with_input(BenchmarkId::new("score", tech.name()), &tech, |b, &t| {
            b.iter(|| score_technology(t, &scenario).unwrap())
        });
    }
    group.finish();
}

fn bench_independence(c: &mut Criterion) {
    let mut group = c.benchmark_group("independence");
    group.sample_size(10);
    group.bench_function("e1_to_e7", |b| b.iter(|| all_experiments().unwrap()));
    group.finish();
}

fn bench_fig_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_tradeoff");
    group.sample_size(10);
    group.bench_function("sweep_k3_n80", |b| {
        b.iter(|| {
            let mut rng = seeded(1);
            tradeoff_sweep(true, &[3], 80, &mut rng).unwrap()
        })
    });
    group.finish();
}

fn bench_fig_sparsity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_sparsity");
    group.sample_size(10);
    for dims in [4usize, 32] {
        group.bench_with_input(BenchmarkId::new("linkage", dims), &dims, |b, &d| {
            b.iter(|| linkage_rate_at_dimension(120, d, 1.0, 7))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_independence,
    bench_fig_tradeoff,
    bench_fig_sparsity
);
criterion_main!(benches);
