//! Thread-scaling and mask-packing benches for the `tdf-par` substrate.
//!
//! Two families:
//!
//! * `scaling/*` — the parallelized kernels (MDAV, Mondrian, record
//!   linkage, multi-server PIR) at 1/2/4 `tdf-par` threads. Each summary
//!   records the pinned thread count; on a single-core host the three
//!   rows coincide, which is itself the determinism story — the *results*
//!   are bit-identical at every point of the series.
//! * `packing/*` — the word-packed PIR scan against the pre-PR reference
//!   (one heap allocation per record, `Vec<bool>` masks, one RNG draw per
//!   mask bit), single-threaded, so the packing win is isolated from
//!   thread scaling.
//!
//! Emits `BENCH_par.json`.

use rngkit::{Rng, SeedableRng};
use tdf_anonymity::mondrian_anonymize;
use tdf_bench::harness::Harness;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_pir::bits::BitVec;
use tdf_pir::linear;
use tdf_pir::store::Database;
use tdf_sdc::microaggregation::mdav_microaggregate;
use tdf_sdc::risk::record_linkage_rate;

fn rng() -> rngkit::rngs::StdRng {
    rngkit::rngs::StdRng::seed_from_u64(tdf_bench::seed_from_env(0x9A17))
}

/// The pre-PR database layout: one heap allocation per record.
struct LegacyDb {
    records: Vec<Vec<u8>>,
}

impl LegacyDb {
    fn xor_selected(&self, mask: &[bool]) -> Vec<u8> {
        let mut acc = vec![0u8; self.records.first().map_or(0, Vec::len)];
        for (i, &selected) in mask.iter().enumerate() {
            if selected {
                for (a, b) in acc.iter_mut().zip(&self.records[i]) {
                    *a ^= b;
                }
            }
        }
        acc
    }
}

/// The pre-PR linear retrieval: per-bit RNG draws for the shares and the
/// branchy bool-mask scan per server.
fn legacy_retrieve<R: Rng + ?Sized>(rng: &mut R, db: &LegacyDb, k: usize, index: usize) -> Vec<u8> {
    let n = db.records.len();
    let mut shares: Vec<Vec<bool>> = (0..k - 1)
        .map(|_| (0..n).map(|_| rng.gen::<bool>()).collect())
        .collect();
    let last: Vec<bool> = (0..n)
        .map(|i| shares.iter().fold(i == index, |acc, s| acc ^ s[i]))
        .collect();
    shares.push(last);
    let mut acc = vec![0u8; db.records.first().map_or(0, Vec::len)];
    for share in &shares {
        for (a, b) in acc.iter_mut().zip(db.xor_selected(share)) {
            *a ^= b;
        }
    }
    acc
}

fn bench_scaling(h: &mut Harness) {
    let d = patients(&PatientConfig {
        n: 5000,
        ..Default::default()
    });
    let qi = d.schema().quasi_identifier_indices();
    for t in [1usize, 2, 4] {
        h.bench_at_threads(&format!("scaling/mdav_n5000_k5_t{t}"), t, || {
            mdav_microaggregate(&d, &qi, 5).expect("mdav")
        });
    }

    let dm = patients(&PatientConfig {
        n: 4000,
        ..Default::default()
    });
    for t in [1usize, 2, 4] {
        h.bench_at_threads(&format!("scaling/mondrian_n4000_k5_t{t}"), t, || {
            mondrian_anonymize(&dm, 5)
        });
    }

    let dl = patients(&PatientConfig {
        n: 1500,
        ..Default::default()
    });
    let masked = mdav_microaggregate(&dl, &dl.schema().quasi_identifier_indices(), 5)
        .expect("mdav")
        .data;
    let qi_l = dl.schema().quasi_identifier_indices();
    for t in [1usize, 2, 4] {
        h.bench_at_threads(&format!("scaling/linkage_n1500_t{t}"), t, || {
            record_linkage_rate(&dl, &masked, &qi_l).expect("linkage")
        });
    }

    let n = 65_536;
    let db = Database::new((0..n).map(|i| vec![(i % 251) as u8; 32]).collect());
    for t in [1usize, 2, 4] {
        let mut r = rng();
        h.bench_at_threads(
            &format!("scaling/pir_linear_4server_n65536_t{t}"),
            t,
            || linear::retrieve(&mut r, &db, 4, 12_345),
        );
    }
}

/// One packing comparison at `n` records of 32 bytes. `n = 16384` keeps
/// the database L2-resident so the scans themselves are compared;
/// `n = 65536` (2 MiB) is DRAM-bound, where the packed path saturates
/// memory bandwidth and the ratio narrows to the bandwidth gap.
fn bench_packing_at(h: &mut Harness, n: usize) {
    let raw: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; 32]).collect();
    let db = Database::new(raw.clone());
    let legacy = LegacyDb { records: raw };

    let mut r = rng();
    let mask = BitVec::random(&mut r, n);
    let bools = mask.to_bools();

    par::with_threads(1, || {
        h.bench(&format!("packing/scan_packed_n{n}"), || {
            db.xor_selected(&mask)
        });
        h.bench(&format!("packing/scan_bools_flat_n{n}"), || {
            db.xor_selected_bools(&bools)
        });
        h.bench(&format!("packing/scan_bools_legacy_n{n}"), || {
            legacy.xor_selected(&bools)
        });

        let mut r1 = rng();
        h.bench(&format!("packing/retrieve_packed_2server_n{n}"), || {
            linear::retrieve(&mut r1, &db, 2, n / 8)
        });
        let mut r2 = rng();
        h.bench(&format!("packing/retrieve_legacy_2server_n{n}"), || {
            legacy_retrieve(&mut r2, &legacy, 2, n / 8)
        });
    });
}

fn bench_packing(h: &mut Harness) {
    bench_packing_at(h, 16_384);
    bench_packing_at(h, 65_536);
}

fn main() {
    let mut h = Harness::new("par");
    bench_scaling(&mut h);
    bench_packing(&mut h);
    h.finish().expect("write BENCH_par.json");
}
