//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! MDAV vs fixed-size microaggregation, Mondrian vs recoding vs
//! microaggregation for k-anonymity, and additive vs Shamir sharing.
//! Criterion measures time; each iteration also computes the quality
//! metric so `--verbose` output doubles as the quality table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdf_anonymity::hierarchy::Hierarchy;
use tdf_anonymity::mondrian::mondrian_anonymize;
use tdf_anonymity::recoding::minimal_recoding;
use tdf_mathkit::Fp61;
use tdf_microdata::rng::seeded;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_sdc::microaggregation::{fixed_microaggregate, mdav_microaggregate};
use tdf_smc::sharing::{
    additive_reconstruct, additive_share, shamir_reconstruct, shamir_share,
};

fn ablate_microagg(c: &mut Criterion) {
    let data = patients(&PatientConfig { n: 300, ..Default::default() });
    let qi = data.schema().quasi_identifier_indices();
    let mut group = c.benchmark_group("ablate_microagg");
    for k in [3usize, 10] {
        group.bench_with_input(BenchmarkId::new("mdav", k), &k, |b, &k| {
            b.iter(|| mdav_microaggregate(&data, &qi, k).unwrap().sse)
        });
        group.bench_with_input(BenchmarkId::new("fixed", k), &k, |b, &k| {
            b.iter(|| fixed_microaggregate(&data, &qi, k).unwrap().sse)
        });
    }
    group.finish();
}

fn ablate_kanon(c: &mut Criterion) {
    let data = patients(&PatientConfig { n: 200, ..Default::default() });
    let qi = data.schema().quasi_identifier_indices();
    let hierarchies = vec![
        Hierarchy::Interval { base_width: 5.0, origin: 0.0, levels: 3 },
        Hierarchy::Interval { base_width: 10.0, origin: 0.0, levels: 3 },
    ];
    let mut group = c.benchmark_group("ablate_kanon");
    group.sample_size(10);
    group.bench_function("mondrian_k5", |b| b.iter(|| mondrian_anonymize(&data, 5)));
    group.bench_function("microagg_k5", |b| {
        b.iter(|| mdav_microaggregate(&data, &qi, 5).unwrap())
    });
    group.bench_function("recoding_k5", |b| {
        b.iter(|| minimal_recoding(&data, &hierarchies, 5, 10).unwrap())
    });
    group.finish();
}

fn ablate_smc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_smc");
    let secret = Fp61::new(123_456_789);
    for parties in [3usize, 10] {
        group.bench_with_input(BenchmarkId::new("additive", parties), &parties, |b, &k| {
            b.iter(|| {
                let mut rng = seeded(1);
                additive_reconstruct(&additive_share(&mut rng, secret, k))
            })
        });
        group.bench_with_input(BenchmarkId::new("shamir", parties), &parties, |b, &n| {
            b.iter(|| {
                let mut rng = seeded(1);
                let shares = shamir_share(&mut rng, secret, n / 2 + 1, n);
                shamir_reconstruct(&shares[..n / 2 + 1])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablate_microagg, ablate_kanon, ablate_smc);
criterion_main!(benches);
