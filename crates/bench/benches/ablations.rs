//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! MDAV vs fixed-size microaggregation, Mondrian vs recoding vs
//! microaggregation for k-anonymity, and additive vs Shamir sharing.
//! The harness measures time; each iteration also computes the quality
//! metric so the reports double as the quality table. Emits
//! `BENCH_ablations.json` — the Mondrian and microaggregation entries
//! are the canonical hot-path baselines for future perf PRs.

use tdf_anonymity::hierarchy::Hierarchy;
use tdf_anonymity::mondrian::mondrian_anonymize;
use tdf_anonymity::recoding::minimal_recoding;
use tdf_bench::harness::Harness;
use tdf_mathkit::Fp61;
use tdf_microdata::rng::seeded;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_sdc::microaggregation::{fixed_microaggregate, mdav_microaggregate};
use tdf_smc::sharing::{additive_reconstruct, additive_share, shamir_reconstruct, shamir_share};

fn seed() -> u64 {
    tdf_bench::seed_from_env(0xD0_C7)
}

fn ablate_microagg(h: &mut Harness) {
    let data = patients(&PatientConfig {
        n: 300,
        seed: seed(),
        ..Default::default()
    });
    let qi = data.schema().quasi_identifier_indices();
    for k in [3usize, 10] {
        h.bench(&format!("ablate_microagg/mdav_k{k}"), || {
            mdav_microaggregate(&data, &qi, k).unwrap().sse
        });
        h.bench(&format!("ablate_microagg/fixed_k{k}"), || {
            fixed_microaggregate(&data, &qi, k).unwrap().sse
        });
    }
}

fn ablate_kanon(h: &mut Harness) {
    let data = patients(&PatientConfig {
        n: 200,
        seed: seed(),
        ..Default::default()
    });
    let qi = data.schema().quasi_identifier_indices();
    let hierarchies = vec![
        Hierarchy::Interval {
            base_width: 5.0,
            origin: 0.0,
            levels: 3,
        },
        Hierarchy::Interval {
            base_width: 10.0,
            origin: 0.0,
            levels: 3,
        },
    ];
    h.bench("ablate_kanon/mondrian_k5", || mondrian_anonymize(&data, 5));
    h.bench("ablate_kanon/microagg_k5", || {
        mdav_microaggregate(&data, &qi, 5).unwrap()
    });
    h.bench("ablate_kanon/recoding_k5", || {
        minimal_recoding(&data, &hierarchies, 5, 10).unwrap()
    });
}

fn ablate_smc(h: &mut Harness) {
    let secret = Fp61::new(123_456_789);
    for parties in [3usize, 10] {
        h.bench(&format!("ablate_smc/additive_{parties}party"), || {
            let mut rng = seeded(seed());
            additive_reconstruct(&additive_share(&mut rng, secret, parties))
        });
        h.bench(&format!("ablate_smc/shamir_{parties}party"), || {
            let mut rng = seeded(seed());
            let shares = shamir_share(&mut rng, secret, parties / 2 + 1, parties);
            shamir_reconstruct(&shares[..parties / 2 + 1])
        });
    }
}

fn main() {
    let mut h = Harness::new("ablations");
    ablate_microagg(&mut h);
    ablate_kanon(&mut h);
    ablate_smc(&mut h);
    h.finish().expect("write BENCH_ablations.json");
}
