//! Performance benches for the substrates: big-integer modular
//! exponentiation, the Mersenne field, PIR retrieval per scheme, Apriori,
//! the query auditor, and secure protocols. Emits `BENCH_substrates.json`
//! with median/p95 per benchmark — the baseline future perf PRs diff
//! against.

use rngkit::SeedableRng;
use tdf_bench::harness::Harness;
use tdf_mathkit::modular::pow_mod;
use tdf_mathkit::primes::random_prime;
use tdf_mathkit::{BigUint, Fp61};
use tdf_microdata::synth::{transactions, TransactionConfig};
use tdf_pir::store::Database;
use tdf_pir::{cpir, cube, linear, square};
use tdf_ppdm::rules::apriori;
use tdf_querydb::control::{Auditor, ControlPolicy};
use tdf_querydb::statdb::StatDb;
use tdf_smc::scalar_product::secure_scalar_product;
use tdf_smc::secure_sum::sharing_secure_sum;

fn rng() -> rngkit::rngs::StdRng {
    rngkit::rngs::StdRng::seed_from_u64(tdf_bench::seed_from_env(0xBE7C))
}

fn bench_bigint(h: &mut Harness) {
    let mut r = rng();
    for bits in [128usize, 256, 512] {
        let m = random_prime(&mut r, bits);
        let base = BigUint::from_u64(0xDEAD_BEEF);
        let exp = m.sub_ref(&BigUint::one());
        h.bench(&format!("mathkit/pow_mod_{bits}"), || {
            pow_mod(&base, &exp, &m)
        });
    }
    h.bench("mathkit/fp61_mul_chain", || {
        let x = Fp61::new(0x1234_5678_9ABC);
        let mut acc = Fp61::ONE;
        for _ in 0..1000 {
            acc *= x;
        }
        acc
    });
}

fn bench_pir(h: &mut Harness) {
    let n = 4096;
    let db = Database::new((0..n).map(|i| vec![(i % 251) as u8; 16]).collect());
    let bits = Database::from_bits(&(0..n).map(|i| i % 7 == 0).collect::<Vec<_>>());
    let mut r = rng();
    h.bench("pir/linear_2server_n4096", || {
        linear::retrieve(&mut r, &db, 2, 1000)
    });
    let mut r = rng();
    h.bench("pir/square_2server_n4096", || {
        square::retrieve(&mut r, &db, 1000)
    });
    let mut r = rng();
    h.bench("pir/cube_8server_d3_n4096", || {
        cube::retrieve(&mut r, &db, 3, 1000)
    });
    let mut r = rng();
    let client = cpir::Client::new(&mut r, 96);
    h.bench("pir/cpir_bit_n4096", || {
        cpir::retrieve_bit(&mut r, &client, &bits, 1000)
    });
}

fn bench_mining(h: &mut Harness) {
    let txs = transactions(&TransactionConfig::default());
    h.bench("mining/apriori_2000tx", || apriori(&txs, 0.1));
}

fn bench_auditor(h: &mut Harness) {
    let data = tdf_microdata::synth::patients(&tdf_microdata::synth::PatientConfig {
        n: 60,
        ..Default::default()
    });
    h.bench("querydb/audited_sum_stream_n60", || {
        let mut db = StatDb::new(
            data.clone(),
            ControlPolicy::Audit(Auditor::new("blood_pressure", data.num_rows())),
        );
        for t in [80.0f64, 85.0, 90.0, 95.0] {
            let q = format!("SELECT SUM(blood_pressure) FROM t WHERE weight > {t}");
            db.query_str(&q).unwrap();
        }
        db.refusals()
    });
}

fn bench_smc(h: &mut Harness) {
    let mut r = rng();
    let inputs: Vec<Fp61> = (0..10u64).map(Fp61::new).collect();
    h.bench("smc/secure_sum_10party", || {
        sharing_secure_sum(&mut r, &inputs)
    });
    let mut r = rng();
    let x: Vec<Fp61> = (0..64u64).map(Fp61::new).collect();
    let y: Vec<Fp61> = (0..64u64).map(|v| Fp61::new(v * 3)).collect();
    h.bench("smc/scalar_product_d64", || {
        secure_scalar_product(&mut r, &x, &y)
    });
}

fn main() {
    let mut h = Harness::new("substrates");
    bench_bigint(&mut h);
    bench_pir(&mut h);
    bench_mining(&mut h);
    bench_auditor(&mut h);
    bench_smc(&mut h);
    h.finish().expect("write BENCH_substrates.json");
}
