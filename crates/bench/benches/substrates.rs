//! Performance benches for the substrates: big-integer modular
//! exponentiation, the Mersenne field, PIR retrieval per scheme, Apriori,
//! the query auditor, and secure protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use tdf_mathkit::modular::pow_mod;
use tdf_mathkit::primes::random_prime;
use tdf_mathkit::{BigUint, Fp61};
use tdf_microdata::synth::{transactions, TransactionConfig};
use tdf_pir::store::Database;
use tdf_pir::{cpir, cube, linear, square};
use tdf_ppdm::rules::apriori;
use tdf_querydb::control::{Auditor, ControlPolicy};
use tdf_querydb::statdb::StatDb;
use tdf_smc::scalar_product::secure_scalar_product;
use tdf_smc::secure_sum::sharing_secure_sum;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0xBE7C)
}

fn bench_bigint(c: &mut Criterion) {
    let mut group = c.benchmark_group("mathkit");
    let mut r = rng();
    for bits in [128usize, 256, 512] {
        let m = random_prime(&mut r, bits);
        let base = BigUint::from_u64(0xDEAD_BEEF);
        let exp = m.sub_ref(&BigUint::one());
        group.bench_with_input(BenchmarkId::new("pow_mod", bits), &bits, |b, _| {
            b.iter(|| pow_mod(&base, &exp, &m))
        });
    }
    group.bench_function("fp61_mul_chain", |b| {
        let x = Fp61::new(0x1234_5678_9ABC);
        b.iter(|| {
            let mut acc = Fp61::ONE;
            for _ in 0..1000 {
                acc *= x;
            }
            acc
        })
    });
    group.finish();
}

fn bench_pir(c: &mut Criterion) {
    let mut group = c.benchmark_group("pir");
    let n = 4096;
    let db = Database::new((0..n).map(|i| vec![(i % 251) as u8; 16]).collect());
    let bits = Database::from_bits(&(0..n).map(|i| i % 7 == 0).collect::<Vec<_>>());
    let mut r = rng();
    group.bench_function("linear_2server_n4096", |b| {
        b.iter(|| linear::retrieve(&mut r, &db, 2, 1000))
    });
    group.bench_function("square_2server_n4096", |b| {
        b.iter(|| square::retrieve(&mut r, &db, 1000))
    });
    group.bench_function("cube_8server_d3_n4096", |b| {
        b.iter(|| cube::retrieve(&mut r, &db, 3, 1000))
    });
    let client = cpir::Client::new(&mut r, 96);
    group.sample_size(10);
    group.bench_function("cpir_bit_n4096", |b| {
        b.iter(|| cpir::retrieve_bit(&mut r, &client, &bits, 1000))
    });
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let txs = transactions(&TransactionConfig::default());
    let mut group = c.benchmark_group("mining");
    group.sample_size(20);
    group.bench_function("apriori_2000tx", |b| b.iter(|| apriori(&txs, 0.1)));
    group.finish();
}

fn bench_auditor(c: &mut Criterion) {
    let data = tdf_microdata::synth::patients(&tdf_microdata::synth::PatientConfig {
        n: 60,
        ..Default::default()
    });
    let mut group = c.benchmark_group("querydb");
    group.sample_size(10);
    group.bench_function("audited_sum_stream_n60", |b| {
        b.iter(|| {
            let mut db = StatDb::new(
                data.clone(),
                ControlPolicy::Audit(Auditor::new("blood_pressure", data.num_rows())),
            );
            for t in [80.0f64, 85.0, 90.0, 95.0] {
                let q = format!("SELECT SUM(blood_pressure) FROM t WHERE weight > {t}");
                db.query_str(&q).unwrap();
            }
            db.refusals()
        })
    });
    group.finish();
}

fn bench_smc(c: &mut Criterion) {
    let mut group = c.benchmark_group("smc");
    let mut r = rng();
    let inputs: Vec<Fp61> = (0..10u64).map(Fp61::new).collect();
    group.bench_function("secure_sum_10party", |b| {
        b.iter(|| sharing_secure_sum(&mut r, &inputs))
    });
    let x: Vec<Fp61> = (0..64u64).map(Fp61::new).collect();
    let y: Vec<Fp61> = (0..64u64).map(|v| Fp61::new(v * 3)).collect();
    group.bench_function("scalar_product_d64", |b| {
        b.iter(|| secure_scalar_product(&mut r, &x, &y))
    });
    group.finish();
}

criterion_group!(benches, bench_bigint, bench_pir, bench_mining, bench_auditor, bench_smc);
criterion_main!(benches);
