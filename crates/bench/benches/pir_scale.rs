//! PIR-at-scale bench: amortized per-query online cost of the fused
//! batch sweep and the offline/online hint path against the classic
//! single-query linear scan, at up to 10 million records.
//!
//! Three series per database size `n` (record size 32 B):
//!
//! * `single_q1_n*` — one 2-server linear retrieval; the full-scan
//!   baseline every other entry is measured against.
//! * `batch_q{q}_n*` — one fused `q`-lane sweep, reported as
//!   **amortized per-query** latency (sweep wall time ÷ q). The fused
//!   sweep reads each database word once for all lanes, so the
//!   amortization is of *memory traffic*; the XOR compute per query is
//!   information-theoretically irreducible (~n/2 records per server).
//! * `hint_offline_n*` / `hint_online_n*` — the two halves of the
//!   offline/online split: one preprocessing pass building 4·⌈√n⌉
//!   hints, and one O(√n)-word online retrieval against that pool. The
//!   online entry is the sublinear headline: it touches
//!   `(⌈√n⌉ − 1) · 4` record-words instead of `2 · n` mask-words.
//!
//! Every sample is one real invocation fed through
//! [`Harness::record_latencies`] — no warmup-calibrated inner loops, so
//! the 320 MB sweeps at n = 10⁷ are timed exactly as they run. Counters
//! embed `n`, `q` and the cost-model `words_scanned` so the artefact is
//! self-describing. Correctness is asserted in-bench: fused batch
//! results must be bit-identical to sequential single-query
//! retrievals, and every hint answer must equal the stored record.
//!
//! Environment knobs:
//!
//! | variable                | default | meaning                        |
//! |-------------------------|---------|--------------------------------|
//! | `TDF_PIR_SCALE_QUICK`   | unset   | set ⇒ n ∈ {10⁵}, q ∈ {1, 8}    |
//! | `TDF_PIR_SCALE_SAMPLES` | 7       | timed invocations per entry    |
//!
//! Emits `BENCH_pir_scale.json`.

use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use std::time::Instant;
use tdf_bench::harness::Harness;
use tdf_pir::cost::{batch_scan_words, hint_offline_words, hint_online_words, linear_scan_words};
use tdf_pir::hints::ClientHints;
use tdf_pir::store::Database;

const RECORD_SIZE: usize = 32;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `100_000` → `"1e5"` — compact ids that sort with the sweep.
fn label(n: usize) -> String {
    let exp = (n as f64).log10().round() as u32;
    if 10usize.pow(exp) == n {
        format!("1e{exp}")
    } else {
        format!("{n}")
    }
}

/// Seed-deterministic synthetic store: splitmix-mixed bytes per record.
fn build_db(n: usize, seed: u64) -> Database {
    Database::from_fn(n, RECORD_SIZE, |i, rec| {
        let mut state = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for chunk in rec.chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
    })
}

/// Indices spread across the store, deterministic in (n, q, round).
fn indices(n: usize, q: usize, round: usize) -> Vec<usize> {
    (0..q)
        .map(|t| (t * (n / q.max(1)).max(1) + round * 17 + 3) % n)
        .collect()
}

fn main() {
    let quick = std::env::var_os("TDF_PIR_SCALE_QUICK").is_some();
    let samples = env_u64("TDF_PIR_SCALE_SAMPLES", 7).max(1) as usize;
    let (ns, qs): (Vec<usize>, Vec<usize>) = if quick {
        (vec![100_000], vec![1, 8])
    } else {
        (vec![100_000, 1_000_000, 10_000_000], vec![1, 8, 64])
    };

    let mut h = Harness::new("pir_scale");
    for &n in &ns {
        let tag = label(n);
        let db = build_db(n, 0x51CA1E ^ n as u64);
        let mut rng = StdRng::seed_from_u64(0xBA7C4ED ^ n as u64);

        // Baseline: one classic 2-server linear retrieval, full scan.
        let mut lat = Vec::with_capacity(samples);
        for round in 0..samples {
            let index = indices(n, 1, round)[0];
            let start = Instant::now();
            let (record, _, _) = tdf_pir::linear::retrieve(&mut rng, &db, 2, index);
            lat.push(start.elapsed().as_nanos() as u64);
            assert_eq!(record, db.record(index).to_vec());
        }
        h.record_latencies(
            &format!("single_q1_n{tag}"),
            &lat,
            vec![
                ("n".into(), n as u64),
                ("q".into(), 1),
                ("words_scanned".into(), linear_scan_words(2, n)),
            ],
        );

        // Fused batches: amortized per-query sweep time, with an
        // in-bench bit-identity check against sequential retrievals.
        for &q in &qs {
            let mut lat = Vec::with_capacity(samples);
            for round in 0..samples {
                let targets = indices(n, q, round);
                let start = Instant::now();
                let outcome = tdf_pir::batch::retrieve_batch(&mut rng, &db, &targets);
                lat.push((start.elapsed().as_nanos() / q as u128) as u64);
                assert!(!outcome.degraded, "no fault plan is installed");
                if round == 0 {
                    let sequential: Vec<Vec<u8>> = targets
                        .iter()
                        .map(|&i| tdf_pir::linear::retrieve(&mut rng, &db, 2, i).0)
                        .collect();
                    assert_eq!(
                        outcome.records, sequential,
                        "fused batch must be bit-identical to sequential retrievals"
                    );
                } else {
                    for (t, record) in targets.iter().zip(&outcome.records) {
                        assert_eq!(record, db.record(*t), "index {t}");
                    }
                }
            }
            h.record_latencies(
                &format!("batch_q{q}_n{tag}"),
                &lat,
                vec![
                    ("n".into(), n as u64),
                    ("q".into(), q as u64),
                    ("words_scanned".into(), batch_scan_words(q, n)),
                ],
            );
        }

        // Offline/online hint split: 4·⌈√n⌉ hints so the pool answers a
        // bench run's worth of queries without refreshing mid-timing.
        let hint_count = 4 * (n as f64).sqrt().ceil() as usize;
        let offline_samples = samples.min(3);
        let mut pool = None;
        let mut lat = Vec::with_capacity(offline_samples);
        for round in 0..offline_samples {
            let start = Instant::now();
            let built = ClientHints::prepare(&db, 0x0FF11E ^ round as u64, hint_count);
            lat.push(start.elapsed().as_nanos() as u64);
            pool = Some(built);
        }
        let mut pool = pool.expect("offline pass ran");
        h.record_latencies(
            &format!("hint_offline_n{tag}"),
            &lat,
            vec![
                ("n".into(), n as u64),
                ("hints".into(), hint_count as u64),
                (
                    "words_scanned".into(),
                    hint_offline_words(hint_count, pool.set_size(), RECORD_SIZE),
                ),
            ],
        );

        // Online: O(√n) words per answered query. Samples that trigger a
        // pool refresh are re-drawn so the series is pure online cost.
        let mut lat = Vec::with_capacity(samples);
        let mut round = 0usize;
        while lat.len() < samples {
            let index = indices(n, 1, 7 + round)[0];
            round += 1;
            let epoch = pool.epoch();
            let start = Instant::now();
            let answer = pool.retrieve(&db, index);
            let elapsed = start.elapsed().as_nanos() as u64;
            assert_eq!(answer.record, db.record(index).to_vec());
            if pool.epoch() == epoch {
                lat.push(elapsed);
            }
        }
        h.record_latencies(
            &format!("hint_online_n{tag}"),
            &lat,
            vec![
                ("n".into(), n as u64),
                ("q".into(), 1),
                (
                    "words_scanned".into(),
                    hint_online_words(pool.set_size(), RECORD_SIZE),
                ),
            ],
        );
    }
    h.finish().expect("write BENCH_pir_scale.json");
}
