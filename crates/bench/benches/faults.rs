//! Robustness overhead benches: what fault tolerance costs when nothing
//! faults. No plan is installed for any measurement, so every guard is on
//! its fast path — this is the price paid on every healthy request.
//!
//! Paired ids, per EXPERIMENTS P3/P4 (the `*_guarded` median must stay
//! within the noise floor of its `*_plain` twin, and redundant PIR within
//! its 1× words budget at t faults = 0):
//!
//! * `pir_plain_2server` vs `pir_redundant_m6_t1` — checksum-verified
//!   pairwise retrieval against the plain 2-server protocol it wraps;
//! * `par_map_plain` vs `par_map_guarded` — `try_par_map_range`'s
//!   panic-to-typed-error boundary against the plain entry point;
//! * `querydb_eval_plain` vs `querydb_eval_guarded` — evaluation under an
//!   explicit (roomy) row allowance against the unlimited path.

use rngkit::SeedableRng;
use tdf_bench::harness::Harness;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_pir::redundant::{retrieve, RetryPolicy, VerifiedDatabase};
use tdf_pir::store::Database;
use tdf_querydb::engine::{evaluate, evaluate_with_limits, QueryLimits};
use tdf_querydb::parser::parse;

fn main() {
    faultkit::set_plan(None);
    let mut h = Harness::new("faults");

    let records: Vec<Vec<u8>> = (0..4096usize).map(|i| vec![i as u8; 32]).collect();
    let db = Database::new(records.clone());
    let vdb = VerifiedDatabase::new(records);
    let policy = RetryPolicy::default();
    h.bench_at_threads("pir_plain_2server_n4096", 1, || {
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(0xFA);
        tdf_pir::linear::retrieve(&mut rng, &db, 2, 2048)
    });
    h.bench_at_threads("pir_redundant_m6_t1_n4096", 1, || {
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(0xFA);
        retrieve(&mut rng, &vdb, 6, 1, 2048, &policy).expect("fault-free")
    });

    const N: usize = 200_000;
    let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(11);
    h.bench_at_threads("par_map_plain_n200k", 4, || par::par_map_range(N, work));
    h.bench_at_threads("par_map_guarded_n200k", 4, || {
        par::try_par_map_range(N, work).expect("no faults installed")
    });

    let d = patients(&PatientConfig {
        n: 4000,
        ..Default::default()
    });
    let q = parse("SELECT AVG(weight) FROM t WHERE height >= 150").expect("query parses");
    let roomy = QueryLimits::with_max_rows(1 << 30);
    h.bench_at_threads("querydb_eval_plain_n4000", 1, || {
        evaluate(&d, &q).expect("evaluates")
    });
    h.bench_at_threads("querydb_eval_guarded_n4000", 1, || {
        evaluate_with_limits(&d, &q, &roomy).expect("evaluates")
    });

    h.finish().expect("write BENCH_faults.json");
}
