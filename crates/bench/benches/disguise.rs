//! Reversible-disguising bench: WAL-backed disguise/restore transaction
//! latency and crash-recovery replay cost.
//!
//! The `txn/` series measures the full unsubscribe→resubscribe round
//! trip on a live engine — two journal appends (each an fsync: the WAL
//! is durable before any cell moves) plus the in-memory cell rewrites —
//! via [`Harness::bench_with_obs`], so the `disguise.*` counters for one
//! round trip ride along in the artefact. The `recover/` series measures
//! [`DisguiseEngine::open`] over a journal holding committed disguise
//! transactions: the cost a crashed process pays to replay its way back
//! to the committed state.
//!
//! Environment knobs (all optional):
//!
//! | variable             | default | meaning                            |
//! |----------------------|---------|------------------------------------|
//! | `TDF_DISGUISE_ROWS`  | 400     | ledger rows                        |
//! | `TDF_DISGUISE_USERS` | 8       | owners the rows round-robin over   |
//!
//! Emits `BENCH_disguise.json`.

use tdf_bench::harness::Harness;
use tdf_disguise::{owned_patients, DisguiseEngine, DisguisePolicy};
use tdf_microdata::synth::PatientConfig;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn wal_path(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "tdf_bench_disguise_{}_{tag}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn main() {
    let mut h = Harness::new("disguise");
    let rows = env_u64("TDF_DISGUISE_ROWS", 400) as usize;
    let users = env_u64("TDF_DISGUISE_USERS", 8);
    let seed = tdf_bench::seed_from_env(0xD15C);
    let cfg = PatientConfig {
        n: rows,
        seed,
        ..PatientConfig::default()
    };
    let base = owned_patients(&cfg, users);

    // Round trip: disguise then restore one owner, WAL-durable at both
    // commit points. The journal grows by two frames per iteration, but
    // the fsyncs bound the iteration rate, so the file stays small.
    {
        let path = wal_path("txn");
        let (mut engine, _) = DisguiseEngine::open(
            &path,
            base.clone(),
            DisguisePolicy::patients_default(),
            seed,
        )
        .expect("engine opens");
        let mut user = 0u64;
        // Counters on for the embedded capture; their increments are
        // noise next to the two fsyncs per round trip.
        obs::set_level(1);
        h.bench_with_obs(&format!("txn/roundtrip_n{rows}_u{users}"), || {
            user = user % users + 1;
            let out = engine.disguise(user).expect("disguise");
            engine.restore(user).expect("restore");
            out.rows
        });
        obs::set_level(0);
        let _ = std::fs::remove_file(&path);
    }

    // Recovery: reopen a journal with every owner committed-disguised;
    // open() replays all the cell images onto the pristine base.
    {
        let path = wal_path("recover");
        let (mut engine, _) = DisguiseEngine::open(
            &path,
            base.clone(),
            DisguisePolicy::patients_default(),
            seed,
        )
        .expect("engine opens");
        for user in 1..=users {
            engine.disguise(user).expect("disguise");
        }
        drop(engine);
        h.bench(&format!("recover/replay_{users}txns_n{rows}"), || {
            let (engine, report) = DisguiseEngine::open(
                &path,
                base.clone(),
                DisguisePolicy::patients_default(),
                seed,
            )
            .expect("recovery opens");
            assert_eq!(report.entries, users as usize);
            engine.disguised_users().len()
        });
        let _ = std::fs::remove_file(&path);
    }

    h.finish().expect("write BENCH_disguise.json");
}
