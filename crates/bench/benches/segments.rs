//! Out-of-core segment benches: what the sealed-segment layer costs and
//! what the epoch cache buys.
//!
//! Three series over the same 4 000-row patients table split into 20
//! sealed segments:
//!
//! * **query** — the streaming evaluator over resident segments and over
//!   a cache budget of a quarter of the table (real spills and reloads
//!   inside the timed body), against the monolithic evaluator.
//! * **epoch_full** — a cold publisher re-clusters all 20 segments, in
//!   memory and out of core.
//! * **epoch_delta** — a warm publisher with exactly one retracted
//!   segment re-clusters that one segment (`s1`), and with nothing
//!   retracted re-clusters none (`s0`, pure cache concatenation). The
//!   acceptance claim is that this series scales with the delta, not the
//!   dataset: `s1` should sit near `full / 20` + concatenation, far
//!   below `full`.
//!
//! Pre-flight asserts pin the bit-identity contracts before anything is
//! timed: segmented queries equal monolithic ones, the out-of-core
//! release equals the resident release, and the delta publish reclusters
//! exactly one segment.
//!
//! Emits `BENCH_segments.json`.

use tdf_bench::harness::Harness;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_microdata::{Dataset, SegmentedDataset};
use tdf_querydb::engine::{evaluate, evaluate_segmented};
use tdf_querydb::parser::parse;
use tdf_sdc::{mdav_microaggregate, EpochMasker, EpochPublisher};

const N: usize = 4_000;
const SEG_ROWS: usize = 200; // 20 sealed segments
const K: usize = 5;

fn table() -> Dataset {
    patients(&PatientConfig {
        n: N,
        ..Default::default()
    })
}

/// A budget of a quarter of the table: at most 5 of the 20 segments fit,
/// so every full pass over the segments spills and reloads for real.
fn out_of_core(d: &Dataset) -> SegmentedDataset {
    let seg = SegmentedDataset::from_dataset(d, SEG_ROWS);
    seg.set_cache_budget(d.heap_bytes() / 4);
    seg
}

fn bench_queries(h: &mut Harness) {
    let d = table();
    let resident = SegmentedDataset::from_dataset(&d, SEG_ROWS);
    let ooc = out_of_core(&d);
    let q = parse("SELECT AVG(blood_pressure) FROM t WHERE weight >= 60").expect("parse");

    // Pre-flight: both segment layouts answer bit-identically to the
    // monolithic evaluator.
    let mono = evaluate(&d, &q).expect("evaluate");
    assert_eq!(evaluate_segmented(&resident, &q).expect("resident"), mono);
    assert_eq!(evaluate_segmented(&ooc, &q).expect("out of core"), mono);

    par::with_threads(1, || {
        h.bench("query_monolithic_n4000", || evaluate(&d, &q).expect("eval"));
        h.bench("query_segmented_resident_n4000", || {
            evaluate_segmented(&resident, &q).expect("eval")
        });
        h.bench("query_segmented_outofcore_n4000", || {
            evaluate_segmented(&ooc, &q).expect("eval")
        });
    });
}

fn bench_epochs(h: &mut Harness) {
    let d = table();
    let qi = d.schema().quasi_identifier_indices();
    let resident = SegmentedDataset::from_dataset(&d, SEG_ROWS);
    let ooc = out_of_core(&d);
    let masker = EpochMasker::Mdav {
        cols: qi.clone(),
        k: K,
    };

    // Pre-flight: the out-of-core release is bit-identical to the
    // resident one, and a warm publisher with one retracted segment
    // re-clusters exactly that segment.
    let r_mem = EpochPublisher::new(masker.clone())
        .publish(&resident)
        .expect("publish");
    let r_ooc = EpochPublisher::new(masker.clone())
        .publish(&ooc)
        .expect("publish");
    assert_eq!((r_mem.reclustered, r_mem.reused), (20, 0));
    assert_eq!(r_ooc.data, r_mem.data, "out-of-core release drifted");

    let mut warm = EpochPublisher::new(masker.clone());
    warm.publish(&resident).expect("warmup publish");
    let last = *resident.segment_ids().last().expect("20 segments");
    warm.invalidate(last);
    let delta = warm.publish(&resident).expect("delta publish");
    assert_eq!((delta.reclustered, delta.reused), (1, 19));
    assert_eq!(delta.data, r_mem.data, "delta republication drifted");

    par::with_threads(1, || {
        h.bench("mdav_batch_n4000_k5", || {
            mdav_microaggregate(&d, &qi, K).expect("mdav")
        });
        h.bench("epoch_full_resident_s20", || {
            EpochPublisher::new(masker.clone())
                .publish(&resident)
                .expect("publish")
        });
        h.bench("epoch_full_outofcore_s20", || {
            EpochPublisher::new(masker.clone())
                .publish(&ooc)
                .expect("publish")
        });
        h.bench("epoch_delta_s1", || {
            warm.invalidate(last);
            warm.publish(&resident).expect("publish")
        });
        h.bench("epoch_delta_s0", || {
            warm.publish(&resident).expect("publish")
        });
    });
}

/// Compaction cost and segment-parallel publication scaling.
///
/// Quality pre-flight on the acceptance population (eight 4-row
/// fragments under Mondrian k = 5): fragments publish 4-member groups,
/// the compacted segment restores the >= k floor, and the cross-epoch
/// linkage rate drops against the verbatim cached re-release. The timed
/// series then measure what those repairs cost at bench scale: merging
/// 100 under-floor segments into 20, and a fully dirty 20-segment
/// publish at 1/2/4 `tdf-par` threads (`par_map_heavy` fan-out).
fn bench_compaction_and_parallel_publish(h: &mut Harness) {
    use tdf_sdc::cross_epoch_linkage_rate;

    let frag_pop = patients(&PatientConfig {
        n: 32,
        ..Default::default()
    });
    let fqi = frag_pop.schema().quasi_identifier_indices();
    let mut frag_seg = SegmentedDataset::from_dataset(&frag_pop, 4);
    let mut publisher = EpochPublisher::new(EpochMasker::Mondrian { k: K }).with_rechurn(0.0);
    let fragmented = publisher.publish(&frag_seg).expect("fragmented publish");
    let rerelease = publisher.publish(&frag_seg).expect("cached re-release");
    let floor = |d: &Dataset| {
        d.group_indices_by(&fqi)
            .values()
            .map(Vec::len)
            .min()
            .unwrap_or(0)
    };
    assert_eq!(
        floor(&fragmented.data),
        4,
        "4-row fragments cap groups at 4"
    );
    frag_seg.compact(32).expect("compact fragments");
    let compacted = publisher.publish(&frag_seg).expect("compacted publish");
    assert!(
        floor(&compacted.data) >= K,
        "compaction restores the k floor"
    );
    let linked_cached =
        cross_epoch_linkage_rate(&frag_pop, &fragmented.data, &rerelease.data, &fqi)
            .expect("linkage");
    let linked_compacted =
        cross_epoch_linkage_rate(&frag_pop, &fragmented.data, &compacted.data, &fqi)
            .expect("linkage");
    assert!(
        linked_compacted < linked_cached,
        "compaction must cut cross-epoch linkage: {linked_compacted} vs {linked_cached}"
    );

    let d = table();
    let qi = d.schema().quasi_identifier_indices();
    let masker = EpochMasker::Mdav {
        cols: qi.clone(),
        k: K,
    };
    let seg = SegmentedDataset::from_dataset(&d, SEG_ROWS);
    let publish = || {
        EpochPublisher::new(masker.clone())
            .publish(&seg)
            .expect("publish")
    };
    // Pre-flight: the parallel fan-out is bit-identical to serial even
    // when the pool really engages (forced 4-core view).
    let serial = par::with_cores(4, || par::with_threads(1, publish));
    let threaded = par::with_cores(4, || par::with_threads(4, publish));
    assert_eq!(serial.data, threaded.data, "parallel publication drifted");

    par::with_threads(1, || {
        h.bench("segment_build_100x40", || {
            SegmentedDataset::from_dataset(&d, 40)
        });
        h.bench("compact_100x40_floor200", || {
            let mut s = SegmentedDataset::from_dataset(&d, 40);
            s.compact(SEG_ROWS).expect("compact")
        });
    });
    for t in [1usize, 2, 4] {
        h.bench_at_threads(&format!("publish_par_s20_t{t}"), t, publish);
    }
}

fn main() {
    let mut h = Harness::new("segments");
    bench_queries(&mut h);
    bench_epochs(&mut h);
    bench_compaction_and_parallel_publish(&mut h);
    h.finish().expect("write BENCH_segments.json");
}
