//! The `TDF_SEED` contract: every report binary routes its randomness
//! through `tdf_bench::seed_from_env`, so a fixed seed must reproduce a
//! bit-identical report, and (for binaries that consume randomness) a
//! different seed must change it.
//!
//! The `TDF_THREADS` contract (PR 2) extends it: the same seed must also
//! reproduce the report bit-identically at *any* thread count — the
//! `tdf-par` kernels fix their chunk boundaries and merge order, so
//! parallelism is an implementation detail the numbers cannot see.

use std::process::Command;

fn run(bin: &str, seed: &str) -> String {
    run_at_threads(bin, seed, "1")
}

fn run_at_threads(bin: &str, seed: &str, threads: &str) -> String {
    let out = Command::new(bin)
        .env("TDF_SEED", seed)
        .env("TDF_THREADS", threads)
        .env_remove("TDF_RESULTS_DIR")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{bin} failed: {:?}", out);
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn same_seed_reproduces_report_bit_identically() {
    let bin = env!("CARGO_BIN_EXE_fig_profiling");
    let a = run(bin, "12345");
    let b = run(bin, "12345");
    assert_eq!(a, b, "two runs with the same TDF_SEED must match exactly");
}

#[test]
fn different_seed_changes_the_report() {
    let bin = env!("CARGO_BIN_EXE_fig_profiling");
    let a = run(bin, "12345");
    let b = run(bin, "54321");
    assert_ne!(
        a, b,
        "different TDF_SEED values must change the synthetic log"
    );
}

#[test]
fn mdav_report_is_identical_at_1_and_4_threads() {
    // fig_tradeoff runs the full §6 composition: MDAV k-anonymization,
    // record-linkage scoring, and PIR cost accounting — all three
    // parallelized kernels in one report.
    let bin = env!("CARGO_BIN_EXE_fig_tradeoff");
    let serial = run_at_threads(bin, "777", "1");
    let parallel = run_at_threads(bin, "777", "4");
    assert_eq!(
        serial, parallel,
        "TDF_THREADS must not change the MDAV report"
    );
}

#[test]
fn pir_report_is_identical_at_1_and_4_threads() {
    let bin = env!("CARGO_BIN_EXE_fig_pir_cost");
    let serial = run_at_threads(bin, "777", "1");
    let parallel = run_at_threads(bin, "777", "4");
    assert_eq!(
        serial, parallel,
        "TDF_THREADS must not change the PIR cost report"
    );
}

#[test]
fn unset_seed_equals_canonical_default() {
    let bin = env!("CARGO_BIN_EXE_fig_sparsity");
    let with_default = run(bin, "0x5BA1");
    let out = Command::new(bin)
        .env_remove("TDF_SEED")
        .env_remove("TDF_RESULTS_DIR")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let unset = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert_eq!(
        with_default, unset,
        "unset TDF_SEED must equal the default seed"
    );
}
