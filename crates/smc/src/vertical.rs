//! Vertically partitioned PPDM: joint statistics over attributes held by
//! *different* owners.
//!
//! In the paper's co-operative market-analysis scenario (§1), two
//! corporations often hold complementary attributes of the same customers
//! (matched by a prior secure join — see [`crate::intersection`]). The
//! joint covariance between an attribute of A and an attribute of B is
//! `cov(x, y) = (x·y − n·x̄·ȳ) / (n − 1)`: the only cross-party term is the
//! scalar product, which [`crate::scalar_product`] computes without either
//! side revealing its column. Means are safe to exchange (they are the
//! aggregates the parties intend to publish anyway).
//!
//! Values are fixed-point encoded into the field with a configurable
//! scale; the accounting is exact, so the result matches the plaintext
//! covariance up to quantization.

use crate::scalar_product::secure_scalar_product;
use crate::transcript::Transcript;
use rngkit::Rng;
use tdf_mathkit::Fp61;

/// Fixed-point encoding scale (values are rounded to 1/SCALE).
pub const SCALE: f64 = 1000.0;

fn encode(xs: &[f64]) -> Vec<Fp61> {
    xs.iter()
        .map(|&x| Fp61::from_i64((x * SCALE).round() as i64))
        .collect()
}

/// Jointly computes `cov(x, y)` where Alice holds column `x` and Bob holds
/// column `y` of the same (aligned) respondents. Returns the covariance
/// and the protocol transcript.
pub fn secure_covariance<R: Rng + ?Sized>(rng: &mut R, x: &[f64], y: &[f64]) -> (f64, Transcript) {
    assert_eq!(x.len(), y.len(), "columns must be aligned");
    assert!(x.len() >= 2, "covariance needs at least two records");
    // The field decodes Σ(x·S)(y·S) as a signed value; it must stay below
    // P/2 or the result silently wraps. Check with the actual magnitudes.
    let bound: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (a * SCALE).abs() * (b * SCALE).abs())
        .sum();
    assert!(
        bound < (tdf_mathkit::field::P / 2) as f64,
        "inputs too large for exact fixed-point covariance (rescale SCALE or split)"
    );
    let n = x.len() as f64;
    let (dot, transcript) = secure_scalar_product(rng, &encode(x), &encode(y));
    // Decode: the field dot product is Σ (x_i·S)(y_i·S) = S²·Σ x_i y_i.
    let sum_xy = dot.to_i64() as f64 / (SCALE * SCALE);
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let cov = (sum_xy - n * mean_x * mean_y) / (n - 1.0);
    (cov, transcript)
}

/// Jointly computes the Pearson correlation across the partition (each
/// party computes its own column's standard deviation locally).
pub fn secure_correlation<R: Rng + ?Sized>(rng: &mut R, x: &[f64], y: &[f64]) -> (f64, Transcript) {
    let (cov, t) = secure_covariance(rng, x, y);
    let sd = |v: &[f64]| {
        let n = v.len() as f64;
        let m = v.iter().sum::<f64>() / n;
        (v.iter().map(|a| (a - m).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
    };
    let denom = sd(x) * sd(y);
    (if denom > 0.0 { cov / denom } else { 0.0 }, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;
    use tdf_microdata::stats;
    use tdf_microdata::synth::{patients, PatientConfig};

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(0xC0D)
    }

    #[test]
    fn covariance_matches_plaintext() {
        let d = patients(&PatientConfig {
            n: 200,
            ..Default::default()
        });
        let x = d.numeric_column(0); // Alice: heights
        let y = d.numeric_column(2); // Bob: blood pressures
        let (secure, _) = secure_covariance(&mut rng(), &x, &y);
        let plain = stats::covariance(&x, &y).unwrap();
        assert!(
            (secure - plain).abs() < 1e-3,
            "secure {secure} vs plain {plain}"
        );
    }

    #[test]
    fn correlation_matches_plaintext() {
        let d = patients(&PatientConfig {
            n: 300,
            ..Default::default()
        });
        let x = d.numeric_column(1);
        let y = d.numeric_column(2);
        let (secure, _) = secure_correlation(&mut rng(), &x, &y);
        let plain = stats::correlation(&x, &y).unwrap();
        assert!(
            (secure - plain).abs() < 1e-4,
            "secure {secure} vs plain {plain}"
        );
    }

    #[test]
    fn negative_covariances_survive_the_field_encoding() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![8.0, 6.0, 4.0, 2.0];
        let (secure, _) = secure_covariance(&mut rng(), &x, &y);
        let plain = stats::covariance(&x, &y).unwrap();
        assert!(plain < 0.0);
        assert!((secure - plain).abs() < 1e-6);
    }

    #[test]
    fn neither_party_sees_raw_columns() {
        let x = vec![171.5, 182.5, 160.5];
        let y = vec![130.0, 140.0, 150.0];
        let (_, t) = secure_covariance(&mut rng(), &x, &y);
        for &v in &x {
            let enc = Fp61::from_i64((v * SCALE).round() as i64).raw();
            assert!(!t.party_saw_value(crate::scalar_product::BOB, enc));
        }
        for &v in &y {
            let enc = Fp61::from_i64((v * SCALE).round() as i64).raw();
            assert!(!t.party_saw_value(crate::scalar_product::ALICE, enc));
        }
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_columns_panic() {
        let _ = secure_covariance(&mut rng(), &[1.0], &[1.0, 2.0]);
    }
}
