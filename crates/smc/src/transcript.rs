//! Protocol transcripts: who sent what to whom.
//!
//! Owner privacy is an *observable* property here: after a protocol run,
//! the transcript contains every message each party received, so a test
//! (or the scoring harness) can check that no party saw anything beyond
//! uniformly-masked field elements and the final result.
//!
//! Integrity is observable too: [`Transcript::send`] checksums every
//! message as recorded by its sender, and [`Transcript::verify`] replays
//! the checksums over the stored messages — a message corrupted in
//! flight (the injected `smc.corrupt_word` fault, or any bug that
//! mutates a recorded payload) is reported as a typed
//! [`TranscriptError`] naming the message, instead of silently skewing
//! the protocol result.

use std::fmt;

/// Identifier of a protocol participant. The dealer / commodity server is
/// conventionally the highest id.
pub type PartyId = usize;

/// One recorded message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Protocol-level tag (e.g. `"masked_partial_sum"`).
    pub tag: &'static str,
    /// Payload rendered as field elements / integers for inspection.
    pub payload: Vec<u64>,
}

/// A corrupted transcript message, found by [`Transcript::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranscriptError {
    /// Index of the first corrupted message.
    pub index: usize,
    /// Checksum recorded when the sender transmitted the message.
    pub expected: u64,
    /// Checksum of the message as stored now.
    pub actual: u64,
}

impl fmt::Display for TranscriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transcript message {} is corrupted (checksum {:#018x}, sender recorded {:#018x})",
            self.index, self.actual, self.expected
        )
    }
}

impl std::error::Error for TranscriptError {}

/// FNV-1a over a message's routing header and payload words.
fn message_checksum(m: &Message) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(&(m.from as u64).to_le_bytes());
    eat(&(m.to as u64).to_le_bytes());
    eat(m.tag.as_bytes());
    for w in &m.payload {
        eat(&w.to_le_bytes());
    }
    h
}

/// An append-only record of a protocol execution.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    messages: Vec<Message>,
    /// `checksums[i]` is the sender-side checksum of `messages[i]`.
    checksums: Vec<u64>,
}

impl Transcript {
    /// Empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message, checksumming it as the sender transmitted it.
    pub fn send(&mut self, from: PartyId, to: PartyId, tag: &'static str, payload: Vec<u64>) {
        obs::count("smc.transcript.messages", 1);
        obs::count("smc.transcript.bytes", 8 * payload.len() as u64);
        let mut message = Message {
            from,
            to,
            tag,
            payload,
        };
        let checksum = message_checksum(&message);
        // Injected fault: the channel flips one payload bit *after* the
        // sender checksummed the message — verify() must catch it.
        if faultkit::fire("smc.corrupt_word") {
            if let Some(w) = message.payload.first_mut() {
                *w ^= 1;
            }
        }
        self.checksums.push(checksum);
        self.messages.push(message);
    }

    /// Replays every message's checksum against the sender-side record.
    /// `Err` names the first corrupted message; `Ok` means every stored
    /// message is exactly what its sender transmitted.
    pub fn verify(&self) -> Result<(), TranscriptError> {
        for (index, (m, &expected)) in self.messages.iter().zip(&self.checksums).enumerate() {
            let actual = message_checksum(m);
            if actual != expected {
                obs::count("smc.transcript.corrupt_detected", 1);
                return Err(TranscriptError {
                    index,
                    expected,
                    actual,
                });
            }
        }
        Ok(())
    }

    /// Order-sensitive digest of the whole transcript — two runs of a
    /// deterministic protocol produce equal digests iff they exchanged
    /// identical messages.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &c in &self.checksums {
            for &b in &c.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// All messages, in order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Messages received by `party` — its entire protocol view.
    pub fn view_of(&self, party: PartyId) -> Vec<&Message> {
        self.messages.iter().filter(|m| m.to == party).collect()
    }

    /// Total payload words exchanged (communication cost proxy).
    pub fn total_words(&self) -> usize {
        self.messages.iter().map(|m| m.payload.len()).sum()
    }

    /// Number of messages exchanged.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when no messages were recorded.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// True when some message received by `party` contains `value` in the
    /// clear — the smoking gun of an owner-privacy breach.
    pub fn party_saw_value(&self, party: PartyId, value: u64) -> bool {
        self.view_of(party)
            .iter()
            .any(|m| m.payload.contains(&value))
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.messages {
            writeln!(
                f,
                "P{} -> P{} [{}]: {} words",
                m.from,
                m.to,
                m.tag,
                m.payload.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_partition_messages() {
        let mut t = Transcript::new();
        t.send(0, 1, "a", vec![10]);
        t.send(1, 2, "b", vec![20, 21]);
        t.send(0, 2, "c", vec![]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.view_of(2).len(), 2);
        assert_eq!(t.view_of(0).len(), 0);
        assert_eq!(t.total_words(), 3);
    }

    #[test]
    fn value_spotting() {
        let mut t = Transcript::new();
        t.send(0, 1, "x", vec![99]);
        assert!(t.party_saw_value(1, 99));
        assert!(!t.party_saw_value(1, 98));
        assert!(!t.party_saw_value(0, 99));
    }

    #[test]
    fn verify_accepts_untouched_and_catches_tampered_transcripts() {
        let mut t = Transcript::new();
        t.send(0, 1, "masked", vec![5, 6, 7]);
        t.send(1, 0, "sum", vec![18]);
        assert_eq!(t.verify(), Ok(()));
        // Tamper with a stored payload word behind verify's back.
        t.messages[1].payload[0] ^= 0x40;
        let err = t.verify().unwrap_err();
        assert_eq!(err.index, 1);
        assert_ne!(err.expected, err.actual);
        assert!(err.to_string().contains("message 1"));
        // Restore: clean again.
        t.messages[1].payload[0] ^= 0x40;
        assert_eq!(t.verify(), Ok(()));
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let build = |swap: bool, word: u64| {
            let mut t = Transcript::new();
            if swap {
                t.send(1, 2, "b", vec![word]);
                t.send(0, 1, "a", vec![1, 2]);
            } else {
                t.send(0, 1, "a", vec![1, 2]);
                t.send(1, 2, "b", vec![word]);
            }
            t.digest()
        };
        assert_eq!(build(false, 9), build(false, 9), "deterministic");
        assert_ne!(build(false, 9), build(true, 9), "order matters");
        assert_ne!(build(false, 9), build(false, 10), "content matters");
    }

    #[test]
    fn display_lists_messages() {
        let mut t = Transcript::new();
        t.send(0, 1, "masked", vec![1, 2, 3]);
        let s = t.to_string();
        assert!(s.contains("P0 -> P1"));
        assert!(s.contains("3 words"));
    }
}
