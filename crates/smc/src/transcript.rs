//! Protocol transcripts: who sent what to whom.
//!
//! Owner privacy is an *observable* property here: after a protocol run,
//! the transcript contains every message each party received, so a test
//! (or the scoring harness) can check that no party saw anything beyond
//! uniformly-masked field elements and the final result.

use std::fmt;

/// Identifier of a protocol participant. The dealer / commodity server is
/// conventionally the highest id.
pub type PartyId = usize;

/// One recorded message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sender.
    pub from: PartyId,
    /// Receiver.
    pub to: PartyId,
    /// Protocol-level tag (e.g. `"masked_partial_sum"`).
    pub tag: &'static str,
    /// Payload rendered as field elements / integers for inspection.
    pub payload: Vec<u64>,
}

/// An append-only record of a protocol execution.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    messages: Vec<Message>,
}

impl Transcript {
    /// Empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message.
    pub fn send(&mut self, from: PartyId, to: PartyId, tag: &'static str, payload: Vec<u64>) {
        obs::count("smc.transcript.messages", 1);
        obs::count("smc.transcript.bytes", 8 * payload.len() as u64);
        self.messages.push(Message {
            from,
            to,
            tag,
            payload,
        });
    }

    /// All messages, in order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Messages received by `party` — its entire protocol view.
    pub fn view_of(&self, party: PartyId) -> Vec<&Message> {
        self.messages.iter().filter(|m| m.to == party).collect()
    }

    /// Total payload words exchanged (communication cost proxy).
    pub fn total_words(&self) -> usize {
        self.messages.iter().map(|m| m.payload.len()).sum()
    }

    /// Number of messages exchanged.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when no messages were recorded.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// True when some message received by `party` contains `value` in the
    /// clear — the smoking gun of an owner-privacy breach.
    pub fn party_saw_value(&self, party: PartyId, value: u64) -> bool {
        self.view_of(party)
            .iter()
            .any(|m| m.payload.contains(&value))
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.messages {
            writeln!(
                f,
                "P{} -> P{} [{}]: {} words",
                m.from,
                m.to,
                m.tag,
                m.payload.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_partition_messages() {
        let mut t = Transcript::new();
        t.send(0, 1, "a", vec![10]);
        t.send(1, 2, "b", vec![20, 21]);
        t.send(0, 2, "c", vec![]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.view_of(2).len(), 2);
        assert_eq!(t.view_of(0).len(), 0);
        assert_eq!(t.total_words(), 3);
    }

    #[test]
    fn value_spotting() {
        let mut t = Transcript::new();
        t.send(0, 1, "x", vec![99]);
        assert!(t.party_saw_value(1, 99));
        assert!(!t.party_saw_value(1, 98));
        assert!(!t.party_saw_value(0, 99));
    }

    #[test]
    fn display_lists_messages() {
        let mut t = Transcript::new();
        t.send(0, 1, "masked", vec![1, 2, 3]);
        let s = t.to_string();
        assert!(s.contains("P0 -> P1"));
        assert!(s.contains("3 words"));
    }
}
