//! Additive and Shamir secret sharing over `F_{2^61−1}`.

use rngkit::Rng;
use tdf_mathkit::Fp61;

/// Splits `secret` into `k ≥ 2` additive shares (all `k` needed to
/// reconstruct; any `k − 1` are jointly uniform).
pub fn additive_share<R: Rng + ?Sized>(rng: &mut R, secret: Fp61, k: usize) -> Vec<Fp61> {
    assert!(k >= 2, "need at least two shares");
    let mut shares: Vec<Fp61> = (0..k - 1).map(|_| Fp61::random(rng)).collect();
    let partial = shares.iter().fold(Fp61::ZERO, |a, &s| a + s);
    shares.push(secret - partial);
    shares
}

/// Reconstructs an additively shared secret.
pub fn additive_reconstruct(shares: &[Fp61]) -> Fp61 {
    shares.iter().fold(Fp61::ZERO, |a, &s| a + s)
}

/// One Shamir share: the evaluation point (nonzero) and the value.
pub type ShamirShare = (Fp61, Fp61);

/// Splits `secret` into `n` Shamir shares with threshold `t` (any `t`
/// shares reconstruct; fewer reveal nothing). Evaluation points are
/// `1..=n`.
pub fn shamir_share<R: Rng + ?Sized>(
    rng: &mut R,
    secret: Fp61,
    t: usize,
    n: usize,
) -> Vec<ShamirShare> {
    assert!(t >= 1 && t <= n, "need 1 <= t <= n");
    // Random polynomial of degree t−1 with constant term = secret.
    let coeffs: Vec<Fp61> = std::iter::once(secret)
        .chain((1..t).map(|_| Fp61::random(rng)))
        .collect();
    (1..=n as u64)
        .map(|x| {
            let x = Fp61::new(x);
            // Horner evaluation.
            let y = coeffs.iter().rev().fold(Fp61::ZERO, |acc, &c| acc * x + c);
            (x, y)
        })
        .collect()
}

/// Reconstructs a Shamir secret from at least `t` shares by Lagrange
/// interpolation at zero. Panics on duplicate evaluation points.
pub fn shamir_reconstruct(shares: &[ShamirShare]) -> Fp61 {
    let mut acc = Fp61::ZERO;
    for (i, &(xi, yi)) in shares.iter().enumerate() {
        let mut num = Fp61::ONE;
        let mut den = Fp61::ONE;
        for (j, &(xj, _)) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(xi != xj, "duplicate evaluation points");
            num *= -xj; // (0 − xj)
            den *= xi - xj;
        }
        acc += yi
            * num
            * den
                .inverse()
                .expect("distinct points give nonzero denominator");
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::prelude::*;
    use rngkit::SeedableRng;
    use tdf_mathkit::field::P;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(404)
    }

    #[test]
    fn additive_round_trip() {
        let mut r = rng();
        for k in [2usize, 3, 10] {
            let secret = Fp61::new(123_456_789);
            let shares = additive_share(&mut r, secret, k);
            assert_eq!(shares.len(), k);
            assert_eq!(additive_reconstruct(&shares), secret);
        }
    }

    #[test]
    fn additive_shares_look_uniform() {
        // The first share of a fixed secret should cover the field broadly.
        let mut r = rng();
        let secret = Fp61::new(7);
        let mut low = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            let s = additive_share(&mut r, secret, 2);
            if s[0].raw() < P / 2 {
                low += 1;
            }
        }
        let f = low as f64 / trials as f64;
        assert!((f - 0.5).abs() < 0.05, "{f}");
    }

    #[test]
    fn shamir_round_trip_with_exactly_t_shares() {
        let mut r = rng();
        let secret = Fp61::new(987_654_321);
        let shares = shamir_share(&mut r, secret, 3, 5);
        assert_eq!(shamir_reconstruct(&shares[..3]), secret);
        assert_eq!(shamir_reconstruct(&shares[1..4]), secret);
        assert_eq!(shamir_reconstruct(&shares), secret);
    }

    #[test]
    fn shamir_under_threshold_is_not_the_secret() {
        // With t−1 shares the interpolation (treating them as a full set)
        // gives a value unrelated to the secret.
        let mut r = rng();
        let secret = Fp61::new(42);
        let shares = shamir_share(&mut r, secret, 3, 5);
        let wrong = shamir_reconstruct(&shares[..2]);
        // This could coincide with probability ~2^-61; with a fixed seed it
        // simply documents the behaviour.
        assert_ne!(wrong, secret);
    }

    #[test]
    fn threshold_one_is_constant_polynomial() {
        let mut r = rng();
        let secret = Fp61::new(5);
        let shares = shamir_share(&mut r, secret, 1, 4);
        for &(_, y) in &shares {
            assert_eq!(y, secret);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate evaluation points")]
    fn duplicate_points_panic() {
        let s = (Fp61::new(1), Fp61::new(2));
        let _ = shamir_reconstruct(&[s, s]);
    }

    props! {
        #[test]
        fn additive_round_trips(v in 0..P, k in 2usize..8) {
            let mut r = rng();
            let secret = Fp61::new(v);
            prop_assert_eq!(additive_reconstruct(&additive_share(&mut r, secret, k)), secret);
        }

        #[test]
        fn shamir_round_trips(v in 0..P, t in 1usize..5) {
            let mut r = rng();
            let n = t + 2;
            let secret = Fp61::new(v);
            let shares = shamir_share(&mut r, secret, t, n);
            prop_assert_eq!(shamir_reconstruct(&shares[..t]), secret);
        }

        #[test]
        fn sharing_is_linear(a in 0..P, b in 0..P) {
            // Share-wise addition of two sharings reconstructs the sum.
            let mut r = rng();
            let sa = additive_share(&mut r, Fp61::new(a), 3);
            let sb = additive_share(&mut r, Fp61::new(b), 3);
            let sum: Vec<Fp61> = sa.iter().zip(&sb).map(|(&x, &y)| x + y).collect();
            prop_assert_eq!(additive_reconstruct(&sum), Fp61::new(a) + Fp61::new(b));
        }
    }
}
