//! Secure set intersection via commutative encryption.
//!
//! Pohlig–Hellman style: over a safe prime `p = 2q + 1`, each party picks a
//! secret exponent `e` coprime with `p − 1` and "encrypts" an element `x`
//! as `h(x)^e mod p` (with `h` mapping into the quadratic-residue subgroup
//! so exponents are invertible). Exponentiation commutes:
//! `(x^{e_a})^{e_b} = (x^{e_b})^{e_a}` — so after a double-encryption
//! exchange the parties can match elements present in both sets without
//! revealing the rest. This is the canonical crypto-PPDM join used for
//! privacy-preserving record matching across owners.

use rngkit::Rng;
use tdf_mathkit::modular::{pow_mod, random_below};
use tdf_mathkit::primes::random_safe_prime;
use tdf_mathkit::BigUint;

/// Shared group parameters (public).
#[derive(Debug, Clone)]
pub struct Group {
    /// Safe prime modulus.
    pub p: BigUint,
    /// Subgroup order `q = (p − 1) / 2`.
    pub q: BigUint,
}

impl Group {
    /// Generates a fresh group with a `bits`-bit safe prime.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        let p = random_safe_prime(rng, bits);
        let q = p.sub_ref(&BigUint::one()).shr_bits(1);
        Self { p, q }
    }

    /// Hashes an element into the quadratic-residue subgroup: square the
    /// (salted) value mod p. Squaring guarantees membership in the order-q
    /// subgroup, where every exponent in [1, q) is invertible.
    pub fn hash_to_group(&self, element: u64) -> BigUint {
        // Simple injective-ish encoding followed by squaring; adequate for
        // the semi-honest model this crate targets.
        let v = BigUint::from_u128(element as u128 + 0x9E3779B97F4A7C15u128);
        let v = v.rem_ref(&self.p);
        pow_mod(&v, &BigUint::from_u64(2), &self.p)
    }
}

/// A party's secret exponent.
#[derive(Debug, Clone)]
pub struct SecretExponent(BigUint);

impl SecretExponent {
    /// Samples an exponent in `[1, q)`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, group: &Group) -> Self {
        loop {
            let e = random_below(rng, &group.q);
            if !e.is_zero() {
                return Self(e);
            }
        }
    }

    /// Applies the commutative encryption `v ↦ v^e mod p`.
    pub fn encrypt(&self, group: &Group, v: &BigUint) -> BigUint {
        pow_mod(v, &self.0, &group.p)
    }
}

/// Computes the intersection of two private `u64` sets. Returns the values
/// in `set_a ∩ set_b` (as party A learns them). Neither party learns the
/// other's non-matching elements — only their count.
pub fn secure_intersection<R: Rng + ?Sized>(
    rng: &mut R,
    group: &Group,
    set_a: &[u64],
    set_b: &[u64],
) -> Vec<u64> {
    let ea = SecretExponent::sample(rng, group);
    let eb = SecretExponent::sample(rng, group);

    // A -> B: A's singly-encrypted elements; B returns them doubly
    // encrypted *in the same order*, so A can map back to plaintexts.
    let a_single: Vec<BigUint> = set_a
        .iter()
        .map(|&x| ea.encrypt(group, &group.hash_to_group(x)))
        .collect();
    let a_double: Vec<BigUint> = a_single.iter().map(|c| eb.encrypt(group, c)).collect();

    // B -> A: B's singly-encrypted elements (shuffled in a real deployment);
    // A doubly encrypts them.
    let b_single: Vec<BigUint> = set_b
        .iter()
        .map(|&x| eb.encrypt(group, &group.hash_to_group(x)))
        .collect();
    let b_double: Vec<BigUint> = b_single.iter().map(|c| ea.encrypt(group, c)).collect();

    // Matching double encryptions = common elements (commutativity).
    set_a
        .iter()
        .enumerate()
        .filter(|(i, _)| b_double.iter().any(|d| *d == a_double[*i]))
        .map(|(_, &x)| x)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(3141)
    }

    fn group(r: &mut rngkit::rngs::StdRng) -> Group {
        Group::generate(r, 40)
    }

    #[test]
    fn finds_the_exact_intersection() {
        let mut r = rng();
        let g = group(&mut r);
        let a = [1u64, 2, 3, 42, 100];
        let b = [42u64, 5, 100, 7];
        let mut got = secure_intersection(&mut r, &g, &a, &b);
        got.sort_unstable();
        assert_eq!(got, vec![42, 100]);
    }

    #[test]
    fn disjoint_sets_yield_nothing() {
        let mut r = rng();
        let g = group(&mut r);
        assert!(secure_intersection(&mut r, &g, &[1, 2], &[3, 4]).is_empty());
    }

    #[test]
    fn identical_sets_yield_everything() {
        let mut r = rng();
        let g = group(&mut r);
        let s = [9u64, 8, 7];
        let mut got = secure_intersection(&mut r, &g, &s, &s);
        got.sort_unstable();
        assert_eq!(got, vec![7, 8, 9]);
    }

    #[test]
    fn empty_inputs() {
        let mut r = rng();
        let g = group(&mut r);
        assert!(secure_intersection(&mut r, &g, &[], &[1]).is_empty());
        assert!(secure_intersection(&mut r, &g, &[1], &[]).is_empty());
    }

    #[test]
    fn commutativity_of_encryption() {
        let mut r = rng();
        let g = group(&mut r);
        let ea = SecretExponent::sample(&mut r, &g);
        let eb = SecretExponent::sample(&mut r, &g);
        let v = g.hash_to_group(12345);
        let ab = eb.encrypt(&g, &ea.encrypt(&g, &v));
        let ba = ea.encrypt(&g, &eb.encrypt(&g, &v));
        assert_eq!(ab, ba);
    }

    #[test]
    fn encryption_hides_values() {
        // Singly-encrypted elements of distinct plaintexts are distinct and
        // not equal to the group hashes themselves.
        let mut r = rng();
        let g = group(&mut r);
        let e = SecretExponent::sample(&mut r, &g);
        let h1 = g.hash_to_group(1);
        let h2 = g.hash_to_group(2);
        let c1 = e.encrypt(&g, &h1);
        let c2 = e.encrypt(&g, &h2);
        assert_ne!(c1, c2);
        assert_ne!(c1, h1);
    }
}
