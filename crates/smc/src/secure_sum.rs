//! Secure sum: k parties compute the sum of their private values so that
//! no party (and no coalition smaller than k−1) learns another's input.
//!
//! Two classic realisations, plus a threaded driver:
//!
//! * **ring protocol** — party 0 adds a random mask to its value and passes
//!   the running total around the ring; the last hop returns to party 0,
//!   who removes the mask and announces the sum;
//! * **sharing protocol** — every party additively shares its value among
//!   all parties; each party sums the shares it received; the share-sums
//!   are announced and added.

use crate::sharing::{additive_reconstruct, additive_share};
use crate::transcript::Transcript;
use rngkit::Rng;
use tdf_mathkit::Fp61;

/// Ring-based secure sum. Returns the sum and the full transcript.
pub fn ring_secure_sum<R: Rng + ?Sized>(rng: &mut R, inputs: &[Fp61]) -> (Fp61, Transcript) {
    assert!(
        inputs.len() >= 3,
        "ring secure sum needs at least 3 parties"
    );
    let k = inputs.len();
    let mut t = Transcript::new();
    let mask = Fp61::random(rng);
    let mut running = inputs[0] + mask;
    t.send(0, 1, "masked_partial_sum", vec![running.raw()]);
    for (p, &input) in inputs.iter().enumerate().skip(1) {
        running += input;
        let next = (p + 1) % k;
        t.send(p, next, "masked_partial_sum", vec![running.raw()]);
    }
    let total = running - mask;
    // Party 0 announces the result to everyone.
    for p in 1..k {
        t.send(0, p, "result", vec![total.raw()]);
    }
    (total, t)
}

/// Sharing-based secure sum (secure against any coalition of < k−1
/// parties). Returns the sum and the transcript.
/// ```
/// use tdf_mathkit::Fp61;
/// use tdf_smc::secure_sum::sharing_secure_sum;
/// use rngkit::SeedableRng;
///
/// let mut rng = rngkit::rngs::StdRng::seed_from_u64(1);
/// let inputs = [10u64, 20, 30].map(Fp61::new);
/// let (sum, transcript) = sharing_secure_sum(&mut rng, &inputs);
/// assert_eq!(sum, Fp61::new(60));
/// assert!(!transcript.party_saw_value(1, 10)); // party 1 never saw party 0's input
/// ```
pub fn sharing_secure_sum<R: Rng + ?Sized>(rng: &mut R, inputs: &[Fp61]) -> (Fp61, Transcript) {
    let k = inputs.len();
    assert!(k >= 2, "need at least 2 parties");
    let mut t = Transcript::new();
    // shares[j][p] = share of party j's input destined for party p.
    let shares: Vec<Vec<Fp61>> = inputs.iter().map(|&v| additive_share(rng, v, k)).collect();
    for (j, sh) in shares.iter().enumerate() {
        for (p, &s) in sh.iter().enumerate() {
            if p != j {
                t.send(j, p, "input_share", vec![s.raw()]);
            }
        }
    }
    // Each party sums the shares it holds and broadcasts the partial sum.
    let partials: Vec<Fp61> = (0..k)
        .map(|p| shares.iter().map(|sh| sh[p]).fold(Fp61::ZERO, |a, b| a + b))
        .collect();
    for (p, &s) in partials.iter().enumerate() {
        for q in 0..k {
            if q != p {
                t.send(p, q, "partial_sum", vec![s.raw()]);
            }
        }
    }
    (additive_reconstruct(&partials), t)
}

/// Threaded sharing-based secure sum: each party is a real OS thread, and
/// shares travel over std `mpsc` channels — a structural demonstration that
/// the protocol needs no shared memory or coordinator.
pub fn threaded_secure_sum(inputs: &[u64], seed: u64) -> Fp61 {
    use rngkit::SeedableRng;
    use std::sync::mpsc::{channel, Receiver, Sender};

    let k = inputs.len();
    assert!(k >= 2, "need at least 2 parties");
    let mut senders: Vec<Vec<Sender<Fp61>>> = Vec::with_capacity(k);
    let mut receivers: Vec<Vec<Receiver<Fp61>>> = (0..k).map(|_| Vec::new()).collect();
    for _ in 0..k {
        let mut row = Vec::with_capacity(k);
        for r in receivers.iter_mut() {
            let (s, rcv) = channel();
            row.push(s);
            r.push(rcv);
        }
        senders.push(row);
    }

    let partials = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for (p, (&value, (outs, ins))) in inputs
            .iter()
            .zip(senders.into_iter().zip(receivers))
            .enumerate()
        {
            handles.push(scope.spawn(move || {
                let mut rng = rngkit::rngs::StdRng::seed_from_u64(seed ^ p as u64);
                let shares = additive_share(&mut rng, Fp61::new(value), k);
                for (q, out) in outs.iter().enumerate() {
                    out.send(shares[q]).expect("channel open");
                }
                drop(outs);
                let mut acc = Fp61::ZERO;
                for rx in &ins {
                    acc += rx.recv().expect("one share from each party");
                }
                acc
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("party thread"))
            .collect::<Vec<_>>()
    });
    additive_reconstruct(&partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(11)
    }

    fn inputs(vals: &[u64]) -> Vec<Fp61> {
        vals.iter().map(|&v| Fp61::new(v)).collect()
    }

    #[test]
    fn ring_sum_is_correct() {
        let mut r = rng();
        let (sum, _) = ring_secure_sum(&mut r, &inputs(&[10, 20, 30, 40]));
        assert_eq!(sum, Fp61::new(100));
    }

    #[test]
    fn ring_intermediate_values_hide_inputs() {
        // Party 1 sees only mask + x0: without the mask it cannot recover
        // x0. We check the transcript never carries a raw input.
        let mut r = rng();
        let vals = [111u64, 222, 333];
        let (_, t) = ring_secure_sum(&mut r, &inputs(&vals));
        // The running sums are masked; only the final result (666) is
        // intentionally public. A raw input appearing would be a
        // (probability ~2^-61) accident or a bug.
        for p in 0..3 {
            for &v in &vals {
                assert!(!t.party_saw_value(p, v), "party {p} saw raw input {v}");
            }
        }
    }

    #[test]
    fn sharing_sum_is_correct_and_more_robust() {
        let mut r = rng();
        let (sum, t) = sharing_secure_sum(&mut r, &inputs(&[5, 7, 11, 13]));
        assert_eq!(sum, Fp61::new(36));
        // k(k−1) share messages + k(k−1) partial-sum broadcasts.
        assert_eq!(t.len(), 2 * 4 * 3);
    }

    #[test]
    fn sharing_sum_handles_two_parties() {
        let mut r = rng();
        let (sum, _) = sharing_secure_sum(&mut r, &inputs(&[1, 2]));
        assert_eq!(sum, Fp61::new(3));
    }

    #[test]
    fn sums_wrap_in_the_field_like_signed_integers() {
        // Negative encodings survive the protocol.
        let mut r = rng();
        let vals = vec![Fp61::from_i64(-5), Fp61::from_i64(3), Fp61::from_i64(-1)];
        let (sum, _) = ring_secure_sum(&mut r, &vals);
        assert_eq!(sum.to_i64(), -3);
    }

    #[test]
    fn threaded_driver_agrees_with_single_threaded() {
        let vals = [17u64, 29, 31, 43, 59];
        let sum = threaded_secure_sum(&vals, 777);
        assert_eq!(sum, Fp61::new(179));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_needs_three_parties() {
        let mut r = rng();
        let _ = ring_secure_sum(&mut r, &inputs(&[1, 2]));
    }
}
