//! Distributed ID3 over horizontally partitioned data.
//!
//! Each party holds a horizontal slice of a categorical training set (the
//! setting of Lindell–Pinkas [18, 19]). The tree is grown jointly: at every
//! node, the per-(attribute, value, class) counts needed for the
//! information-gain computation are obtained with *secure sums* over the
//! parties' local counts, so no party reveals its records — only the
//! aggregate counts that the final tree itself discloses.
//!
//! The transcript of every secure sum is retained, so tests can verify
//! that inter-party traffic consists of masked field elements only.

use crate::secure_sum::sharing_secure_sum;
use crate::transcript::Transcript;
use rngkit::Rng;
use tdf_mathkit::Fp61;

/// A categorical training set slice: `rows[i]` holds the attribute values
/// (category indices) of record `i`; `labels[i]` its class.
#[derive(Debug, Clone, Default)]
pub struct PartySlice {
    /// Attribute values per record.
    pub rows: Vec<Vec<usize>>,
    /// Class labels per record.
    pub labels: Vec<usize>,
}

impl PartySlice {
    /// Number of local records.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A learned decision tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tree {
    /// Leaf predicting a class.
    Leaf(usize),
    /// Internal node splitting on an attribute.
    Node {
        /// Attribute index tested at this node.
        attribute: usize,
        /// One subtree per attribute value.
        children: Vec<Tree>,
    },
}

impl Tree {
    /// Classifies a record.
    pub fn classify(&self, row: &[usize]) -> usize {
        match self {
            Tree::Leaf(c) => *c,
            Tree::Node {
                attribute,
                children,
            } => {
                let v = row[*attribute].min(children.len() - 1);
                children[v].classify(row)
            }
        }
    }

    /// Number of nodes (leaves + internal).
    pub fn size(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node { children, .. } => 1 + children.iter().map(Tree::size).sum::<usize>(),
        }
    }
}

/// Shape of the training data: category count per attribute, class count.
#[derive(Debug, Clone)]
pub struct DataShape {
    /// Number of categories of each attribute.
    pub attribute_cardinalities: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

/// Result of a distributed ID3 run.
#[derive(Debug)]
pub struct Id3Result {
    /// The jointly learned tree.
    pub tree: Tree,
    /// Transcripts of every secure sum executed.
    pub transcripts: Vec<Transcript>,
    /// Number of secure-sum invocations (communication-round proxy).
    pub secure_sums: usize,
}

/// Grows an ID3 tree over the union of the parties' slices, using secure
/// sums for every count. `max_depth` bounds recursion.
pub fn distributed_id3<R: Rng + ?Sized>(
    rng: &mut R,
    parties: &[PartySlice],
    shape: &DataShape,
    max_depth: usize,
) -> Id3Result {
    assert!(
        parties.len() >= 2,
        "distributed ID3 needs at least two parties"
    );
    let mut ctx = Ctx {
        transcripts: Vec::new(),
        secure_sums: 0,
    };
    // Active-record masks per party (records matching the current branch).
    let masks: Vec<Vec<bool>> = parties.iter().map(|p| vec![true; p.len()]).collect();
    let attrs: Vec<usize> = (0..shape.attribute_cardinalities.len()).collect();
    let tree = grow(rng, parties, shape, &masks, &attrs, max_depth, &mut ctx);
    Id3Result {
        tree,
        transcripts: ctx.transcripts,
        secure_sums: ctx.secure_sums,
    }
}

struct Ctx {
    transcripts: Vec<Transcript>,
    secure_sums: usize,
}

/// Secure sum of one local count per party.
fn count_securely<R: Rng + ?Sized>(rng: &mut R, locals: &[u64], ctx: &mut Ctx) -> u64 {
    let inputs: Vec<Fp61> = locals.iter().map(|&v| Fp61::new(v)).collect();
    let (sum, t) = sharing_secure_sum(rng, &inputs);
    ctx.transcripts.push(t);
    ctx.secure_sums += 1;
    sum.raw()
}

fn class_counts<R: Rng + ?Sized>(
    rng: &mut R,
    parties: &[PartySlice],
    masks: &[Vec<bool>],
    num_classes: usize,
    ctx: &mut Ctx,
) -> Vec<u64> {
    (0..num_classes)
        .map(|c| {
            let locals: Vec<u64> = parties
                .iter()
                .zip(masks)
                .map(|(p, m)| {
                    p.labels
                        .iter()
                        .zip(m)
                        .filter(|(&l, &active)| active && l == c)
                        .count() as u64
                })
                .collect();
            count_securely(rng, &locals, ctx)
        })
        .collect()
}

fn entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[allow(clippy::too_many_arguments)]
fn grow<R: Rng + ?Sized>(
    rng: &mut R,
    parties: &[PartySlice],
    shape: &DataShape,
    masks: &[Vec<bool>],
    attrs: &[usize],
    depth: usize,
    ctx: &mut Ctx,
) -> Tree {
    let counts = class_counts(rng, parties, masks, shape.num_classes, ctx);
    let total: u64 = counts.iter().sum();
    let majority = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    if total == 0
        || depth == 0
        || attrs.is_empty()
        || counts.iter().filter(|&&c| c > 0).count() <= 1
    {
        return Tree::Leaf(majority);
    }

    // Pick the attribute with maximal information gain, all counts via
    // secure sums.
    let base_entropy = entropy(&counts);
    let mut best: Option<(usize, f64)> = None;
    for &a in attrs {
        let card = shape.attribute_cardinalities[a];
        let mut remainder = 0.0;
        for v in 0..card {
            let per_class: Vec<u64> = (0..shape.num_classes)
                .map(|c| {
                    let locals: Vec<u64> = parties
                        .iter()
                        .zip(masks)
                        .map(|(p, m)| {
                            p.rows
                                .iter()
                                .zip(&p.labels)
                                .zip(m)
                                .filter(|((row, &l), &active)| active && row[a] == v && l == c)
                                .count() as u64
                        })
                        .collect();
                    count_securely(rng, &locals, ctx)
                })
                .collect();
            let subtotal: u64 = per_class.iter().sum();
            remainder += subtotal as f64 / total as f64 * entropy(&per_class);
        }
        let gain = base_entropy - remainder;
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((a, gain));
        }
    }
    let (attribute, gain) = best.expect("attrs non-empty");
    if gain <= 1e-12 {
        return Tree::Leaf(majority);
    }

    let remaining: Vec<usize> = attrs.iter().copied().filter(|&a| a != attribute).collect();
    let children = (0..shape.attribute_cardinalities[attribute])
        .map(|v| {
            let child_masks: Vec<Vec<bool>> = parties
                .iter()
                .zip(masks)
                .map(|(p, m)| {
                    p.rows
                        .iter()
                        .zip(m)
                        .map(|(row, &active)| active && row[attribute] == v)
                        .collect()
                })
                .collect();
            grow(
                rng,
                parties,
                shape,
                &child_masks,
                &remaining,
                depth - 1,
                ctx,
            )
        })
        .collect();
    Tree::Node {
        attribute,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(1234)
    }

    /// The classic "play tennis" toy set, split across two parties.
    /// Attributes: outlook (0-2), temperature (0-2), humidity (0-1),
    /// wind (0-1). Class: play (0/1).
    fn tennis() -> (Vec<PartySlice>, DataShape) {
        let rows: Vec<(Vec<usize>, usize)> = vec![
            (vec![0, 2, 1, 0], 0),
            (vec![0, 2, 1, 1], 0),
            (vec![1, 2, 1, 0], 1),
            (vec![2, 1, 1, 0], 1),
            (vec![2, 0, 0, 0], 1),
            (vec![2, 0, 0, 1], 0),
            (vec![1, 0, 0, 1], 1),
            (vec![0, 1, 1, 0], 0),
            (vec![0, 0, 0, 0], 1),
            (vec![2, 1, 0, 0], 1),
            (vec![0, 1, 0, 1], 1),
            (vec![1, 1, 1, 1], 1),
            (vec![1, 2, 0, 0], 1),
            (vec![2, 1, 1, 1], 0),
        ];
        let mut a = PartySlice::default();
        let mut b = PartySlice::default();
        for (i, (row, label)) in rows.into_iter().enumerate() {
            let slice = if i % 2 == 0 { &mut a } else { &mut b };
            slice.rows.push(row);
            slice.labels.push(label);
        }
        (
            vec![a, b],
            DataShape {
                attribute_cardinalities: vec![3, 3, 2, 2],
                num_classes: 2,
            },
        )
    }

    #[test]
    fn learns_a_consistent_tree_on_tennis() {
        let (parties, shape) = tennis();
        let mut r = rng();
        let result = distributed_id3(&mut r, &parties, &shape, 4);
        // The learned tree must classify every training record correctly
        // (ID3 is consistent on noise-free data with enough depth).
        for p in &parties {
            for (row, &label) in p.rows.iter().zip(&p.labels) {
                assert_eq!(result.tree.classify(row), label, "row {row:?}");
            }
        }
    }

    #[test]
    fn root_split_is_outlook_like_centralized_id3() {
        let (parties, shape) = tennis();
        let mut r = rng();
        let result = distributed_id3(&mut r, &parties, &shape, 4);
        match &result.tree {
            Tree::Node { attribute, .. } => {
                assert_eq!(*attribute, 0, "ID3 splits tennis on outlook")
            }
            Tree::Leaf(_) => panic!("expected an internal root"),
        }
    }

    #[test]
    fn only_masked_aggregates_cross_party_lines() {
        let (parties, shape) = tennis();
        let mut r = rng();
        let result = distributed_id3(&mut r, &parties, &shape, 3);
        assert!(result.secure_sums > 0);
        // Every inter-party message is a share or partial sum of a secure
        // sum; no message carries a record (records are vectors, messages
        // are single field elements).
        for t in &result.transcripts {
            for m in t.messages() {
                assert_eq!(m.payload.len(), 1);
                assert!(m.tag == "input_share" || m.tag == "partial_sum");
            }
        }
    }

    #[test]
    fn depth_zero_returns_majority_leaf() {
        let (parties, shape) = tennis();
        let mut r = rng();
        let result = distributed_id3(&mut r, &parties, &shape, 0);
        assert_eq!(result.tree, Tree::Leaf(1)); // 9 of 14 play
    }

    #[test]
    fn matches_centralized_accuracy() {
        // Merging both slices and training "centrally" (one party holding
        // all + a dummy empty party) yields the same training accuracy.
        let (parties, shape) = tennis();
        let mut merged = PartySlice::default();
        for p in &parties {
            merged.rows.extend(p.rows.iter().cloned());
            merged.labels.extend(p.labels.iter().cloned());
        }
        let central = vec![merged.clone(), PartySlice::default()];
        let mut r = rng();
        let distributed = distributed_id3(&mut r, &parties, &shape, 4);
        let centralized = distributed_id3(&mut r, &central, &shape, 4);
        for (row, &label) in merged.rows.iter().zip(&merged.labels) {
            assert_eq!(distributed.tree.classify(row), label);
            assert_eq!(centralized.tree.classify(row), label);
        }
    }

    #[test]
    fn tree_size_is_bounded() {
        let (parties, shape) = tennis();
        let mut r = rng();
        let result = distributed_id3(&mut r, &parties, &shape, 4);
        assert!(result.tree.size() < 40, "size {}", result.tree.size());
    }
}
