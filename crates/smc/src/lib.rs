//! # tdf-smc
//!
//! Secure multiparty computation — the substrate of *cryptographic PPDM*
//! (Lindell–Pinkas [18, 19]), the owner-privacy technology the paper scores
//! highest on its second dimension (§4, §5).
//!
//! Two or more data owners jointly compute an analysis over the union of
//! their databases revealing nothing but the result. The crate provides:
//!
//! * [`sharing`] — additive and Shamir secret sharing over the 61-bit
//!   Mersenne field of `tdf-mathkit`;
//! * [`transcript`] — a message recorder: every protocol run yields the
//!   exact bytes each party saw, which is how `tdf-core::scoring` measures
//!   owner-privacy leakage empirically;
//! * [`secure_sum`] — ring- and sharing-based secure sum (with a threaded
//!   std::thread + mpsc driver demonstrating genuinely concurrent parties);
//! * [`scalar_product`] — the Du–Atallah commodity-server secure scalar
//!   product;
//! * [`beaver`] — dealer-assisted Beaver-triple multiplication of shared
//!   values (secure AND on bits);
//! * [`comparison`] — Yao's-millionaires-style secure comparison and
//!   secure arg-max over shared values;
//! * [`ot`] — 1-out-of-2 oblivious transfer (Bellare–Micali), the
//!   primitive the general Lindell–Pinkas construction reduces to;
//! * [`intersection`] — secure set intersection via commutative
//!   (Pohlig–Hellman style) exponentiation;
//! * [`id3`] — distributed ID3 over horizontally partitioned data, where
//!   parties exchange only secure-sum aggregates, never records;
//! * [`vertical`] — joint covariance/correlation over *vertically*
//!   partitioned data via secure scalar products.
//!
//! As §4 of the paper stresses: all parties know exactly what analysis is
//! being run — crypto PPDM provides owner privacy but *no user privacy*.
//! The transcripts make that observable.

pub mod beaver;
pub mod comparison;
pub mod id3;
pub mod intersection;
pub mod ot;
pub mod scalar_product;
pub mod secure_sum;
pub mod sharing;
pub mod transcript;
pub mod vertical;

pub use sharing::{additive_reconstruct, additive_share, shamir_reconstruct, shamir_share};
pub use transcript::{Message, Transcript};
