//! Du–Atallah secure scalar product with a commodity server.
//!
//! Alice holds vector `x`, Bob holds vector `y`; they want `x · y` without
//! revealing their vectors. A semi-honest *commodity server* (who never
//! sees any data-dependent message) deals correlated randomness:
//! `Ra, ra` to Alice and `Rb, rb` to Bob with `ra + rb = Ra · Rb`.
//! Alice sends `x + Ra`, Bob sends `y + Rb`; Bob computes
//! `u = (x + Ra) · y + rb` and sends it to Alice, who outputs
//! `u − Ra · (y + Rb) + ra = x · y`.
//!
//! This is the workhorse of vertically-partitioned non-interactive PPDM
//! (correlations, covariance matrices, classifier dot products).

use crate::transcript::Transcript;
use rngkit::Rng;
use tdf_mathkit::Fp61;

/// Party ids used in transcripts.
pub const ALICE: usize = 0;
/// Bob's id.
pub const BOB: usize = 1;
/// The commodity (randomness) server's id.
pub const COMMODITY: usize = 2;

fn dot(a: &[Fp61], b: &[Fp61]) -> Fp61 {
    a.iter()
        .zip(b)
        .fold(Fp61::ZERO, |acc, (&x, &y)| acc + x * y)
}

/// Runs the protocol; returns `x · y` (as learned by Alice) and the
/// transcript.
pub fn secure_scalar_product<R: Rng + ?Sized>(
    rng: &mut R,
    x: &[Fp61],
    y: &[Fp61],
) -> (Fp61, Transcript) {
    assert_eq!(x.len(), y.len(), "vectors must have equal length");
    let d = x.len();
    let mut t = Transcript::new();

    // Commodity server deals correlated randomness.
    let ra_vec: Vec<Fp61> = (0..d).map(|_| Fp61::random(rng)).collect();
    let rb_vec: Vec<Fp61> = (0..d).map(|_| Fp61::random(rng)).collect();
    let ra = Fp61::random(rng);
    let rb = dot(&ra_vec, &rb_vec) - ra;
    t.send(
        COMMODITY,
        ALICE,
        "commodity_ra",
        ra_vec.iter().map(|v| v.raw()).chain([ra.raw()]).collect(),
    );
    t.send(
        COMMODITY,
        BOB,
        "commodity_rb",
        rb_vec.iter().map(|v| v.raw()).chain([rb.raw()]).collect(),
    );

    // Alice -> Bob: x + Ra.
    let x_masked: Vec<Fp61> = x.iter().zip(&ra_vec).map(|(&a, &m)| a + m).collect();
    t.send(
        ALICE,
        BOB,
        "x_masked",
        x_masked.iter().map(|v| v.raw()).collect(),
    );

    // Bob -> Alice: y + Rb and u = (x + Ra)·y + rb.
    let y_masked: Vec<Fp61> = y.iter().zip(&rb_vec).map(|(&a, &m)| a + m).collect();
    let u = dot(&x_masked, y) + rb;
    t.send(
        BOB,
        ALICE,
        "y_masked",
        y_masked.iter().map(|v| v.raw()).collect(),
    );
    t.send(BOB, ALICE, "u", vec![u.raw()]);

    // Alice outputs x·y.
    let result = u - dot(&ra_vec, &y_masked) + ra;
    (result, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::prelude::*;
    use rngkit::SeedableRng;
    use tdf_mathkit::field::P;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(21)
    }

    fn v(vals: &[u64]) -> Vec<Fp61> {
        vals.iter().map(|&x| Fp61::new(x)).collect()
    }

    #[test]
    fn computes_the_scalar_product() {
        let mut r = rng();
        let (got, _) = secure_scalar_product(&mut r, &v(&[1, 2, 3]), &v(&[4, 5, 6]));
        assert_eq!(got, Fp61::new(32));
    }

    #[test]
    fn bob_never_sees_raw_x() {
        let mut r = rng();
        let x = v(&[1_000_001, 1_000_002, 1_000_003]);
        let y = v(&[7, 8, 9]);
        let (_, t) = secure_scalar_product(&mut r, &x, &y);
        for xi in &x {
            assert!(!t.party_saw_value(BOB, xi.raw()), "Bob saw {xi}");
        }
    }

    #[test]
    fn alice_never_sees_raw_y() {
        let mut r = rng();
        let x = v(&[3, 1, 4]);
        let y = v(&[2_000_001, 2_000_002, 2_000_003]);
        let (_, t) = secure_scalar_product(&mut r, &x, &y);
        for yi in &y {
            assert!(!t.party_saw_value(ALICE, yi.raw()), "Alice saw {yi}");
        }
    }

    #[test]
    fn commodity_server_receives_nothing() {
        let mut r = rng();
        let (_, t) = secure_scalar_product(&mut r, &v(&[1, 2]), &v(&[3, 4]));
        assert!(t.view_of(COMMODITY).is_empty());
    }

    #[test]
    fn works_with_signed_encodings() {
        let mut r = rng();
        let x = vec![Fp61::from_i64(-2), Fp61::from_i64(5)];
        let y = vec![Fp61::from_i64(3), Fp61::from_i64(-1)];
        let (got, _) = secure_scalar_product(&mut r, &x, &y);
        assert_eq!(got.to_i64(), -11);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let mut r = rng();
        let _ = secure_scalar_product(&mut r, &v(&[1]), &v(&[1, 2]));
    }

    props! {
        #[test]
        fn matches_plain_dot_product(xs in vec(0..P, 1..6),
                                     ys in vec(0..P, 1..6)) {
            let d = xs.len().min(ys.len());
            let x: Vec<Fp61> = xs[..d].iter().map(|&v| Fp61::new(v)).collect();
            let y: Vec<Fp61> = ys[..d].iter().map(|&v| Fp61::new(v)).collect();
            let expected = x.iter().zip(&y).fold(Fp61::ZERO, |a, (&p, &q)| a + p * q);
            let mut r = rng();
            let (got, _) = secure_scalar_product(&mut r, &x, &y);
            prop_assert_eq!(got, expected);
        }
    }
}
