//! 1-out-of-2 oblivious transfer (Bellare–Micali style, over the
//! safe-prime group of [`crate::intersection`]).
//!
//! OT is the primitive general secure computation (Yao circuits, the
//! Lindell–Pinkas construction the paper cites) reduces to: the sender
//! holds two messages, the receiver learns exactly the one it chose, the
//! sender never learns which.
//!
//! Protocol (semi-honest): public group ⟨g⟩ of prime order q and a public
//! random point `c` with unknown discrete log. The receiver with choice
//! bit `b` picks secret `k` and publishes `pk_b = g^k`,
//! `pk_{1−b} = c · g^{−k}` (so `pk_0 · pk_1 = c` — checkable by the
//! sender). The sender ElGamal-encrypts `m_i` under `pk_i`; the receiver
//! can decrypt only the ciphertext under `pk_b`, since the other secret
//! key would be `dlog(c) − k`, which it cannot know.

use crate::intersection::Group;
use rngkit::Rng;
use tdf_mathkit::modular::{inv_mod, mul_mod, pow_mod, random_below};
use tdf_mathkit::BigUint;

/// Public parameters: the group, a generator of the order-q subgroup, and
/// the "nothing-up-my-sleeve" point `c`.
#[derive(Debug, Clone)]
pub struct OtParams {
    /// Safe-prime group.
    pub group: Group,
    /// Generator of the quadratic-residue subgroup.
    pub g: BigUint,
    /// Public point with unknown discrete log (sampled by squaring a
    /// random element, mirroring [`Group::hash_to_group`]).
    pub c: BigUint,
}

impl OtParams {
    /// Generates parameters with a `bits`-bit safe prime.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        let group = Group::generate(rng, bits);
        // Any square generates the order-q subgroup (q prime), except 1.
        let g = loop {
            let r = random_below(rng, &group.p);
            let g = mul_mod(&r, &r, &group.p);
            if !g.is_one() && !g.is_zero() {
                break g;
            }
        };
        let c = loop {
            let r = random_below(rng, &group.p);
            let c = mul_mod(&r, &r, &group.p);
            if !c.is_one() && !c.is_zero() && c != g {
                break c;
            }
        };
        Self { group, g, c }
    }
}

/// The receiver's first message: two public keys with `pk0 · pk1 = c`.
#[derive(Debug, Clone)]
pub struct ReceiverMessage {
    /// Key for message 0.
    pub pk0: BigUint,
    /// Key for message 1.
    pub pk1: BigUint,
}

/// Receiver state kept between rounds.
#[derive(Debug)]
pub struct Receiver {
    choice: bool,
    k: BigUint,
}

impl Receiver {
    /// Round 1: commit to the choice bit.
    pub fn choose<R: Rng + ?Sized>(
        rng: &mut R,
        params: &OtParams,
        choice: bool,
    ) -> (Receiver, ReceiverMessage) {
        let k = random_below(rng, &params.group.q);
        let gk = pow_mod(&params.g, &k, &params.group.p);
        let other = mul_mod(
            &params.c,
            &inv_mod(&gk, &params.group.p).expect("group element is invertible"),
            &params.group.p,
        );
        let (pk0, pk1) = if choice { (other, gk) } else { (gk, other) };
        (Receiver { choice, k }, ReceiverMessage { pk0, pk1 })
    }

    /// Round 3: decrypt the chosen ciphertext.
    pub fn receive(&self, params: &OtParams, sender: &SenderMessage) -> u64 {
        let (a, blinded) = if self.choice {
            (&sender.a1, sender.blinded1)
        } else {
            (&sender.a0, sender.blinded0)
        };
        // Shared secret a^k; the pad is its low 64 bits.
        let s = pow_mod(a, &self.k, &params.group.p);
        blinded ^ pad64(&s)
    }
}

/// The sender's reply: two ElGamal-style ciphertexts (ephemeral points and
/// XOR-padded 64-bit payloads).
#[derive(Debug, Clone)]
pub struct SenderMessage {
    /// Ephemeral point for message 0.
    pub a0: BigUint,
    /// Padded message 0.
    pub blinded0: u64,
    /// Ephemeral point for message 1.
    pub a1: BigUint,
    /// Padded message 1.
    pub blinded1: u64,
}

fn pad64(v: &BigUint) -> u64 {
    // Low 64 bits of the shared point; adequate as a pad in the
    // semi-honest, experiment-sized setting of this crate.
    v.to_bytes_be()
        .iter()
        .rev()
        .take(8)
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (b as u64) << (8 * i))
}

/// Round 2: the sender answers a receiver commitment with both messages
/// encrypted. Panics if the receiver's keys are malformed (pk0·pk1 ≠ c).
pub fn send<R: Rng + ?Sized>(
    rng: &mut R,
    params: &OtParams,
    msg: &ReceiverMessage,
    m0: u64,
    m1: u64,
) -> SenderMessage {
    assert_eq!(
        mul_mod(&msg.pk0, &msg.pk1, &params.group.p),
        params.c.rem_ref(&params.group.p),
        "receiver keys must multiply to c"
    );
    let mut encrypt = |pk: &BigUint, m: u64| -> (BigUint, u64) {
        let r = random_below(rng, &params.group.q);
        let a = pow_mod(&params.g, &r, &params.group.p);
        let s = pow_mod(pk, &r, &params.group.p);
        (a, m ^ pad64(&s))
    };
    let (a0, blinded0) = encrypt(&msg.pk0, m0);
    let (a1, blinded1) = encrypt(&msg.pk1, m1);
    SenderMessage {
        a0,
        blinded0,
        a1,
        blinded1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(0x07)
    }

    fn params(r: &mut rngkit::rngs::StdRng) -> OtParams {
        OtParams::generate(r, 40)
    }

    #[test]
    fn receiver_gets_exactly_the_chosen_message() {
        let mut r = rng();
        let p = params(&mut r);
        for choice in [false, true] {
            let (recv, commit) = Receiver::choose(&mut r, &p, choice);
            let reply = send(&mut r, &p, &commit, 0xAAAA_BBBB, 0x1111_2222);
            let got = recv.receive(&p, &reply);
            let want = if choice { 0x1111_2222 } else { 0xAAAA_BBBB };
            assert_eq!(got, want, "choice {choice}");
        }
    }

    #[test]
    fn unchosen_message_stays_hidden() {
        // Decrypting the wrong slot with the receiver's key yields junk.
        let mut r = rng();
        let p = params(&mut r);
        let (recv, commit) = Receiver::choose(&mut r, &p, false);
        let reply = send(&mut r, &p, &commit, 7, 0xDEAD_BEEF);
        // Forge a receiver that tries the other slot with the same k.
        let evil = Receiver {
            choice: true,
            k: recv.k.clone(),
        };
        let leaked = evil.receive(&p, &reply);
        assert_ne!(leaked, 0xDEAD_BEEF, "the pad for slot 1 must not match");
        // The honest path still works.
        assert_eq!(recv.receive(&p, &reply), 7);
    }

    #[test]
    fn sender_cannot_tell_choices_apart_structurally() {
        // Both commitments satisfy the same public relation pk0·pk1 = c;
        // nothing else about the choice is sent.
        let mut r = rng();
        let p = params(&mut r);
        for choice in [false, true] {
            let (_, commit) = Receiver::choose(&mut r, &p, choice);
            assert_eq!(
                mul_mod(&commit.pk0, &commit.pk1, &p.group.p),
                p.c.rem_ref(&p.group.p)
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiply to c")]
    fn malformed_receiver_keys_are_rejected() {
        let mut r = rng();
        let p = params(&mut r);
        let bogus = ReceiverMessage {
            pk0: BigUint::from_u64(4),
            pk1: BigUint::from_u64(9),
        };
        let _ = send(&mut r, &p, &bogus, 1, 2);
    }

    #[test]
    fn many_transfers_with_fresh_randomness() {
        let mut r = rng();
        let p = params(&mut r);
        for i in 0..10u64 {
            let choice = i % 3 == 0;
            let (recv, commit) = Receiver::choose(&mut r, &p, choice);
            let reply = send(&mut r, &p, &commit, i, i + 1000);
            assert_eq!(recv.receive(&p, &reply), if choice { i + 1000 } else { i });
        }
    }
}
