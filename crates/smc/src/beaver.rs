//! Beaver-triple multiplication of additively shared values.
//!
//! A trusted dealer (played by the commodity server) distributes shares of
//! a random triple `(a, b, c)` with `c = a·b`. To multiply shared `x` and
//! `y`, the parties open `d = x − a` and `e = y − b` (both uniform, leaking
//! nothing) and locally compute shares of
//! `x·y = c + d·b + e·a + d·e`.
//!
//! With bits this yields secure AND, the gate from which any boolean
//! analysis can be assembled — included to show the generality claimed for
//! crypto PPDM in §4 of the paper.

use crate::sharing::{additive_reconstruct, additive_share};
use rngkit::Rng;
use tdf_mathkit::Fp61;

/// Shares of one Beaver triple for `k` parties.
#[derive(Debug, Clone)]
pub struct TripleShares {
    /// Per-party shares of `a`.
    pub a: Vec<Fp61>,
    /// Per-party shares of `b`.
    pub b: Vec<Fp61>,
    /// Per-party shares of `c = a·b`.
    pub c: Vec<Fp61>,
}

/// Dealer: samples a triple and shares it among `k` parties.
pub fn deal_triple<R: Rng + ?Sized>(rng: &mut R, k: usize) -> TripleShares {
    let a = Fp61::random(rng);
    let b = Fp61::random(rng);
    let c = a * b;
    TripleShares {
        a: additive_share(rng, a, k),
        b: additive_share(rng, b, k),
        c: additive_share(rng, c, k),
    }
}

/// Multiplies two additively shared values using one dealt triple.
/// `x_shares` and `y_shares` are per-party shares; returns per-party shares
/// of the product.
pub fn beaver_multiply(triple: &TripleShares, x_shares: &[Fp61], y_shares: &[Fp61]) -> Vec<Fp61> {
    let k = x_shares.len();
    assert_eq!(y_shares.len(), k, "share vectors must align");
    assert_eq!(
        triple.a.len(),
        k,
        "triple dealt for a different party count"
    );

    // Parties open d = x − a and e = y − b (public values).
    let d = additive_reconstruct(
        &x_shares
            .iter()
            .zip(&triple.a)
            .map(|(&x, &a)| x - a)
            .collect::<Vec<_>>(),
    );
    let e = additive_reconstruct(
        &y_shares
            .iter()
            .zip(&triple.b)
            .map(|(&y, &b)| y - b)
            .collect::<Vec<_>>(),
    );

    // Share_i(xy) = c_i + d·b_i + e·a_i (+ d·e for exactly one party).
    (0..k)
        .map(|i| {
            let mut s = triple.c[i] + d * triple.b[i] + e * triple.a[i];
            if i == 0 {
                s += d * e;
            }
            s
        })
        .collect()
}

/// Secure AND of two shared bits (bits are 0/1 field elements).
pub fn secure_and(triple: &TripleShares, x_shares: &[Fp61], y_shares: &[Fp61]) -> Vec<Fp61> {
    beaver_multiply(triple, x_shares, y_shares)
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::prelude::*;
    use rngkit::SeedableRng;
    use tdf_mathkit::field::P;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(5150)
    }

    #[test]
    fn multiplies_shared_values() {
        let mut r = rng();
        let k = 3;
        let triple = deal_triple(&mut r, k);
        let xs = additive_share(&mut r, Fp61::new(6), k);
        let ys = additive_share(&mut r, Fp61::new(7), k);
        let prod = beaver_multiply(&triple, &xs, &ys);
        assert_eq!(additive_reconstruct(&prod), Fp61::new(42));
    }

    #[test]
    fn and_truth_table() {
        let mut r = rng();
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
            let triple = deal_triple(&mut r, 2);
            let xs = additive_share(&mut r, Fp61::new(a), 2);
            let ys = additive_share(&mut r, Fp61::new(b), 2);
            let out = secure_and(&triple, &xs, &ys);
            assert_eq!(additive_reconstruct(&out), Fp61::new(a & b), "{a} AND {b}");
        }
    }

    #[test]
    fn triples_are_consistent() {
        let mut r = rng();
        let t = deal_triple(&mut r, 4);
        let a = additive_reconstruct(&t.a);
        let b = additive_reconstruct(&t.b);
        let c = additive_reconstruct(&t.c);
        assert_eq!(c, a * b);
    }

    #[test]
    #[should_panic(expected = "different party count")]
    fn mismatched_triple_panics() {
        let mut r = rng();
        let t = deal_triple(&mut r, 2);
        let xs = additive_share(&mut r, Fp61::new(1), 3);
        let ys = additive_share(&mut r, Fp61::new(1), 3);
        let _ = beaver_multiply(&t, &xs, &ys);
    }

    props! {
        #[test]
        fn multiplication_matches_field(x in 0..P, y in 0..P, k in 2usize..6) {
            let mut r = rng();
            let t = deal_triple(&mut r, k);
            let xs = additive_share(&mut r, Fp61::new(x), k);
            let ys = additive_share(&mut r, Fp61::new(y), k);
            let prod = beaver_multiply(&t, &xs, &ys);
            prop_assert_eq!(additive_reconstruct(&prod), Fp61::new(x) * Fp61::new(y));
        }
    }
}
