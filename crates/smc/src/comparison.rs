//! Secure comparison (Yao's millionaires) and secure arg-max.
//!
//! Two protocols, with explicitly different trust models:
//!
//! * [`masked_compare`] — a lightweight helper-assisted protocol: Alice
//!   and Bob share a random mask `r` (dealt by the commodity server from
//!   [`crate::scalar_product`]'s model), send `x + r` and `y + r` to the
//!   helper, who announces only the comparison bit. The helper learns the
//!   *difference* ordering but neither value; the parties learn one bit.
//!   This is the model used by lightweight PPDM deployments.
//! * [`shared_compare`] — comparison of two *additively shared* values
//!   over a bounded domain `[0, 2^L)`: the dealer shares a random pad
//!   `r < 2^L` and the parties open only `(x − y + 2^L) + r`. The opened
//!   value hides `x − y` statistically up to the pad's edge effects (a
//!   strict one-time pad would need bit-decomposition comparison, which
//!   trades ~L Beaver rounds for that last bit of leakage — see
//!   [`crate::beaver`] for the gate it would be built from). Used to pick
//!   the best split securely in distributed mining.

use crate::sharing::{additive_reconstruct, additive_share};
use crate::transcript::Transcript;
use rngkit::Rng;
use tdf_mathkit::field::P;
use tdf_mathkit::Fp61;

/// Helper-assisted millionaires: returns `x >= y` plus the transcript.
///
/// Trust model: the helper (party 2) must not collude with either
/// millionaire; it observes `x + r` and `y + r` only.
pub fn masked_compare<R: Rng + ?Sized>(rng: &mut R, x: u64, y: u64) -> (bool, Transcript) {
    assert!(
        x < P / 4 && y < P / 4,
        "inputs must stay clear of field wraparound"
    );
    let mut t = Transcript::new();
    // The dealer hands both parties the same mask (party 3 = dealer).
    let r = Fp61::random(rng).raw() % (P / 2); // keep x+r, y+r below P
    t.send(3, 0, "shared_mask", vec![r]);
    t.send(3, 1, "shared_mask", vec![r]);
    let xm = x + r;
    let ym = y + r;
    t.send(0, 2, "masked_x", vec![xm]);
    t.send(1, 2, "masked_y", vec![ym]);
    let bit = xm >= ym;
    t.send(2, 0, "comparison_bit", vec![u64::from(bit)]);
    t.send(2, 1, "comparison_bit", vec![u64::from(bit)]);
    (bit, t)
}

/// Comparison of additively shared values on a bounded domain.
///
/// `x_shares` and `y_shares` are sharings of `x, y ∈ [0, 2^L)` with
/// `L ≤ 59`. The parties jointly open only `z = (x − y + 2^L) + r mod P`
/// for a dealer-provided random `r < 2^L` — from which, together with the
/// dealer's private knowledge of `r`, the strict *carry* bit of the
/// bounded difference is recovered and broadcast. Returns `x >= y`.
pub fn shared_compare<R: Rng + ?Sized>(
    rng: &mut R,
    x_shares: &[Fp61],
    y_shares: &[Fp61],
    domain_bits: u32,
) -> bool {
    assert!(domain_bits <= 59, "domain must fit the field with headroom");
    let k = x_shares.len();
    assert_eq!(y_shares.len(), k, "share vectors must align");
    let two_l = 1u64 << domain_bits;

    // Dealer: shares of r < 2^L.
    let r = rng.gen_range(0..two_l);
    let r_shares = additive_share(rng, Fp61::new(r), k);

    // Parties locally compute shares of d = x − y + 2^L + r and open d.
    let offset = Fp61::new(two_l);
    let opened = additive_reconstruct(
        &(0..k)
            .map(|i| {
                let mut s = x_shares[i] - y_shares[i] + r_shares[i];
                if i == 0 {
                    s += offset;
                }
                s
            })
            .collect::<Vec<_>>(),
    );
    // d = (x − y + 2^L) + r with both addends < 2^(L+1): no field wrap.
    // x >= y  ⇔  x − y + 2^L >= 2^L  ⇔  d − r >= 2^L.
    opened.raw() - r >= two_l
}

/// Secure arg-max over additively shared values (tournament of
/// [`shared_compare`] calls): returns the index of the maximum.
pub fn shared_argmax<R: Rng + ?Sized>(
    rng: &mut R,
    shared_values: &[Vec<Fp61>],
    domain_bits: u32,
) -> usize {
    assert!(!shared_values.is_empty(), "need at least one candidate");
    let mut best = 0usize;
    for i in 1..shared_values.len() {
        if !shared_compare(rng, &shared_values[best], &shared_values[i], domain_bits) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::prelude::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(0x3117)
    }

    #[test]
    fn masked_compare_is_correct() {
        let mut r = rng();
        assert!(masked_compare(&mut r, 10, 3).0);
        assert!(!masked_compare(&mut r, 3, 10).0);
        assert!(masked_compare(&mut r, 7, 7).0);
    }

    #[test]
    fn helper_never_sees_raw_values() {
        let mut r = rng();
        let (x, y) = (123_456u64, 654_321u64);
        let (_, t) = masked_compare(&mut r, x, y);
        assert!(!t.party_saw_value(2, x));
        assert!(!t.party_saw_value(2, y));
        // The millionaires see only the mask and the bit.
        assert!(!t.party_saw_value(0, y));
        assert!(!t.party_saw_value(1, x));
    }

    #[test]
    fn shared_compare_hand_cases() {
        let mut r = rng();
        for (x, y, expect) in [
            (5u64, 3u64, true),
            (3, 5, false),
            (9, 9, true),
            (0, 0, true),
        ] {
            let xs = additive_share(&mut r, Fp61::new(x), 3);
            let ys = additive_share(&mut r, Fp61::new(y), 3);
            assert_eq!(shared_compare(&mut r, &xs, &ys, 16), expect, "{x} vs {y}");
        }
    }

    #[test]
    fn shared_argmax_finds_the_winner() {
        let mut r = rng();
        let values = [17u64, 99, 4, 99, 56];
        let shared: Vec<Vec<Fp61>> = values
            .iter()
            .map(|&v| additive_share(&mut r, Fp61::new(v), 2))
            .collect();
        let best = shared_argmax(&mut r, &shared, 16);
        // Ties break toward the earlier index (stable tournament).
        assert_eq!(best, 1);
    }

    props! {
        #[test]
        fn shared_compare_matches_plain(x in 0u64..1_000_000, y in 0u64..1_000_000,
                                        parties in 2usize..6) {
            let mut r = rng();
            let xs = additive_share(&mut r, Fp61::new(x), parties);
            let ys = additive_share(&mut r, Fp61::new(y), parties);
            prop_assert_eq!(shared_compare(&mut r, &xs, &ys, 30), x >= y);
        }

        #[test]
        fn masked_compare_matches_plain(x in 0u64..1_000_000_000, y in 0u64..1_000_000_000) {
            let mut r = rng();
            prop_assert_eq!(masked_compare(&mut r, x, y).0, x >= y);
        }
    }
}
