//! Injected transcript corruption (`smc.corrupt_word`).
//!
//! Lives in its own test binary because the fault plan is process-global
//! and must not race the plan-free protocol tests.

use std::sync::Mutex;
use tdf_smc::transcript::Transcript;

static PLAN: Mutex<()> = Mutex::new(());

fn with_fault_plan<T>(text: &str, f: impl FnOnce() -> T) -> T {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    faultkit::set_plan(Some(faultkit::FaultPlan::parse(text).unwrap()));
    let out = f();
    faultkit::set_plan(None);
    out
}

fn sample_transcript() -> Transcript {
    let mut t = Transcript::new();
    t.send(0, 3, "masked_partial_sum", vec![11, 22, 33]);
    t.send(1, 3, "masked_partial_sum", vec![44, 55]);
    t.send(3, 0, "sum", vec![165]);
    t
}

#[test]
fn injected_corruption_is_detected_by_verify() {
    let t = with_fault_plan("smc.corrupt_word=1", sample_transcript);
    let err = t.verify().expect_err("one message was corrupted in flight");
    assert_eq!(err.index, 0, "budget 1 at rate 1 hits the first message");
    assert_ne!(err.expected, err.actual);
}

#[test]
fn zero_rate_corruption_plan_is_bit_identical_to_no_plan() {
    let baseline = {
        let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        faultkit::set_plan(None);
        sample_transcript()
    };
    let gated = with_fault_plan("smc.corrupt_word=9@0", sample_transcript);
    assert_eq!(baseline.verify(), Ok(()));
    assert_eq!(gated.verify(), Ok(()));
    assert_eq!(baseline.digest(), gated.digest());
    assert_eq!(baseline.messages(), gated.messages());
}
