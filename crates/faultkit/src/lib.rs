//! Hermetic, seed-deterministic fault injection for the privacy kernels.
//!
//! A process-global **fault plan** names *injection sites* and gives each
//! a value and a firing rate. Kernels declare sites with two zero-cost
//! free functions:
//!
//! - [`fire`] — "should this fault happen here?" The site's value is a
//!   **budget**: once that many faults have fired process-wide the site
//!   goes quiet (`0` means unbounded). Used for drop/corrupt/panic style
//!   faults.
//! - [`param`] — "is a parameter injected here, and what is it?" The
//!   site's value is the **parameter** (e.g. a row deadline); the rate
//!   gates whether it applies to this particular draw.
//!
//! The plan comes from `TDF_FAULTS`, e.g.
//!
//! ```text
//! TDF_FAULTS=pir.server_drop=1@0.1,pir.corrupt_word=2@0.05,par.worker_panic=3,querydb.deadline=500
//! ```
//!
//! Each entry is `site=value[@rate]`; a missing rate means `1.0` (every
//! draw), rate `0` makes the site provably inert — the zero-rate plan is
//! the control arm CI compares against a no-plan run for bit-identity.
//!
//! **Determinism.** Whether draw *n* at a site fires is a pure function
//! of `(seed, site, n)` — a splitmix64 stream keyed by the plan seed
//! (`TDF_FAULT_SEED`, default `0xFA17`) and the FNV-1a hash of the site
//! name, indexed by a per-site atomic draw counter. Two runs with the
//! same plan, seed and thread count inject the same faults at the same
//! draws; sites are independent streams, so adding a site never shifts
//! another site's decisions.
//!
//! Every injected fault is counted through the obs registry as
//! `fault.injected.<site>`, so fault reports ride along in snapshots and
//! CI can diff them against a golden file.
//!
//! With the `noop` cargo feature every entry point compiles to nothing
//! (mirroring `tdf-obs`): [`enabled`] is `false`, [`fire`] never fires,
//! [`param`] never injects.

use std::fmt;

/// Default plan seed when `TDF_FAULT_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0xFA17;

/// A malformed `TDF_FAULTS` entry, with the offending text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The entry (comma-separated segment) that failed to parse.
    pub entry: String,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault-plan entry {:?}: {}", self.entry, self.message)
    }
}

impl std::error::Error for PlanParseError {}

mod hash {
    /// FNV-1a over a byte string — keys a site's draw stream.
    pub fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// splitmix64 finalizer: one well-mixed word per distinct input.
    pub fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` for draw `n` of the site stream `site_hash`
    /// under `seed` — the entire firing decision is this pure function.
    pub fn unit(seed: u64, site_hash: u64, n: u64) -> f64 {
        let word = splitmix64(seed ^ site_hash ^ n.wrapping_mul(0xA24BAED4963EE407));
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

// The plan type and parser keep their real shape under `noop` so tests
// and tools that *construct* plans compile either way; only the global
// query path is compiled out.
mod plan {
    use super::{hash, PlanParseError};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) struct Site {
        pub value: u64,
        pub rate: f64,
        hash: u64,
        /// Draws taken at this site so far (indexes the decision stream).
        draws: AtomicU64,
        /// Faults actually injected at this site so far (budget check).
        fired: AtomicU64,
    }

    /// A parsed fault plan: per-site `value`/`rate` plus the draw state
    /// that makes repeated queries walk a deterministic decision stream.
    pub struct FaultPlan {
        seed: u64,
        sites: BTreeMap<String, Site>,
    }

    impl FaultPlan {
        /// Parse `site=value[@rate]` entries separated by commas, with
        /// the default seed. Empty input parses to an empty (inert) plan.
        pub fn parse(text: &str) -> Result<Self, PlanParseError> {
            Self::parse_with_seed(text, super::DEFAULT_SEED)
        }

        /// [`FaultPlan::parse`] with an explicit decision-stream seed.
        pub fn parse_with_seed(text: &str, seed: u64) -> Result<Self, PlanParseError> {
            let mut sites = BTreeMap::new();
            for entry in text.split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                let err = |message: &str| PlanParseError {
                    entry: entry.to_owned(),
                    message: message.to_owned(),
                };
                let (site, spec) = entry
                    .split_once('=')
                    .ok_or_else(|| err("expected site=value[@rate]"))?;
                let site = site.trim();
                if site.is_empty()
                    || !site
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
                {
                    return Err(err("site names are [a-z0-9._-]+"));
                }
                let (value, rate) = match spec.split_once('@') {
                    None => (spec.trim(), None),
                    Some((v, r)) => (v.trim(), Some(r.trim())),
                };
                let value: u64 = value
                    .parse()
                    .map_err(|_| err("value must be an unsigned integer"))?;
                let rate: f64 = match rate {
                    None => 1.0,
                    Some(r) => r
                        .parse()
                        .ok()
                        .filter(|r: &f64| r.is_finite() && (0.0..=1.0).contains(r))
                        .ok_or_else(|| err("rate must be a number in [0, 1]"))?,
                };
                if sites.contains_key(site) {
                    return Err(err("duplicate site"));
                }
                sites.insert(
                    site.to_owned(),
                    Site {
                        value,
                        rate,
                        hash: hash::fnv1a(site.as_bytes()),
                        draws: AtomicU64::new(0),
                        fired: AtomicU64::new(0),
                    },
                );
            }
            Ok(FaultPlan { seed, sites })
        }

        /// True when the plan names no sites at all.
        pub fn is_empty(&self) -> bool {
            self.sites.is_empty()
        }

        /// The configured sites, as `(name, value, rate)` in name order.
        pub fn sites(&self) -> impl Iterator<Item = (&str, u64, f64)> {
            self.sites
                .iter()
                .map(|(name, s)| (name.as_str(), s.value, s.rate))
        }

        /// Total faults injected at `site` so far.
        pub fn fired(&self, site: &str) -> u64 {
            self.sites
                .get(site)
                .map_or(0, |s| s.fired.load(Ordering::Relaxed))
        }

        /// One rate-gated draw at `site`: takes the next index of the
        /// site's decision stream and reports whether it fires. Returns
        /// `None` when the site is not in the plan or the draw misses.
        fn draw(&self, site: &str) -> Option<&Site> {
            let s = self.sites.get(site)?;
            let n = s.draws.fetch_add(1, Ordering::Relaxed);
            if s.rate <= 0.0 {
                return None;
            }
            if s.rate < 1.0 && hash::unit(self.seed, s.hash, n) >= s.rate {
                return None;
            }
            Some(s)
        }

        /// Budget-checked fault draw (the engine behind [`super::fire`]).
        pub(crate) fn fire(&self, site: &str) -> bool {
            let Some(s) = self.draw(site) else {
                return false;
            };
            // value = budget: 0 is unbounded, else stop after `value`.
            if s.value > 0 {
                let mut fired = s.fired.load(Ordering::Relaxed);
                loop {
                    if fired >= s.value {
                        return false;
                    }
                    match s.fired.compare_exchange_weak(
                        fired,
                        fired + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(cur) => fired = cur,
                    }
                }
            } else {
                s.fired.fetch_add(1, Ordering::Relaxed);
            }
            obs::count(&format!("fault.injected.{site}"), 1);
            true
        }

        /// Rate-gated parameter draw (the engine behind [`super::param`]).
        pub(crate) fn param(&self, site: &str) -> Option<u64> {
            let s = self.draw(site)?;
            s.fired.fetch_add(1, Ordering::Relaxed);
            obs::count(&format!("fault.injected.{site}"), 1);
            Some(s.value)
        }
    }

    impl std::fmt::Debug for FaultPlan {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let mut m = f.debug_map();
            for (name, value, rate) in self.sites() {
                m.entry(&name, &format_args!("{value}@{rate}"));
            }
            m.finish()
        }
    }
}

pub use plan::FaultPlan;

#[cfg(not(feature = "noop"))]
pub use active::*;
#[cfg(not(feature = "noop"))]
mod active {
    use super::FaultPlan;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::{Arc, Mutex};

    /// 0 = not yet initialised from the environment, 1 = no plan,
    /// 2 = a plan is installed. The fast path is one relaxed load.
    static STATE: AtomicU8 = AtomicU8::new(0);
    static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

    #[cold]
    fn init_from_env() -> bool {
        let plan = match std::env::var("TDF_FAULTS") {
            Err(_) => None,
            Ok(text) if text.trim().is_empty() => None,
            Ok(text) => {
                let seed = std::env::var("TDF_FAULT_SEED")
                    .ok()
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .unwrap_or(super::DEFAULT_SEED);
                // A typo'd plan silently injecting nothing would defeat a
                // fault-matrix CI run; fail loudly instead.
                match FaultPlan::parse_with_seed(&text, seed) {
                    Ok(plan) => Some(plan),
                    Err(e) => panic!("TDF_FAULTS: {e}"),
                }
            }
        };
        let mut slot = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        // Another thread may have raced the init or called set_plan.
        if STATE.load(Ordering::Relaxed) == 0 {
            let active = plan.is_some();
            *slot = plan.map(Arc::new);
            STATE.store(if active { 2 } else { 1 }, Ordering::Relaxed);
            active
        } else {
            slot.is_some()
        }
    }

    /// True when a fault plan is installed (sites may still be inert).
    #[inline]
    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            0 => init_from_env(),
            1 => false,
            _ => true,
        }
    }

    /// Install `plan` (or clear with `None`), overriding `TDF_FAULTS`.
    /// Tests and chaos drivers use this instead of mutating the process
    /// environment.
    pub fn set_plan(plan: Option<FaultPlan>) {
        let mut slot = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        let active = plan.is_some();
        *slot = plan.map(Arc::new);
        STATE.store(if active { 2 } else { 1 }, Ordering::Relaxed);
    }

    fn current() -> Option<Arc<FaultPlan>> {
        if !enabled() {
            return None;
        }
        PLAN.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Budget-style injection point: true when the plan says a fault
    /// happens at this draw of `site`. Counts `fault.injected.<site>`.
    #[inline]
    pub fn fire(site: &str) -> bool {
        match current() {
            None => false,
            Some(plan) => plan.fire(site),
        }
    }

    /// Parameter-style injection point: the site's value when the plan
    /// says the parameter applies to this draw, else `None`.
    #[inline]
    pub fn param(site: &str) -> Option<u64> {
        match current() {
            None => None,
            Some(plan) => plan.param(site),
        }
    }

    /// Total faults injected at `site` by the installed plan so far.
    pub fn fired(site: &str) -> u64 {
        current().map_or(0, |plan| plan.fired(site))
    }
}

#[cfg(feature = "noop")]
pub use noop::*;
#[cfg(feature = "noop")]
mod noop {
    //! Compile-to-nothing variant: same API surface, no injection ever.

    use super::FaultPlan;

    /// Always false with the `noop` feature.
    #[inline]
    pub fn enabled() -> bool {
        false
    }
    /// Ignored with the `noop` feature.
    #[inline]
    pub fn set_plan(_plan: Option<FaultPlan>) {}
    /// Never fires with the `noop` feature.
    #[inline]
    pub fn fire(_site: &str) -> bool {
        false
    }
    /// Never injects with the `noop` feature.
    #[inline]
    pub fn param(_site: &str) -> Option<u64> {
        None
    }
    /// Always 0 with the `noop` feature.
    #[inline]
    pub fn fired(_site: &str) -> u64 {
        0
    }
}

#[cfg(all(test, feature = "noop"))]
mod noop_tests {
    use super::*;

    #[test]
    fn noop_build_never_fires() {
        set_plan(Some(FaultPlan::parse("a.b=0@1").unwrap()));
        assert!(!enabled());
        assert!(!fire("a.b"));
        assert_eq!(param("a.b"), None);
        assert_eq!(fired("a.b"), 0);
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The plan is process-global; serialise tests that install one.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_plan<T>(text: &str, f: impl FnOnce() -> T) -> T {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_plan(Some(FaultPlan::parse(text).unwrap()));
        let out = f();
        set_plan(None);
        out
    }

    #[test]
    fn parses_the_issue_example_plan() {
        let plan = FaultPlan::parse(
            "pir.server_drop=1@0.1,pir.corrupt_word=2@0.05,par.worker_panic=3,querydb.deadline=500",
        )
        .unwrap();
        let sites: Vec<_> = plan.sites().collect();
        assert_eq!(
            sites,
            vec![
                ("par.worker_panic", 3, 1.0),
                ("pir.corrupt_word", 2, 0.05),
                ("pir.server_drop", 1, 0.1),
                ("querydb.deadline", 500, 1.0),
            ]
        );
    }

    #[test]
    fn rejects_malformed_entries() {
        for bad in [
            "noequals",
            "a.b=x",
            "a.b=1@2",
            "a.b=1@-0.5",
            "a.b=1@nan",
            "a b=1",
            "=1",
            "a.b=1,a.b=2",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty());
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn budget_caps_total_firings() {
        with_plan("t.budget=3", || {
            let fires = (0..10).filter(|_| fire("t.budget")).count();
            assert_eq!(fires, 3, "rate 1 fires exactly the budget");
            assert_eq!(fired("t.budget"), 3);
            assert!(!fire("t.budget"), "budget exhausted");
        });
    }

    #[test]
    fn zero_rate_never_fires_and_unknown_sites_never_fire() {
        with_plan("t.zero=9@0", || {
            assert!((0..1000).all(|_| !fire("t.zero")));
            assert_eq!(param("t.zero"), None);
            assert_eq!(fired("t.zero"), 0);
            assert!(!fire("t.unlisted"));
            assert_eq!(param("t.unlisted"), None);
        });
    }

    #[test]
    fn no_plan_is_fully_inert() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_plan(None);
        assert!(!enabled());
        assert!(!fire("t.any"));
        assert_eq!(param("t.any"), None);
    }

    #[test]
    fn fractional_rate_fires_deterministically_near_the_rate() {
        let run = || {
            with_plan("t.frac=0@0.25", || {
                (0..4000).map(|_| fire("t.frac")).collect::<Vec<_>>()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same plan + seed → same decision stream");
        let hits = a.iter().filter(|&&f| f).count();
        assert!(
            (800..1200).contains(&hits),
            "rate 0.25 over 4000 draws fired {hits} times"
        );
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let stream = |seed| {
            let plan = FaultPlan::parse_with_seed("t.seed=0@0.5", seed).unwrap();
            let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_plan(Some(plan));
            let v: Vec<bool> = (0..64).map(|_| fire("t.seed")).collect();
            set_plan(None);
            v
        };
        assert_ne!(stream(1), stream(2));
    }

    #[test]
    fn param_injects_the_value_at_rate_one() {
        with_plan("t.deadline=500", || {
            assert_eq!(param("t.deadline"), Some(500));
            assert_eq!(param("t.deadline"), Some(500), "params have no budget");
            assert!(!fire("t.absent"));
        });
    }

    #[test]
    fn sites_are_independent_streams() {
        // The same site must make the same decisions whether or not other
        // sites exist in the plan (each keys its own stream).
        let solo = with_plan("t.ind=0@0.5", || {
            (0..64).map(|_| fire("t.ind")).collect::<Vec<_>>()
        });
        let joint = with_plan("t.ind=0@0.5,t.other=0@0.5", || {
            (0..64)
                .map(|_| {
                    let f = fire("t.ind");
                    fire("t.other");
                    f
                })
                .collect::<Vec<_>>()
        });
        assert_eq!(solo, joint);
    }

    #[test]
    fn injections_are_counted_through_obs() {
        with_plan("t.counted=2", || {
            obs::set_level(1);
            obs::reset();
            while fire("t.counted") {}
            let snap = obs::snapshot();
            assert_eq!(snap.counter("fault.injected.t.counted"), 2);
            obs::set_level(0);
            obs::reset();
        });
    }
}
