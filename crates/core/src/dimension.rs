//! The three privacy dimensions and the paper's five-point grade scale.

use std::fmt;

/// Whose privacy a technology protects — the paper's central taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrivacyDimension {
    /// Prevent re-identification of the people/organizations the records
    /// describe (§1, item 1).
    Respondent,
    /// Prevent the data holder from having to give its dataset away
    /// (§1, item 2).
    Owner,
    /// Keep the queries submitted by data users private (§1, item 3).
    User,
}

impl PrivacyDimension {
    /// All three, in the paper's order.
    pub const ALL: [PrivacyDimension; 3] = [
        PrivacyDimension::Respondent,
        PrivacyDimension::Owner,
        PrivacyDimension::User,
    ];
}

impl fmt::Display for PrivacyDimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrivacyDimension::Respondent => "respondent privacy",
            PrivacyDimension::Owner => "owner privacy",
            PrivacyDimension::User => "user privacy",
        };
        write!(f, "{s}")
    }
}

/// The qualitative scale of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Grade {
    /// No protection.
    None,
    /// Weak protection.
    Low,
    /// Moderate protection.
    Medium,
    /// Strong-but-not-maximal protection.
    MediumHigh,
    /// Maximal protection in the class.
    High,
}

impl Grade {
    /// Maps a quantitative score in `[0, 1]` onto the paper's scale.
    ///
    /// Thresholds (documented in DESIGN.md §4): ≥ 0.95 high, ≥ 0.8
    /// medium-high, ≥ 0.5 medium, ≥ 0.2 low, else none.
    /// ```
    /// use tdf_core::dimension::Grade;
    /// assert_eq!(Grade::from_score(0.99), Grade::High);
    /// assert_eq!(Grade::from_score(0.6), Grade::Medium);
    /// assert_eq!(Grade::from_score(0.0), Grade::None);
    /// ```
    pub fn from_score(score: f64) -> Grade {
        if score >= 0.95 {
            Grade::High
        } else if score >= 0.8 {
            Grade::MediumHigh
        } else if score >= 0.5 {
            Grade::Medium
        } else if score >= 0.2 {
            Grade::Low
        } else {
            Grade::None
        }
    }

    /// The paper's spelling of the grade.
    pub fn as_str(&self) -> &'static str {
        match self {
            Grade::None => "none",
            Grade::Low => "low",
            Grade::Medium => "medium",
            Grade::MediumHigh => "medium-high",
            Grade::High => "high",
        }
    }
}

impl fmt::Display for Grade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grade_thresholds() {
        assert_eq!(Grade::from_score(1.0), Grade::High);
        assert_eq!(Grade::from_score(0.95), Grade::High);
        assert_eq!(Grade::from_score(0.9), Grade::MediumHigh);
        assert_eq!(Grade::from_score(0.6), Grade::Medium);
        assert_eq!(Grade::from_score(0.3), Grade::Low);
        assert_eq!(Grade::from_score(0.0), Grade::None);
        assert_eq!(Grade::from_score(-0.5), Grade::None);
    }

    #[test]
    fn grades_are_totally_ordered() {
        assert!(Grade::None < Grade::Low);
        assert!(Grade::Low < Grade::Medium);
        assert!(Grade::Medium < Grade::MediumHigh);
        assert!(Grade::MediumHigh < Grade::High);
    }

    #[test]
    fn display_matches_the_papers_vocabulary() {
        assert_eq!(Grade::MediumHigh.to_string(), "medium-high");
        assert_eq!(Grade::None.to_string(), "none");
        assert_eq!(
            PrivacyDimension::Respondent.to_string(),
            "respondent privacy"
        );
    }
}
