//! Executable versions of the paper's worked examples (§2–§4) and the §6
//! composition sweep.
//!
//! Each `eN` function reproduces one independence demonstration and
//! returns the measured facts plus a `matches_paper` verdict; the
//! `tdf-bench` binaries print them and EXPERIMENTS.md records them.

use crate::metrics::{owner_score, respondent_score};
use crate::pipeline::{DeploymentConfig, ThreeDimensionalDb};
use rngkit::Rng;
use tdf_microdata::patients;
use tdf_microdata::rng::seeded;
use tdf_microdata::synth::{patients as synth_patients, PatientConfig};
use tdf_microdata::Result;
use tdf_ppdm::sparsity;
use tdf_querydb::ast::{CmpOp, Predicate};
use tdf_querydb::control::{Auditor, ControlPolicy};
use tdf_querydb::statdb::StatDb;
use tdf_querydb::tracker::disclose_individual;
use tdf_sdc::utility::{utility_report, UtilityReport};
use tdf_smc::id3::{distributed_id3, DataShape, PartySlice};
use tdf_smc::secure_sum::sharing_secure_sum;

/// Generic outcome of one independence experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Experiment id ("E1" … "E7").
    pub id: &'static str,
    /// One-line statement of the paper's claim.
    pub claim: &'static str,
    /// Measured facts, as printable lines.
    pub facts: Vec<String>,
    /// Whether the measurements support the paper's claim.
    pub matches_paper: bool,
}

/// E1 — §2 "respondent privacy without owner privacy": publishing the
/// spontaneously 3-anonymous Dataset 1 protects patients but hands the
/// pharmaceutical company's trial data to competitors.
pub fn e1_respondent_without_owner() -> Result<ExperimentOutcome> {
    let d = patients::dataset1();
    let respondent = respondent_score(&d, &d)?;
    // The release *is* the dataset: owner disclosure is total.
    let owner = owner_score(&d, &d, &d.schema().numeric_indices(), 0.1)?;
    let respondent_ok = respondent >= 1.0 - 1.0 / 3.0 - 1e-9; // linkage ≤ 1/3
    let owner_violated = owner < 0.05;
    Ok(ExperimentOutcome {
        id: "E1",
        claim: "Dataset 1 is publishable for respondents (3-anonymous) yet publication violates owner privacy",
        facts: vec![
            format!("respondent score of the release: {respondent:.3} (linkage \u{2264} 1/3)"),
            format!("owner score of the release: {owner:.3} (full dataset disclosed)"),
        ],
        matches_paper: respondent_ok && owner_violated,
    })
}

/// E2 — §2 "respondent and owner privacy": masking (noise [5] /
/// condensation [1]) protects both while keeping the data analytically
/// useful.
pub fn e2_masking_protects_both() -> Result<ExperimentOutcome> {
    let d = synth_patients(&PatientConfig {
        n: 400,
        ..Default::default()
    });
    let numeric = d.schema().numeric_indices();
    let mut rng = seeded(2);
    let masked = tdf_ppdm::condensation::condense(&d, &numeric, 5, &mut rng)?;
    let respondent = respondent_score(&d, &masked)?;
    let owner = owner_score(&d, &masked, &numeric, 0.1)?;
    let utility: UtilityReport = utility_report(&d, &masked, &numeric)?;
    let ok = respondent > 0.5 && owner > 0.5 && utility.max_correlation_drift < 0.15;
    Ok(ExperimentOutcome {
        id: "E2",
        claim: "adequate masking yields respondent AND owner privacy without destroying utility",
        facts: vec![
            format!("respondent score: {respondent:.3}"),
            format!("owner score: {owner:.3}"),
            format!(
                "max correlation drift: {:.3}",
                utility.max_correlation_drift
            ),
            format!("IL1s information loss: {:.3}", utility.il1s),
        ],
        matches_paper: ok,
    })
}

/// E3 — §2 "owner privacy without respondent privacy", both variants:
/// (a) releasing a single Dataset 2 record violates the respondent but not
/// the owner; (b) the [11] sparsity attack on noise addition.
pub fn e3_owner_without_respondent() -> Result<ExperimentOutcome> {
    // (a) single-record release from Dataset 2.
    let d = patients::dataset2();
    let single_rows = 1.0 / d.num_rows() as f64;
    // The single record discloses its respondent entirely (unique QI),
    // while the owner loses one record out of ten.
    // (b) sparsity: same noise, rising dimension, rising linkage.
    let low = sparsity::linkage_rate_at_dimension(200, 2, 1.0, 3);
    let high = sparsity::linkage_rate_at_dimension(200, 40, 1.0, 3);
    let ok = high > low + 0.2 && high > 0.5;
    Ok(ExperimentOutcome {
        id: "E3",
        claim: "owner privacy can hold while respondent privacy fails (single-record leak; high-dimensional noise reconstruction [11])",
        facts: vec![
            format!("(a) single-record release: respondent linkage 1.0, owner loses {:.0}% of cells", single_rows * 100.0),
            format!("(b) sparsity attack linkage: d=2 \u{2192} {low:.2}, d=40 \u{2192} {high:.2}"),
        ],
        matches_paper: ok,
    })
}

/// E4 — §3 "respondent privacy without user privacy": interactive SDC.
/// The size filter is defeated by the tracker [22]; exact auditing [7]
/// stops it; either way the owner logs every query — zero user privacy.
pub fn e4_interactive_sdc() -> Result<ExperimentOutcome> {
    let target =
        Predicate::cmp("height", CmpOp::Lt, 165.0).and(Predicate::cmp("weight", CmpOp::Gt, 105.0));
    let tracker = Predicate::cmp("aids", CmpOp::Eq, false);

    let mut size_db = StatDb::new(
        patients::dataset2(),
        ControlPolicy::SizeRestriction { min_size: 2 },
    );
    let tracked = disclose_individual(&mut size_db, "blood_pressure", &target, &tracker)?;

    let d2 = patients::dataset2();
    let n = d2.num_rows();
    let mut audit_db = StatDb::new(d2, ControlPolicy::Audit(Auditor::new("blood_pressure", n)));
    let audited = disclose_individual(&mut audit_db, "blood_pressure", &target, &tracker)?;

    let queries_seen = size_db.query_log().len() + audit_db.query_log().len();
    let ok = tracked == Some(146.0) && audited.is_none() && queries_seen > 0;
    Ok(ExperimentOutcome {
        id: "E4",
        claim: "query control can give respondent privacy (auditing beats the tracker) but the owner sees every query: no user privacy",
        facts: vec![
            format!("tracker vs size restriction: disclosed {tracked:?} (true value 146)"),
            format!("tracker vs exact auditing: disclosed {audited:?}, {} refusals", audit_db.refusals()),
            format!("queries visible to the owner: {queries_seen}"),
        ],
        matches_paper: ok,
    })
}

/// E5 — §3 "user privacy without respondent privacy": the paper's verbatim
/// two-query PIR isolation attack on Dataset 2.
pub fn e5_pir_isolation_attack() -> Result<ExperimentOutcome> {
    let mut db = ThreeDimensionalDb::deploy(
        patients::dataset2(),
        DeploymentConfig { k: None, pir: true },
    )?;
    let mut rng = seeded(5);
    let count_q =
        tdf_querydb::parser::parse("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105")?;
    let avg_q = tdf_querydb::parser::parse(
        "SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105",
    )?;
    let count = db.private_query(&mut rng, &count_q)?;
    let avg = db.private_query(&mut rng, &avg_q)?;
    let server_learned_nothing = db.plain_access_log().is_empty();
    let ok = count == Some(1.0) && avg == Some(146.0) && server_learned_nothing;
    Ok(ExperimentOutcome {
        id: "E5",
        claim: "PIR on unmasked Dataset 2: the user's queries stay private, yet two queries re-identify Mr./Mrs. X (blood pressure 146)",
        facts: vec![
            format!("COUNT(*) WHERE height<165 AND weight>105 = {count:?}"),
            format!("AVG(blood_pressure) same predicate = {avg:?}"),
            format!("owner observed zero plaintext accesses: {server_learned_nothing}"),
        ],
        matches_paper: ok,
    })
}

/// E6 — §3 "respondent and user privacy": the same attack dies against a
/// k-anonymized release served over PIR.
pub fn e6_kanon_plus_pir() -> Result<ExperimentOutcome> {
    let original = patients::dataset2();
    let mut db = ThreeDimensionalDb::deploy(
        original.clone(),
        DeploymentConfig {
            k: Some(3),
            pir: true,
        },
    )?;
    let mut rng = seeded(6);
    let count_q =
        tdf_querydb::parser::parse("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105")?;
    let count = db.private_query(&mut rng, &count_q)?;
    let respondent = respondent_score(&original, db.released())?;
    let isolating = count == Some(1.0);
    let ok = !isolating && respondent >= 1.0 - 1.0 / 3.0 - 1e-9;
    Ok(ExperimentOutcome {
        id: "E6",
        claim:
            "k-anonymous records + PIR: no query can isolate a respondent, and queries stay private",
        facts: vec![
            format!("isolating COUNT now returns {count:?} (was 1 on the raw data)"),
            format!("respondent score of the PIR-served release: {respondent:.3}"),
        ],
        matches_paper: ok,
    })
}

/// E7 — §4 owner/user independence: crypto PPDM reveals only the joint
/// result (owner privacy) but every party knows the computation (no user
/// privacy); non-crypto PPDM + PIR gives both, at a weaker owner level.
pub fn e7_crypto_vs_noncrypto() -> Result<ExperimentOutcome> {
    // Crypto side: 3-party secure sum + distributed ID3; check transcripts.
    let mut rng = seeded(7);
    let inputs = [1234u64, 5678, 9012];
    let (sum, transcript) = sharing_secure_sum(&mut rng, &inputs.map(tdf_mathkit::Fp61::new));
    let inputs_hidden = (0..3).all(|p| inputs.iter().all(|&v| !transcript.party_saw_value(p, v)));

    let (parties, shape) = toy_partition();
    let id3 = distributed_id3(&mut rng, &parties, &shape, 3);
    let only_aggregates = id3
        .transcripts
        .iter()
        .flat_map(|t| t.messages())
        .all(|m| m.payload.len() == 1);

    let ok = sum.raw() == 1234 + 5678 + 9012 && inputs_hidden && only_aggregates;
    Ok(ExperimentOutcome {
        id: "E7",
        claim: "crypto PPDM: parties learn only the result (owner privacy) while the computation itself is known to all (no user privacy)",
        facts: vec![
            format!("secure sum correct: {}", sum.raw() == 15924),
            format!("no party saw another's raw input: {inputs_hidden}"),
            format!(
                "distributed ID3 exchanged {} secure-sum aggregates, records never moved: {only_aggregates}",
                id3.secure_sums
            ),
        ],
        matches_paper: ok,
    })
}

fn toy_partition() -> (Vec<PartySlice>, DataShape) {
    let mut a = PartySlice::default();
    let mut b = PartySlice::default();
    for i in 0..40usize {
        let row = vec![i % 3, (i / 3) % 2];
        let label = usize::from(i % 3 == 0);
        let slice = if i % 2 == 0 { &mut a } else { &mut b };
        slice.rows.push(row);
        slice.labels.push(label);
    }
    (
        vec![a, b],
        DataShape {
            attribute_cardinalities: vec![3, 2],
            num_classes: 2,
        },
    )
}

/// Runs every independence experiment.
pub fn all_experiments() -> Result<Vec<ExperimentOutcome>> {
    Ok(vec![
        e1_respondent_without_owner()?,
        e2_masking_protects_both()?,
        e3_owner_without_respondent()?,
        e4_interactive_sdc()?,
        e5_pir_isolation_attack()?,
        e6_kanon_plus_pir()?,
        e7_crypto_vs_noncrypto()?,
    ])
}

/// One point of the §6 / F1 risk–utility sweep.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// Microaggregation parameter.
    pub k: usize,
    /// Respondent score of the deployment's release.
    pub respondent: f64,
    /// Owner score of the release.
    pub owner: f64,
    /// User score of the access channel (1 under PIR, 0 in the clear).
    pub user: f64,
    /// IL1s information loss of the release.
    pub information_loss: f64,
    /// Communication bits per full statistical query.
    pub bits_per_query: u64,
}

/// F1 — sweeps `k` for a deployment shape, measuring all three scores plus
/// the utility penalty the paper's §6 asks about.
pub fn tradeoff_sweep<R: Rng + ?Sized>(
    config_pir: bool,
    ks: &[usize],
    n: usize,
    rng: &mut R,
) -> Result<Vec<TradeoffPoint>> {
    let data = synth_patients(&PatientConfig {
        n,
        ..Default::default()
    });
    let numeric = data.schema().numeric_indices();
    let mut out = Vec::with_capacity(ks.len());
    for &k in ks {
        let mut db = ThreeDimensionalDb::deploy(
            data.clone(),
            DeploymentConfig {
                k: if k > 1 { Some(k) } else { None },
                pir: config_pir,
            },
        )?;
        let q = tdf_querydb::parser::parse("SELECT AVG(blood_pressure) FROM t WHERE weight > 90")?;
        let before = db.cost();
        let _ = db.private_query(rng, &q)?;
        let bits_per_query = db.cost().total_bits() - before.total_bits();
        out.push(TradeoffPoint {
            k,
            respondent: respondent_score(&data, db.released())?,
            owner: owner_score(&data, db.released(), &numeric, 0.1)?,
            user: if config_pir { 1.0 } else { 0.0 },
            information_loss: tdf_sdc::utility::il1s(&data, db.released(), &numeric)?,
            bits_per_query,
        })
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_independence_experiment_matches_the_paper() {
        for outcome in all_experiments().unwrap() {
            assert!(
                outcome.matches_paper,
                "{} failed: {:?}",
                outcome.id, outcome.facts
            );
        }
    }

    #[test]
    fn e5_and_e6_are_the_same_attack_with_opposite_outcomes() {
        let e5 = e5_pir_isolation_attack().unwrap();
        let e6 = e6_kanon_plus_pir().unwrap();
        assert!(e5.matches_paper && e6.matches_paper);
        assert!(e5.facts[0].contains("Some(1.0)"));
        assert!(!e6.facts[0].contains("Some(1.0)"));
    }

    #[test]
    fn tradeoff_respondent_rises_and_utility_falls_with_k() {
        let mut rng = seeded(77);
        let points = tradeoff_sweep(true, &[1, 3, 10, 25], 150, &mut rng).unwrap();
        assert_eq!(points.len(), 4);
        assert!(points[0].respondent < points[3].respondent);
        assert!(points[0].information_loss < points[3].information_loss);
        for p in &points {
            assert_eq!(p.user, 1.0);
            assert!(p.bits_per_query > 0);
        }
    }

    #[test]
    fn pir_deployment_costs_more_communication_than_plain() {
        let mut rng = seeded(78);
        let with_pir = tradeoff_sweep(true, &[3], 100, &mut rng).unwrap();
        let without = tradeoff_sweep(false, &[3], 100, &mut rng).unwrap();
        assert!(with_pir[0].bits_per_query > without[0].bits_per_query);
        assert_eq!(without[0].user, 0.0);
    }
}
