//! The empirical Table 2: scoring every technology class on a common
//! scenario.
//!
//! For each of the eight rows of the paper's Table 2, this module builds a
//! concrete *release* (or protocol outcome) with the corresponding
//! technology from this workspace, and measures the three scores of
//! [`crate::metrics`]. `tdf-bench --bin table2` prints the measured matrix
//! side by side with the paper's qualitative one.

use crate::dimension::Grade;
use crate::metrics::{
    empirical_mask_leakage_bits, owner_score, respondent_score, user_score_from_bits, ScoreCard,
};
use crate::technology::TechnologyClass;
use rngkit::Rng;
use tdf_microdata::rng::seeded;
use tdf_microdata::stats;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_microdata::{Dataset, Result, Value};
use tdf_ppdm::condensation::condense;
use tdf_sdc::microaggregation::mdav_microaggregate;
use tdf_sdc::noise::{add_noise, NoiseConfig};
use tdf_sdc::swapping::rank_swap;

/// The common scenario every technology is scored on.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Population size.
    pub n: usize,
    /// Seed for population and masking randomness.
    pub seed: u64,
    /// Microaggregation group size used by the SDC release.
    pub k_sdc: usize,
    /// Condensation group size used by the generic non-crypto PPDM release.
    pub k_generic: usize,
    /// Relative noise amplitude of the use-specific PPDM release.
    pub noise_alpha: f64,
    /// Rank-swap window (percent) applied by SDC to confidential columns.
    pub swap_percent: f64,
    /// Reconstruction tolerance for the owner metric (× column sd).
    pub tolerance: f64,
    /// log2 of the number of analysis classes a use-specific PPDM release
    /// reveals to its server even under PIR (§5's rationale for grading
    /// that combination "medium").
    pub query_class_bits: f64,
    /// PIR trials for the empirical leakage estimate.
    pub pir_trials: usize,
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            n: 400,
            seed: 0x7D_F2007,
            k_sdc: 5,
            k_generic: 10,
            noise_alpha: 0.4,
            swap_percent: 15.0,
            tolerance: 0.1,
            query_class_bits: 4.0,
            pir_trials: 2000,
        }
    }
}

impl Scenario {
    /// The scenario's population.
    pub fn population(&self) -> Dataset {
        patients(&PatientConfig {
            n: self.n,
            seed: self.seed,
            ..Default::default()
        })
    }
}

/// The row-aligned release each technology ships. `None` means nothing
/// record-shaped is ever released (crypto PPDM: only aggregate results).
pub fn release_for(tech: TechnologyClass, scenario: &Scenario) -> Result<Option<Dataset>> {
    let data = scenario.population();
    let mut rng = seeded(scenario.seed ^ 0x5EED);
    let qi = data.schema().quasi_identifier_indices();
    let numeric: Vec<usize> = data.schema().numeric_indices();
    Ok(match tech {
        TechnologyClass::Sdc | TechnologyClass::SdcPlusPir => {
            // SDC toolbox: k-anonymize the keys, rank-swap the numeric
            // confidential payload.
            let masked = mdav_microaggregate(&data, &qi, scenario.k_sdc)?.data;
            let conf: Vec<usize> = data
                .schema()
                .confidential_indices()
                .into_iter()
                .filter(|&c| data.schema().attribute(c).kind.is_numeric())
                .collect();
            Some(rank_swap(&masked, &conf, scenario.swap_percent, &mut rng)?)
        }
        TechnologyClass::UseSpecificNonCryptoPpdm | TechnologyClass::UseSpecificPpdmPlusPir => {
            // Agrawal–Srikant noise on every numeric attribute: tuned for
            // one mining task (distribution reconstruction / classifiers).
            Some(add_noise(
                &data,
                &NoiseConfig::new(scenario.noise_alpha, numeric),
                &mut rng,
            )?)
        }
        TechnologyClass::GenericNonCryptoPpdm | TechnologyClass::GenericPpdmPlusPir => {
            // Condensation: k-anonymous synthetic data supporting broad
            // analysis.
            Some(condense(&data, &numeric, scenario.k_generic, &mut rng)?)
        }
        TechnologyClass::CryptoPpdm => None,
        TechnologyClass::Pir => Some(data), // PIR alone: unmasked records
    })
}

/// Crypto PPDM's "release": the per-column means the joint computation
/// outputs — the adversary's only non-protocol knowledge.
fn crypto_result_release(data: &Dataset, cols: &[usize]) -> Result<Dataset> {
    let mut out = data.clone();
    for &c in cols {
        let mean = stats::mean(&data.numeric_column(c)).unwrap_or(0.0);
        for i in 0..out.num_rows() {
            out.set_value(i, c, Value::Float(mean))?;
        }
    }
    Ok(out)
}

/// Measures the user-privacy score of the access channel.
fn measure_user_score<R: Rng + ?Sized>(
    tech: TechnologyClass,
    scenario: &Scenario,
    rng: &mut R,
) -> f64 {
    let index_bits = (scenario.n as f64).log2();
    let total_bits = index_bits + scenario.query_class_bits;
    if !tech.has_pir() {
        // The owner sees the whole query (interactive SDC, §3) or the
        // parties run the analysis jointly (crypto PPDM, §4).
        return user_score_from_bits(total_bits, total_bits);
    }
    // Empirical leakage of one PIR server's view about the index.
    let views: Vec<(usize, Vec<bool>)> = (0..scenario.pir_trials)
        .map(|t| {
            let idx = t % scenario.n;
            let q = tdf_pir::linear::Query::build(rng, scenario.n, 2, idx);
            (idx, q.share(0).to_bools())
        })
        .collect();
    let mut leaked = empirical_mask_leakage_bits(&views);
    if tech == TechnologyClass::UseSpecificPpdmPlusPir {
        // §5: "when use-specific non-crypto PPDM is combined with PIR,
        // there is some clue on the queries made by the user (they are
        // likely to correspond to the uses the PPDM method is intended
        // for)".
        leaked += scenario.query_class_bits;
    }
    user_score_from_bits(leaked, total_bits)
}

/// Scores one technology class on the scenario.
pub fn score_technology(tech: TechnologyClass, scenario: &Scenario) -> Result<ScoreCard> {
    let data = scenario.population();
    let numeric = data.schema().numeric_indices();
    let mut rng = seeded(scenario.seed ^ 0xCAFE);

    let (respondent, owner) = match release_for(tech, scenario)? {
        Some(release) => (
            respondent_score(&data, &release)?,
            owner_score(&data, &release, &numeric, scenario.tolerance)?,
        ),
        None => {
            // Crypto PPDM: adversary sees only the joint result.
            let result_view = crypto_result_release(&data, &numeric)?;
            (
                respondent_score(&data, &result_view)?,
                owner_score(&data, &result_view, &numeric, scenario.tolerance)?,
            )
        }
    };
    let user = measure_user_score(tech, scenario, &mut rng);
    Ok(ScoreCard {
        respondent,
        owner,
        user,
    })
}

/// One row of the regenerated Table 2.
#[derive(Debug, Clone)]
pub struct ScoredRow {
    /// The technology class.
    pub technology: TechnologyClass,
    /// Measured scores.
    pub scores: ScoreCard,
    /// Measured grades (respondent, owner, user).
    pub measured: [Grade; 3],
    /// The paper's grades for comparison.
    pub paper: [Grade; 3],
}

/// Regenerates the full Table 2 matrix.
pub fn scoring_table(scenario: &Scenario) -> Result<Vec<ScoredRow>> {
    TechnologyClass::ALL
        .iter()
        .map(|&technology| {
            let scores = score_technology(technology, scenario)?;
            Ok(ScoredRow {
                technology,
                scores,
                measured: [
                    Grade::from_score(scores.respondent),
                    Grade::from_score(scores.owner),
                    Grade::from_score(scores.user),
                ],
                paper: technology.paper_grades(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<ScoredRow> {
        scoring_table(&Scenario::default()).unwrap()
    }

    fn row(t: TechnologyClass) -> ScoredRow {
        table().into_iter().find(|r| r.technology == t).unwrap()
    }

    #[test]
    fn pir_row_matches_the_paper_exactly() {
        let r = row(TechnologyClass::Pir);
        assert_eq!(
            r.measured,
            [Grade::None, Grade::None, Grade::High],
            "{:?}",
            r.scores
        );
    }

    #[test]
    fn crypto_ppdm_row_matches_the_paper_exactly() {
        let r = row(TechnologyClass::CryptoPpdm);
        assert_eq!(
            r.measured,
            [Grade::High, Grade::High, Grade::None],
            "{:?}",
            r.scores
        );
    }

    #[test]
    fn user_column_matches_the_paper_in_every_row() {
        for r in table() {
            assert_eq!(
                r.measured[2], r.paper[2],
                "{}: {:?}",
                r.technology, r.scores
            );
        }
    }

    #[test]
    fn pir_composition_never_changes_data_scores() {
        let t = table();
        let get = |tech: TechnologyClass| t.iter().find(|r| r.technology == tech).unwrap().scores;
        for (base, combo) in [
            (TechnologyClass::Sdc, TechnologyClass::SdcPlusPir),
            (
                TechnologyClass::UseSpecificNonCryptoPpdm,
                TechnologyClass::UseSpecificPpdmPlusPir,
            ),
            (
                TechnologyClass::GenericNonCryptoPpdm,
                TechnologyClass::GenericPpdmPlusPir,
            ),
        ] {
            let b = get(base);
            let c = get(combo);
            assert!((b.respondent - c.respondent).abs() < 1e-9, "{base}");
            assert!((b.owner - c.owner).abs() < 1e-9, "{base}");
        }
    }

    #[test]
    fn crypto_ppdm_has_the_best_owner_score() {
        let t = table();
        let crypto = t
            .iter()
            .find(|r| r.technology == TechnologyClass::CryptoPpdm)
            .unwrap()
            .scores
            .owner;
        for r in &t {
            assert!(
                r.scores.owner <= crypto + 1e-9,
                "{}: {}",
                r.technology,
                r.scores.owner
            );
        }
    }

    #[test]
    fn ppdm_leads_sdc_on_owner_privacy() {
        // Table 2's owner column: SDC is graded "medium" while both
        // non-crypto PPDM rows are "medium-high" — PPDM's primary goal is
        // the owner's data, SDC's is the respondents'.
        let sdc = row(TechnologyClass::Sdc).scores;
        let use_specific = row(TechnologyClass::UseSpecificNonCryptoPpdm).scores;
        let generic = row(TechnologyClass::GenericNonCryptoPpdm).scores;
        assert!(
            use_specific.owner > sdc.owner,
            "use-specific owner {} vs SDC owner {}",
            use_specific.owner,
            sdc.owner
        );
        assert!(
            generic.owner > sdc.owner,
            "generic {} vs SDC {}",
            generic.owner,
            sdc.owner
        );
    }

    #[test]
    fn sdc_row_matches_the_paper_exactly() {
        let r = row(TechnologyClass::Sdc);
        assert_eq!(r.measured, r.paper, "{:?}", r.scores);
        let r = row(TechnologyClass::SdcPlusPir);
        assert_eq!(r.measured, r.paper, "{:?}", r.scores);
    }

    #[test]
    fn at_least_twenty_of_twenty_four_cells_match_the_paper() {
        // The four deviating cells are the respondent grades of the
        // non-crypto PPDM rows, where the measured protection *exceeds*
        // the paper's tentative "medium" — discussed in EXPERIMENTS.md.
        let mut matches = 0usize;
        let mut deviations = Vec::new();
        for r in table() {
            for dim in 0..3 {
                if r.measured[dim] == r.paper[dim] {
                    matches += 1;
                } else {
                    deviations.push((r.technology, dim));
                    // Deviations must always be in the paper's favour
                    // (measured protection stronger than claimed).
                    assert!(
                        r.measured[dim] > r.paper[dim],
                        "{}: dim {dim} measured {} below paper {}",
                        r.technology,
                        r.measured[dim],
                        r.paper[dim]
                    );
                    // ... and confined to the respondent dimension of
                    // non-crypto PPDM rows.
                    assert_eq!(dim, 0, "{}: unexpected deviation", r.technology);
                }
            }
        }
        assert!(
            matches >= 20,
            "only {matches}/24 cells match: {deviations:?}"
        );
    }

    #[test]
    fn pir_alone_protects_no_data() {
        let r = row(TechnologyClass::Pir);
        assert!(r.scores.respondent < 0.05, "{}", r.scores.respondent);
        assert!(r.scores.owner < 0.05, "{}", r.scores.owner);
    }

    #[test]
    fn generic_ppdm_plus_pir_beats_use_specific_on_user_privacy() {
        // §5: "generic non-crypto PPDM is better for combination with PIR
        // in view of attaining high user privacy".
        let generic = row(TechnologyClass::GenericPpdmPlusPir).scores.user;
        let specific = row(TechnologyClass::UseSpecificPpdmPlusPir).scores.user;
        assert!(
            generic > specific + 0.1,
            "generic {generic} vs specific {specific}"
        );
    }
}
