//! The eight technology classes of the paper's Table 2.

use crate::dimension::Grade;
use std::fmt;

/// A row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechnologyClass {
    /// Statistical disclosure control by data masking [17, 26].
    Sdc,
    /// Use-specific non-cryptographic PPDM (e.g. Agrawal–Srikant noise for
    /// decision trees [5], rule hiding [25]).
    UseSpecificNonCryptoPpdm,
    /// Generic non-cryptographic PPDM (e.g. k-anonymization by
    /// microaggregation/condensation [1, 2, 12]).
    GenericNonCryptoPpdm,
    /// Cryptographic PPDM: secure multiparty computation [18, 19].
    CryptoPpdm,
    /// Private information retrieval alone [8].
    Pir,
    /// SDC masking with PIR access.
    SdcPlusPir,
    /// Use-specific non-crypto PPDM with PIR access.
    UseSpecificPpdmPlusPir,
    /// Generic non-crypto PPDM with PIR access.
    GenericPpdmPlusPir,
}

impl TechnologyClass {
    /// All eight classes, in the paper's Table 2 row order.
    pub const ALL: [TechnologyClass; 8] = [
        TechnologyClass::Sdc,
        TechnologyClass::UseSpecificNonCryptoPpdm,
        TechnologyClass::GenericNonCryptoPpdm,
        TechnologyClass::CryptoPpdm,
        TechnologyClass::Pir,
        TechnologyClass::SdcPlusPir,
        TechnologyClass::UseSpecificPpdmPlusPir,
        TechnologyClass::GenericPpdmPlusPir,
    ];

    /// The paper's name of the row.
    pub fn name(&self) -> &'static str {
        match self {
            TechnologyClass::Sdc => "SDC",
            TechnologyClass::UseSpecificNonCryptoPpdm => "Use-specific non-crypto PPDM",
            TechnologyClass::GenericNonCryptoPpdm => "Generic non-crypto PPDM",
            TechnologyClass::CryptoPpdm => "Crypto PPDM",
            TechnologyClass::Pir => "PIR",
            TechnologyClass::SdcPlusPir => "SDC + PIR",
            TechnologyClass::UseSpecificPpdmPlusPir => "Use-specific non-crypto PPDM + PIR",
            TechnologyClass::GenericPpdmPlusPir => "Generic non-crypto PPDM + PIR",
        }
    }

    /// The paper's Table 2 grades: (respondent, owner, user).
    pub fn paper_grades(&self) -> [Grade; 3] {
        use Grade::*;
        match self {
            TechnologyClass::Sdc => [MediumHigh, Medium, None],
            TechnologyClass::UseSpecificNonCryptoPpdm => [Medium, MediumHigh, None],
            TechnologyClass::GenericNonCryptoPpdm => [Medium, MediumHigh, None],
            TechnologyClass::CryptoPpdm => [High, High, None],
            TechnologyClass::Pir => [None, None, High],
            TechnologyClass::SdcPlusPir => [MediumHigh, Medium, High],
            TechnologyClass::UseSpecificPpdmPlusPir => [Medium, MediumHigh, Medium],
            TechnologyClass::GenericPpdmPlusPir => [Medium, MediumHigh, High],
        }
    }

    /// Whether the class includes a PIR access channel.
    pub fn has_pir(&self) -> bool {
        matches!(
            self,
            TechnologyClass::Pir
                | TechnologyClass::SdcPlusPir
                | TechnologyClass::UseSpecificPpdmPlusPir
                | TechnologyClass::GenericPpdmPlusPir
        )
    }
}

impl fmt::Display for TechnologyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_rows_like_table_2() {
        assert_eq!(TechnologyClass::ALL.len(), 8);
        let names: Vec<&str> = TechnologyClass::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names[0], "SDC");
        assert_eq!(names[4], "PIR");
    }

    #[test]
    fn paper_grade_invariants() {
        use Grade::*;
        // Only PIR-bearing classes have non-none user privacy.
        for t in TechnologyClass::ALL {
            let [_, _, user] = t.paper_grades();
            assert_eq!(user != None, t.has_pir(), "{t}");
        }
        // Crypto PPDM has the best owner grade.
        let crypto_owner = TechnologyClass::CryptoPpdm.paper_grades()[1];
        for t in TechnologyClass::ALL {
            assert!(t.paper_grades()[1] <= crypto_owner, "{t}");
        }
        // PIR alone protects nobody's data.
        assert_eq!(TechnologyClass::Pir.paper_grades()[0], None);
        assert_eq!(TechnologyClass::Pir.paper_grades()[1], None);
    }

    #[test]
    fn pir_composition_preserves_data_grades() {
        // Adding PIR must not change the respondent/owner grades in the
        // paper's table.
        let pairs = [
            (TechnologyClass::Sdc, TechnologyClass::SdcPlusPir),
            (
                TechnologyClass::UseSpecificNonCryptoPpdm,
                TechnologyClass::UseSpecificPpdmPlusPir,
            ),
            (
                TechnologyClass::GenericNonCryptoPpdm,
                TechnologyClass::GenericPpdmPlusPir,
            ),
        ];
        for (base, combo) in pairs {
            assert_eq!(base.paper_grades()[0], combo.paper_grades()[0]);
            assert_eq!(base.paper_grades()[1], combo.paper_grades()[1]);
        }
    }
}
