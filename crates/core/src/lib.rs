//! # tdf-core
//!
//! The paper's contribution, executable: the **three-dimensional
//! conceptual framework for database privacy** (Domingo-Ferrer,
//! SDM@VLDB 2007).
//!
//! Database privacy splits into three independent, compatible dimensions —
//! whose privacy is protected:
//!
//! * [`PrivacyDimension::Respondent`] — the people the records are about;
//! * [`PrivacyDimension::Owner`] — the entity holding the data;
//! * [`PrivacyDimension::User`] — whoever queries the data.
//!
//! Where the paper assigns each technology class a *qualitative* grade per
//! dimension (its Table 2), this crate measures: [`metrics`] defines one
//! quantitative score per dimension, [`scoring`] runs all eight technology
//! classes of Table 2 on a common synthetic scenario and grades them, and
//! [`experiments`] reproduces every worked independence example of
//! §2–§4 plus the §6 composition. [`pipeline`] is that composition — the
//! first "technology" satisfying all three dimensions at once:
//! k-anonymization via microaggregation + private information retrieval.

pub mod dimension;
pub mod experiments;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod scoring;
pub mod technology;

pub use dimension::{Grade, PrivacyDimension};
pub use metrics::{owner_score, respondent_score, ScoreCard};
pub use scoring::{score_technology, scoring_table, Scenario};
pub use technology::TechnologyClass;
