//! Rendering helpers for the regenerated tables.

use crate::scoring::ScoredRow;

/// Renders the regenerated Table 2 as aligned ASCII, measured grades first
/// and the paper's grades in brackets.
pub fn render_table2(rows: &[ScoredRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<38} {:>24} {:>24} {:>24}\n",
        "Technology class", "Respondent", "Owner", "User"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<38} {:>24} {:>24} {:>24}\n",
            r.technology.name(),
            format!("{} [{}]", r.measured[0], r.paper[0]),
            format!("{} [{}]", r.measured[1], r.paper[1]),
            format!("{} [{}]", r.measured[2], r.paper[2]),
        ));
    }
    s.push_str("\nmeasured grade [paper grade]\n");
    s
}

/// Renders the measured raw scores, for EXPERIMENTS.md.
pub fn render_scores(rows: &[ScoredRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<38} {:>11} {:>11} {:>11}\n",
        "Technology class", "respondent", "owner", "user"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<38} {:>11.3} {:>11.3} {:>11.3}\n",
            r.technology.name(),
            r.scores.respondent,
            r.scores.owner,
            r.scores.user
        ));
    }
    s
}

/// Renders the scoring table as a JSON array (hand-rolled writer: the
/// sanctioned dependency set has no JSON serializer, and the format here
/// is flat enough not to need one).
pub fn render_json(rows: &[ScoredRow]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"technology\": \"{}\", \"scores\": {{\"respondent\": {:.6}, \"owner\": {:.6}, \"user\": {:.6}}}, \"measured\": [\"{}\", \"{}\", \"{}\"], \"paper\": [\"{}\", \"{}\", \"{}\"]}}{}",
            esc(r.technology.name()),
            r.scores.respondent,
            r.scores.owner,
            r.scores.user,
            r.measured[0],
            r.measured[1],
            r.measured[2],
            r.paper[0],
            r.paper[1],
            r.paper[2],
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{scoring_table, Scenario};

    #[test]
    fn json_rendering_is_well_formed() {
        let rows = scoring_table(&Scenario {
            n: 100,
            pir_trials: 100,
            ..Default::default()
        })
        .unwrap();
        let json = render_json(&rows);
        // Structural sanity without a JSON parser: balanced brackets and
        // one object per row.
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"technology\"").count(), 8);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"respondent\""));
        assert!(json.contains("medium-high"));
    }

    #[test]
    fn rendering_contains_all_rows_and_grades() {
        let rows = scoring_table(&Scenario {
            n: 120,
            pir_trials: 200,
            ..Default::default()
        })
        .unwrap();
        let t2 = render_table2(&rows);
        assert!(t2.contains("SDC + PIR"));
        assert!(t2.contains("Crypto PPDM"));
        assert!(t2.contains('['));
        let sc = render_scores(&rows);
        assert_eq!(sc.lines().count(), 9);
    }
}
