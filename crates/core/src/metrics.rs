//! Quantitative scores for the three dimensions.
//!
//! These replace the paper's §5 qualitative assessment ("based on the
//! usual claims of each technology class") with measurements on concrete
//! implementations — see DESIGN.md §4 for the definitions and EXPERIMENTS.md
//! for the resulting matrix.

use tdf_microdata::{Dataset, Result};
use tdf_sdc::risk::{interval_disclosure_rate, record_linkage_rate};

/// The three scores of one technology in one scenario, each in `[0, 1]`
/// (1 = perfect protection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreCard {
    /// Respondent-privacy score: `1 − record linkage success`.
    pub respondent: f64,
    /// Owner-privacy score: `1 −` (normalized excess reconstruction).
    pub owner: f64,
    /// User-privacy score: `1 − leaked query bits / total query bits`.
    pub user: f64,
}

/// Respondent-privacy score of a row-aligned release: one minus the
/// expected linkage rate of an intruder who knows the quasi-identifiers.
pub fn respondent_score(original: &Dataset, release: &Dataset) -> Result<f64> {
    let qi = original.schema().quasi_identifier_indices();
    Ok(1.0 - record_linkage_rate(original, release, &qi)?)
}

/// Fraction of cells an adversary gets within `tolerance · sd` by always
/// guessing the column mean — the zero-information baseline the owner
/// score normalizes against.
pub fn baseline_disclosure(original: &Dataset, cols: &[usize], tolerance: f64) -> Result<f64> {
    let mut guess = original.clone();
    for &c in cols {
        let xs = original.numeric_column(c);
        let mean = tdf_microdata::stats::mean(&xs).unwrap_or(0.0);
        for i in 0..guess.num_rows() {
            guess.set_value(i, c, tdf_microdata::Value::Float(mean))?;
        }
    }
    interval_disclosure_rate(original, &guess, cols, tolerance)
}

/// Owner-privacy score of a row-aligned release over the numeric columns
/// `cols`: the release's cell-level disclosure, in excess of the
/// guess-the-mean baseline, normalized to `[0, 1]` and inverted.
///
/// * Publishing the original ⇒ disclosure 1 ⇒ score 0.
/// * Revealing nothing beyond aggregates ⇒ disclosure ≈ baseline ⇒ score ≈ 1.
pub fn owner_score(
    original: &Dataset,
    release: &Dataset,
    cols: &[usize],
    tolerance: f64,
) -> Result<f64> {
    let disclosure = interval_disclosure_rate(original, release, cols, tolerance)?;
    let baseline = baseline_disclosure(original, cols, tolerance)?;
    let excess = ((disclosure - baseline) / (1.0 - baseline)).clamp(0.0, 1.0);
    Ok(1.0 - excess)
}

/// User-privacy score from an information accounting of the access channel:
/// `leaked_bits` of the `total_bits` that describe the query.
///
/// * A plaintext query log leaks everything: score 0.
/// * Information-theoretic PIR leaks nothing: score 1.
/// * A use-specific PPDM release leaks the query *class* while PIR hides
///   the rest: score strictly between.
pub fn user_score_from_bits(leaked_bits: f64, total_bits: f64) -> f64 {
    assert!(
        total_bits > 0.0 && leaked_bits >= 0.0,
        "bit counts must be sane"
    );
    (1.0 - leaked_bits / total_bits).clamp(0.0, 1.0)
}

/// Empirical check that a PIR server's view is independent of the index:
/// estimates, over `views` (one selection mask per trial, with the
/// retrieved index), the mutual information in bits between the index and
/// the mask bit at that index. ≈ 0 for a correct PIR scheme.
pub fn empirical_mask_leakage_bits(views: &[(usize, Vec<bool>)]) -> f64 {
    if views.is_empty() {
        return 0.0;
    }
    // Joint distribution of (bit at the queried position).
    let p_one = views.iter().filter(|(i, m)| m[*i]).count() as f64 / views.len() as f64;
    // Marginal frequency of ones across all positions.
    let (mut ones, mut total) = (0usize, 0usize);
    for (_, m) in views {
        ones += m.iter().filter(|&&b| b).count();
        total += m.len();
    }
    let q_one = ones as f64 / total as f64;
    // KL divergence of the conditional against the marginal — a one-bit
    // statistic that is exactly the leakage an attacker could exploit by
    // looking where the mask "points".
    let kl = |p: f64, q: f64| -> f64 {
        let mut acc = 0.0;
        for (pi, qi) in [(p, q), (1.0 - p, 1.0 - q)] {
            if pi > 0.0 && qi > 0.0 {
                acc += pi * (pi / qi).log2();
            }
        }
        acc
    };
    kl(p_one, q_one).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::rng::seeded;
    use tdf_microdata::synth::{patients, PatientConfig};
    use tdf_sdc::microaggregation::mdav_microaggregate;

    fn data() -> Dataset {
        patients(&PatientConfig {
            n: 300,
            ..Default::default()
        })
    }

    #[test]
    fn identity_release_scores_zero_on_both_data_dimensions() {
        let d = data();
        assert!(respondent_score(&d, &d).unwrap() < 0.05);
        assert!(owner_score(&d, &d, &[0, 1, 2], 0.1).unwrap() < 0.05);
    }

    #[test]
    fn k_anonymized_release_scores_high_respondent() {
        let d = data();
        let masked = mdav_microaggregate(&d, &[0, 1], 10).unwrap().data;
        let s = respondent_score(&d, &masked).unwrap();
        assert!(s > 0.85, "score {s}");
    }

    #[test]
    fn mean_only_release_scores_full_owner_privacy() {
        let d = data();
        let mut release = d.clone();
        for c in [0usize, 1, 2] {
            let mean = tdf_microdata::stats::mean(&d.numeric_column(c)).unwrap();
            for i in 0..release.num_rows() {
                release
                    .set_value(i, c, tdf_microdata::Value::Float(mean))
                    .unwrap();
            }
        }
        let s = owner_score(&d, &release, &[0, 1, 2], 0.1).unwrap();
        assert!(s > 0.99, "score {s}");
    }

    #[test]
    fn baseline_disclosure_is_small_but_positive() {
        let d = data();
        let b = baseline_disclosure(&d, &[0, 1, 2], 0.1).unwrap();
        assert!(b > 0.0 && b < 0.3, "baseline {b}");
    }

    #[test]
    fn user_score_bit_accounting() {
        assert_eq!(user_score_from_bits(0.0, 10.0), 1.0);
        assert_eq!(user_score_from_bits(10.0, 10.0), 0.0);
        assert!((user_score_from_bits(2.0, 10.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn pir_masks_have_no_empirical_leakage() {
        use rngkit::Rng;
        let mut r = seeded(5);
        let n = 32;
        let views: Vec<(usize, Vec<bool>)> = (0..4000)
            .map(|t| {
                let idx = t % n;
                // A uniformly random mask — what one PIR server sees.
                let mask: Vec<bool> = (0..n).map(|_| r.gen()).collect();
                (idx, mask)
            })
            .collect();
        let leak = empirical_mask_leakage_bits(&views);
        assert!(leak < 0.01, "leakage {leak}");
    }

    #[test]
    fn plaintext_index_views_leak() {
        // A "mask" that is exactly the unit vector of the index: the server
        // sees the query in the clear.
        let n = 32;
        let views: Vec<(usize, Vec<bool>)> = (0..2000)
            .map(|t| {
                let idx = t % n;
                let mut mask = vec![false; n];
                mask[idx] = true;
                (idx, mask)
            })
            .collect();
        let leak = empirical_mask_leakage_bits(&views);
        assert!(leak > 3.0, "unit-vector views must leak heavily: {leak}");
    }
}
