//! The §6 composition: *privacy for everyone*.
//!
//! "One possible way to fulfill the three privacy dimensions is for a
//! database which is not originally k-anonymous to be k-anonymized (via
//! microaggregation-condensation, recoding, suppression, etc.) and to be
//! added a PIR protocol to protect user queries." — §6.
//!
//! [`ThreeDimensionalDb`] is that deployment: the owner k-anonymizes the
//! microdata with MDAV microaggregation, loads the masked records into
//! replicated PIR servers, and users evaluate statistical queries *locally*
//! over privately retrieved records — the servers never see a predicate.
//! (This realizes the §3 assumption "assuming PIR protocols existed for
//! those query types": any per-record query type reduces to `n` record
//! retrievals, which is what we account.)

use rngkit::Rng;
use std::sync::Arc;
use std::sync::RwLock;
use tdf_microdata::{AttributeKind, Dataset, Error, Result, Value};
use tdf_pir::cost::CostReport;
use tdf_pir::store::Database;
use tdf_querydb::ast::{Aggregate, Query};
use tdf_sdc::microaggregation::mdav_microaggregate;

/// Serializes a dataset's rows into fixed-size PIR records: numeric cells
/// as big-endian `f64` bits, booleans as one byte, missing as NaN/0xFF.
/// Categorical strings are not supported in the PIR store (mask before
/// loading, or recode categories to integers).
pub fn encode_records(data: &Dataset) -> Result<Vec<Vec<u8>>> {
    // Per-column readers hoisted once; records are then serialized straight
    // from the typed column storage without materializing any `Value`.
    enum Reader<'a> {
        Bool(&'a tdf_microdata::BoolCol),
        Num(tdf_microdata::F64Cells<'a>),
        Cat(usize),
    }
    let readers: Vec<Reader> = (0..data.num_columns())
        .map(|c| match data.schema().attribute(c).kind {
            AttributeKind::Boolean => match data.col(c) {
                tdf_microdata::ColumnView::Bool(b) => Reader::Bool(b),
                _ => unreachable!("Boolean attributes use packed bool storage"),
            },
            AttributeKind::Continuous | AttributeKind::Integer => {
                Reader::Num(data.f64_cells(c).expect("numeric column"))
            }
            AttributeKind::Nominal | AttributeKind::Ordinal => Reader::Cat(c),
        })
        .collect();
    let mut out = Vec::with_capacity(data.num_rows());
    for i in 0..data.num_rows() {
        let mut rec = Vec::new();
        for reader in &readers {
            match reader {
                Reader::Bool(b) => rec.push(b.opt(i).map_or(0xFF, u8::from)),
                Reader::Num(cells) => {
                    let x = cells.get(i).unwrap_or(f64::NAN);
                    rec.extend_from_slice(&x.to_be_bytes());
                }
                Reader::Cat(c) => {
                    return Err(Error::InvalidParameter(format!(
                        "categorical attribute `{}` cannot be PIR-encoded",
                        data.schema().attribute(*c).name
                    )))
                }
            }
        }
        out.push(rec);
    }
    Ok(out)
}

/// Decodes one PIR record back into a row of `schema`-shaped values.
pub fn decode_record(data_schema: &tdf_microdata::Schema, rec: &[u8]) -> Result<Vec<Value>> {
    let mut row = Vec::with_capacity(data_schema.len());
    let mut pos = 0usize;
    for attr in data_schema.attributes() {
        match attr.kind {
            AttributeKind::Boolean => {
                let b = *rec.get(pos).ok_or(Error::EmptyDataset)?;
                row.push(match b {
                    0 => Value::Bool(false),
                    1 => Value::Bool(true),
                    _ => Value::Missing,
                });
                pos += 1;
            }
            AttributeKind::Continuous | AttributeKind::Integer => {
                let bytes: [u8; 8] = rec
                    .get(pos..pos + 8)
                    .ok_or(Error::EmptyDataset)?
                    .try_into()
                    .expect("slice of length 8");
                let x = f64::from_be_bytes(bytes);
                row.push(if x.is_nan() {
                    Value::Missing
                } else {
                    Value::Float(x)
                });
                pos += 8;
            }
            _ => {
                return Err(Error::InvalidParameter(format!(
                    "categorical attribute `{}` cannot be PIR-decoded",
                    attr.name
                )))
            }
        }
    }
    Ok(row)
}

/// How much of each dimension a deployment enables (for the F1 sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentConfig {
    /// k-anonymize the data before loading (respondent dimension); `None`
    /// loads raw data.
    pub k: Option<usize>,
    /// Serve via PIR (user dimension); `false` = plaintext indexed access.
    pub pir: bool,
}

/// The §6 deployment: (optionally masked) records behind (optional) PIR,
/// shared across replicated servers.
pub struct ThreeDimensionalDb {
    original: Dataset,
    released: Dataset,
    /// Replicated server state — `Arc<RwLock>` because the two PIR servers
    /// of the linear scheme are logically independent readers.
    store: Arc<RwLock<Database>>,
    config: DeploymentConfig,
    /// Cumulative communication over all retrievals.
    cost: CostReport,
    /// Plaintext-access log (only populated when `pir == false`): the
    /// owner's record of which rows each user touched.
    plain_access_log: Vec<usize>,
}

impl ThreeDimensionalDb {
    /// Builds the deployment from original microdata.
    pub fn deploy(original: Dataset, config: DeploymentConfig) -> Result<Self> {
        let released = match config.k {
            Some(k) => {
                let qi = original.schema().quasi_identifier_indices();
                mdav_microaggregate(&original, &qi, k)?.data
            }
            None => original.clone(),
        };
        let store = Arc::new(RwLock::new(Database::new(encode_records(&released)?)));
        Ok(Self {
            original,
            released,
            store,
            config,
            cost: CostReport::default(),
            plain_access_log: Vec::new(),
        })
    }

    /// The masked release loaded into the servers (what an intruder who
    /// compromises a server sees).
    pub fn released(&self) -> &Dataset {
        &self.released
    }

    /// The original microdata (the owner's secret).
    pub fn original(&self) -> &Dataset {
        &self.original
    }

    /// Total communication spent so far.
    pub fn cost(&self) -> CostReport {
        self.cost
    }

    /// Rows the owner observed being accessed (empty under PIR).
    pub fn plain_access_log(&self) -> &[usize] {
        &self.plain_access_log
    }

    /// Privately fetches record `i` (two-server linear PIR), or reads it
    /// in the clear when the deployment has no PIR layer.
    pub fn fetch<R: Rng + ?Sized>(&mut self, rng: &mut R, index: usize) -> Result<Vec<Value>> {
        let store = self.store.read().expect("store lock");
        let rec = if self.config.pir {
            let (rec, _views, cost) = tdf_pir::linear::retrieve(rng, &store, 2, index);
            self.cost += cost;
            rec
        } else {
            self.plain_access_log.push(index);
            self.cost += CostReport {
                uplink_bits: (usize::BITS - store.len().leading_zeros()) as u64,
                downlink_bits: (store.record_size() * 8) as u64,
                server_ops: 1,
                words_scanned: 0,
                servers: 1,
            };
            store.record(index).to_vec()
        };
        drop(store);
        decode_record(self.released.schema(), &rec)
    }

    /// Evaluates a statistical query entirely client-side over privately
    /// fetched records. Under PIR the servers learn only that *some* full
    /// scan happened — never the predicate or the aggregate.
    pub fn private_query<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        query: &Query,
    ) -> Result<Option<f64>> {
        let n = self.store.read().expect("store lock").len();
        let mut values = Vec::new();
        let mut count = 0usize;
        for i in 0..n {
            let row = self.fetch(rng, i)?;
            if query.predicate.matches(&self.released, &row)? {
                count += 1;
                if let Some(attr) = query.aggregate.attribute() {
                    let col = self.released.schema().index_of(attr)?;
                    if let Some(x) = row[col].as_f64() {
                        values.push(x);
                    }
                }
            }
        }
        Ok(match &query.aggregate {
            Aggregate::Count => Some(count as f64),
            Aggregate::Sum(_) => Some(values.iter().sum()),
            Aggregate::Avg(_) => {
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            }
            Aggregate::Min(_) => values.into_iter().min_by(f64::total_cmp),
            Aggregate::Max(_) => values.into_iter().max_by(f64::total_cmp),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_anonymity::is_k_anonymous;
    use tdf_microdata::patients;
    use tdf_microdata::rng::seeded;
    use tdf_querydb::parser::parse;

    #[test]
    fn encode_decode_round_trip() {
        let d = patients::dataset2();
        let recs = encode_records(&d).unwrap();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs[0].len(), 8 * 3 + 1);
        for (i, rec) in recs.iter().enumerate() {
            let row = decode_record(d.schema(), rec).unwrap();
            assert_eq!(row, d.row(i), "row {i}");
        }
    }

    #[test]
    fn missing_cells_survive_encoding() {
        let mut d = patients::dataset1();
        d.set_value(0, 0, Value::Missing).unwrap();
        d.set_value(0, 3, Value::Missing).unwrap();
        let recs = encode_records(&d).unwrap();
        let row = decode_record(d.schema(), &recs[0]).unwrap();
        assert!(row[0].is_missing());
        assert!(row[3].is_missing());
    }

    #[test]
    fn categorical_data_is_rejected() {
        let d = tdf_microdata::synth::census(5, 1);
        assert!(encode_records(&d).is_err());
    }

    #[test]
    fn deployment_masks_and_serves() {
        let d = patients::dataset2();
        let mut db = ThreeDimensionalDb::deploy(
            d.clone(),
            DeploymentConfig {
                k: Some(3),
                pir: true,
            },
        )
        .unwrap();
        assert!(is_k_anonymous(db.released(), 3));
        let mut r = seeded(1);
        let row = db.fetch(&mut r, 0).unwrap();
        assert_eq!(row.len(), 4);
        // Confidential attribute untouched by QI microaggregation.
        assert_eq!(row[2], d.value(0, 2));
    }

    #[test]
    fn private_query_matches_plain_evaluation_on_release() {
        let d = patients::dataset1();
        let mut db =
            ThreeDimensionalDb::deploy(d.clone(), DeploymentConfig { k: None, pir: true }).unwrap();
        let mut r = seeded(2);
        let q = parse("SELECT AVG(blood_pressure) FROM t WHERE height = 170").unwrap();
        let got = db.private_query(&mut r, &q).unwrap().unwrap();
        assert!((got - 132.0).abs() < 1e-9, "{got}");
        // Servers saw no plaintext access.
        assert!(db.plain_access_log().is_empty());
        assert!(db.cost().total_bits() > 0);
    }

    #[test]
    fn the_papers_isolation_attack_dies_on_the_masked_deployment() {
        // E6 in miniature: Dataset 2 masked to 3-anonymity + PIR. The two
        // §3 queries still *run* (user privacy!), but no longer isolate.
        let d = patients::dataset2();
        let mut db = ThreeDimensionalDb::deploy(
            d,
            DeploymentConfig {
                k: Some(3),
                pir: true,
            },
        )
        .unwrap();
        let mut r = seeded(3);
        let count = db
            .private_query(
                &mut r,
                &parse("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105").unwrap(),
            )
            .unwrap()
            .unwrap();
        assert_ne!(count, 1.0, "masked release must not isolate one record");
    }

    #[test]
    fn plaintext_deployment_logs_accesses() {
        let d = patients::dataset1();
        let mut db = ThreeDimensionalDb::deploy(
            d,
            DeploymentConfig {
                k: Some(3),
                pir: false,
            },
        )
        .unwrap();
        let mut r = seeded(4);
        db.fetch(&mut r, 7).unwrap();
        db.fetch(&mut r, 2).unwrap();
        assert_eq!(db.plain_access_log(), &[7, 2]);
    }

    #[test]
    fn pir_costs_more_than_plaintext() {
        let d = patients::dataset1();
        let mut pir_db =
            ThreeDimensionalDb::deploy(d.clone(), DeploymentConfig { k: None, pir: true }).unwrap();
        let mut plain_db = ThreeDimensionalDb::deploy(
            d,
            DeploymentConfig {
                k: None,
                pir: false,
            },
        )
        .unwrap();
        let mut r = seeded(5);
        pir_db.fetch(&mut r, 0).unwrap();
        plain_db.fetch(&mut r, 0).unwrap();
        assert!(pir_db.cost().total_bits() > plain_db.cost().total_bits());
    }
}
