//! Fault injection against the segment spill/reload path.
//!
//! The contract under test: a crashed spill (`segment.spill`) may lose
//! the *disk* copy it was writing, never the sealed data — the segment
//! stays resident and readable; a corrupted reload (`segment.reload`)
//! is caught by the codec checksum and either healed within the bounded
//! retry budget or surfaced as a typed error — never silently wrong
//! bytes.
//!
//! The fault plan is process-global, so every test that installs one
//! serialises on [`PLAN`]; these tests live in their own binary for the
//! same reason.

use std::sync::Mutex;
use tdf_microdata::synth::{patients, PatientConfig};
use tdf_microdata::{Dataset, SegmentedDataset};

static PLAN: Mutex<()> = Mutex::new(());

fn with_fault_plan<T>(text: &str, f: impl FnOnce() -> T) -> T {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    faultkit::set_plan(Some(faultkit::FaultPlan::parse(text).unwrap()));
    let out = f();
    faultkit::set_plan(None);
    out
}

fn sample(n: usize) -> Dataset {
    patients(&PatientConfig {
        n,
        seed: 0xFA17,
        ..Default::default()
    })
}

#[test]
fn crashed_spill_never_corrupts_a_sealed_segment() {
    with_fault_plan("segment.spill=1000000", || {
        let d = sample(150);
        let seg = SegmentedDataset::from_dataset(&d, 30);
        // Every spill write crashes mid-file: eviction must fail closed,
        // leaving all five segments resident and the data untouched.
        assert_eq!(seg.spill_all(), 0, "crashed spills must not evict");
        assert!(seg.resident_bytes() > 0);
        assert_eq!(seg.materialize().unwrap(), d);
        // A budget below one segment cannot be enforced while spills
        // crash — resident data beats the budget, silently losing rows
        // would be the real failure.
        seg.set_cache_budget(0);
        assert_eq!(seg.materialize().unwrap(), d);
    });
    // Once writes heal, the same dataset spills and round-trips exactly.
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let d = sample(150);
    let seg = SegmentedDataset::from_dataset(&d, 30);
    assert_eq!(seg.spill_all(), 5);
    assert_eq!(seg.materialize().unwrap(), d);
}

#[test]
fn reload_corruption_heals_within_the_retry_budget() {
    let d = sample(120);
    let seg = SegmentedDataset::from_dataset(&d, 40);
    {
        let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(seg.spill_all(), 3);
    }
    // Two corrupted reads, then a clean one: the checksum rejects each
    // corrupted image and the bounded retry delivers the exact bytes.
    with_fault_plan("segment.reload=2", || {
        let part = seg.pin(0).unwrap();
        let rows: Vec<usize> = (0..40).collect();
        assert_eq!(*part, d.take(&rows));
    });
}

#[test]
fn persistent_reload_corruption_is_a_typed_error_not_wrong_data() {
    let d = sample(120);
    let seg = SegmentedDataset::from_dataset(&d, 40);
    {
        let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(seg.spill_all(), 3);
    }
    with_fault_plan("segment.reload=1000000", || {
        // Every read attempt is corrupted: after the bounded retries the
        // pin fails loudly. Under no plan can it return mangled rows.
        assert!(seg.pin(1).is_err());
    });
    // The spill file itself was never touched — the next pin succeeds.
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let part = seg.pin(1).unwrap();
    let rows: Vec<usize> = (40..80).collect();
    assert_eq!(*part, d.take(&rows));
}

#[test]
fn crashed_compaction_leaves_old_segments_resident_and_queryable() {
    let d = sample(160);
    with_fault_plan("segment.compact=1000000", || {
        let mut seg = SegmentedDataset::from_dataset(&d, 20);
        // The crash fires after the merged images are built but before
        // the cutover: the plan must abort with the eight old segments
        // untouched — same ids, same metas, same rows.
        let ids = seg.segment_ids();
        assert!(seg.compact(80).is_err(), "injected crash must surface");
        assert_eq!(seg.num_segments(), 8);
        assert_eq!(seg.segment_ids(), ids, "no id was retired");
        assert_eq!(seg.materialize().unwrap(), d);
    });
    // Once the fault heals, the identical call merges cleanly.
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let mut seg = SegmentedDataset::from_dataset(&d, 20);
    let report = seg.compact(80).unwrap();
    assert!(report.merged_any());
    assert_eq!(seg.num_segments(), 2);
    assert_eq!(seg.materialize().unwrap(), d);
}

#[test]
fn crashed_eviction_round_never_drops_a_segment() {
    let d = sample(150);
    with_fault_plan("segment.evict=1000000", || {
        let seg = SegmentedDataset::from_dataset(&d, 30);
        // Every eviction round aborts at the top: the budget stays
        // unenforced (fail open) but all five segments remain resident
        // and every pin answers exactly.
        seg.set_cache_budget(1);
        assert!(seg.resident_bytes() > 1, "abort must fail open");
        for idx in 0..seg.num_segments() {
            let meta = seg.segment_meta(idx);
            let rows: Vec<usize> = (meta.start_row..meta.start_row + meta.rows).collect();
            assert_eq!(*seg.pin(idx).unwrap(), d.take(&rows), "segment {idx}");
        }
        assert_eq!(seg.materialize().unwrap(), d);
    });
    // Healed: the same budget now spills everything but the pinned one.
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let seg = SegmentedDataset::from_dataset(&d, 30);
    let resident_before = seg.resident_bytes();
    seg.set_cache_budget(1);
    assert!(seg.resident_bytes() < resident_before);
    assert_eq!(seg.materialize().unwrap(), d);
}
