//! Adversarial-input tests for the TSV reader: malformed, truncated and
//! randomly mutated documents must come back as typed, line-numbered
//! [`Error::Tsv`] values — never a panic, never a silently wrong dataset.

use tdf_microdata::ser::{dataset_from_tsv, dataset_to_tsv};
use tdf_microdata::synth::{census, patients, PatientConfig};
use tdf_microdata::Error;

fn tsv_line(text: &str) -> usize {
    match dataset_from_tsv(text).unwrap_err() {
        Error::Tsv { line, .. } => line,
        other => panic!("expected Error::Tsv, got {other:?}"),
    }
}

#[test]
fn truncated_documents_name_the_missing_line() {
    assert_eq!(tsv_line(""), 1);
    assert_eq!(tsv_line("#schema\theight:continuous:quasi_identifier"), 2);
    // A complete prefix with zero data rows is fine, not an error.
    let empty = dataset_from_tsv("#schema\theight:continuous:quasi_identifier\nheight\n").unwrap();
    assert_eq!(empty.num_rows(), 0);
}

#[test]
fn malformed_cells_name_line_and_column() {
    let text = "#schema\th:continuous:quasi_identifier\tok:boolean:confidential\n\
                h\tok\n\
                170.0\tY\n\
                not_a_float\tN\n";
    let err = dataset_from_tsv(text).unwrap_err();
    assert_eq!(
        err,
        Error::Tsv {
            line: 4,
            message: "column `h`: bad float `not_a_float`".into()
        }
    );
    let bad_bool = "#schema\tok:boolean:confidential\nok\nY\nN\nmaybe\n";
    assert_eq!(tsv_line(bad_bool), 5);
}

#[test]
fn arity_and_escape_errors_are_line_numbered() {
    let short_row = "#schema\ta:integer:confidential\tb:integer:confidential\na\tb\n1\t2\n3\n";
    let err = dataset_from_tsv(short_row).unwrap_err();
    assert_eq!(
        err,
        Error::Tsv {
            line: 4,
            message: "expected 2 cells, found 1".into()
        }
    );
    // `\x` is not a TSV escape; `\` at end of cell is truncated.
    let bad_escape = "#schema\ts:nominal:confidential\ns\nfine\nbad\\x\n";
    assert_eq!(tsv_line(bad_escape), 4);
    let truncated_escape = "#schema\ts:nominal:confidential\ns\ndangling\\\n";
    assert_eq!(tsv_line(truncated_escape), 3);
}

#[test]
fn schema_line_errors_point_at_line_1() {
    assert_eq!(tsv_line("#schema\tnocolons\nx\n"), 1);
    assert_eq!(tsv_line("#schema\ta:alien:confidential\na\n"), 1);
    assert_eq!(tsv_line("#schema\ta:integer:sidekick\na\n"), 1);
}

#[test]
fn mutated_documents_never_panic_and_never_parse_wrong() {
    // Flip one byte at a time through a real document: every outcome is
    // either a clean parse (mutation hit something semantically inert,
    // e.g. a digit) or a typed Error::Tsv — the parser must not panic.
    let d = patients(&PatientConfig {
        n: 12,
        ..Default::default()
    });
    let reference = dataset_to_tsv(&d);
    let bytes = reference.as_bytes();
    let mut parsed = 0usize;
    let mut rejected = 0usize;
    for pos in 0..bytes.len() {
        for flip in [1u8, 0x20, 0x7f] {
            let mut mutated = bytes.to_vec();
            mutated[pos] ^= flip;
            let Ok(text) = String::from_utf8(mutated) else {
                continue; // the reader takes &str; invalid UTF-8 can't reach it
            };
            match dataset_from_tsv(&text) {
                Ok(_) => parsed += 1,
                Err(Error::Tsv { line, .. }) => {
                    assert!(line >= 1, "line numbers are 1-based");
                    rejected += 1;
                }
                Err(other) => panic!("non-TSV error from TSV input: {other:?}"),
            }
        }
    }
    assert!(rejected > 0, "some mutations must be rejected");
    assert!(parsed > 0, "some mutations are inert (digit flips)");
}

#[test]
fn truncated_suffixes_never_panic() {
    let reference = dataset_to_tsv(&census(10, 4));
    for cut in 0..reference.len() {
        if !reference.is_char_boundary(cut) {
            continue;
        }
        // Every prefix must parse or fail with a typed error; panics fail
        // the test.
        let _ = dataset_from_tsv(&reference[..cut]);
    }
}
