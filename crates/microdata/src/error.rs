//! Error type shared by all microdata operations.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by dataset construction, access and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An attribute name was looked up that the schema does not define.
    UnknownAttribute(String),
    /// A row had a different number of cells than the schema has attributes.
    ArityMismatch { expected: usize, got: usize },
    /// A value's type did not match the attribute's declared kind.
    TypeMismatch {
        attribute: String,
        expected: &'static str,
        got: &'static str,
    },
    /// Two datasets that must share a schema (e.g. original vs masked) do not.
    SchemaMismatch,
    /// An operation required a non-empty dataset.
    EmptyDataset,
    /// A numeric operation was requested on a non-numeric attribute.
    NotNumeric(String),
    /// CSV text could not be parsed.
    Csv { line: usize, message: String },
    /// TSV text could not be parsed. `line` is 1-based over the whole
    /// input (schema and header lines included).
    Tsv { line: usize, message: String },
    /// Serialised text (JSON) could not be parsed.
    Serial(String),
    /// A parameter was outside its valid domain.
    InvalidParameter(String),
    /// An evaluation exceeded its resource budget (e.g. a per-query
    /// deadline expressed as a row-scan allowance). The paper's tracker
    /// semantics require this to surface as an explicit refusal, never a
    /// silent partial answer.
    ResourceExhausted(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} attributes, row has {got}"
                )
            }
            Error::TypeMismatch {
                attribute,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch for `{attribute}`: expected {expected}, got {got}"
                )
            }
            Error::SchemaMismatch => write!(f, "datasets do not share a schema"),
            Error::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            Error::NotNumeric(name) => write!(f, "attribute `{name}` is not numeric"),
            Error::Csv { line, message } => write!(f, "CSV parse error at line {line}: {message}"),
            Error::Tsv { line, message } => write!(f, "TSV parse error at line {line}: {message}"),
            Error::Serial(message) => write!(f, "serialisation error: {message}"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::ResourceExhausted(msg) => write!(f, "resource budget exhausted: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::UnknownAttribute("age".into()), "age"),
            (
                Error::ArityMismatch {
                    expected: 4,
                    got: 3,
                },
                "4",
            ),
            (
                Error::TypeMismatch {
                    attribute: "h".into(),
                    expected: "float",
                    got: "str",
                },
                "float",
            ),
            (Error::SchemaMismatch, "schema"),
            (Error::EmptyDataset, "non-empty"),
            (Error::NotNumeric("aids".into()), "aids"),
            (
                Error::Csv {
                    line: 7,
                    message: "bad quote".into(),
                },
                "line 7",
            ),
            (
                Error::InvalidParameter("k must be >= 2".into()),
                "k must be >= 2",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }
}
