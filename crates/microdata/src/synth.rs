//! Synthetic population generators.
//!
//! The paper motivates its framework with healthcare and official-statistics
//! scenarios; the generators here produce workloads with the same shape:
//! a clinical *patient* population (continuous quasi-identifiers, sensitive
//! payload), a *census*-style population (mixed categorical/numeric), market
//! *transactions* for association-rule experiments, and a search-engine
//! *query log* for user-privacy experiments (the AOL anecdote of §1).

use crate::attribute::{AttributeDef, AttributeKind, AttributeRole};
use crate::dataset::Dataset;
use crate::rng;
use crate::schema::Schema;
use crate::value::Value;
use rngkit::seq::SliceRandom;
use rngkit::Rng;

/// Configuration for the synthetic patient population.
#[derive(Debug, Clone)]
pub struct PatientConfig {
    /// Number of records.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Correlation between height and weight.
    pub height_weight_rho: f64,
    /// Prevalence of the AIDS flag.
    pub aids_prevalence: f64,
}

impl Default for PatientConfig {
    fn default() -> Self {
        Self {
            n: 1000,
            seed: 0xD0_C7,
            height_weight_rho: 0.6,
            aids_prevalence: 0.08,
        }
    }
}

/// Generates a patient population with the Table 1 schema
/// (height, weight | blood pressure, AIDS).
///
/// Heights and weights are correlated normals; systolic blood pressure
/// increases with weight (all patients are hypertensive, as in the paper's
/// drug trial), so the confidential attribute is *learnable* from the keys —
/// which is what makes disclosure both valuable and dangerous.
pub fn patients(config: &PatientConfig) -> Dataset {
    let mut r = rng::seeded(config.seed);
    let mut d = Dataset::new(crate::patients::patient_schema());
    for _ in 0..config.n {
        let (zh, zw) = rng::correlated_normals(&mut r, config.height_weight_rho);
        let height = (170.0 + 10.0 * zh).clamp(140.0, 210.0);
        let weight = (78.0 + 14.0 * zw).clamp(40.0, 160.0);
        let bp = 120.0 + 0.25 * (weight - 78.0) + rng::normal(&mut r, 12.0, 6.0);
        let aids = r.gen::<f64>() < config.aids_prevalence;
        d.push_row(vec![
            Value::Float((height * 2.0).round() / 2.0),
            Value::Float((weight * 2.0).round() / 2.0),
            Value::Float(bp.round()),
            Value::Bool(aids),
        ])
        .expect("generated row fits schema");
    }
    d
}

/// Schema of the census-style population.
pub fn census_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new(
            "age",
            AttributeKind::Integer,
            AttributeRole::QuasiIdentifier,
        ),
        AttributeDef::new(
            "zip",
            AttributeKind::Nominal,
            AttributeRole::QuasiIdentifier,
        ),
        AttributeDef::new(
            "education",
            AttributeKind::Ordinal,
            AttributeRole::QuasiIdentifier,
        ),
        AttributeDef::new(
            "income",
            AttributeKind::Continuous,
            AttributeRole::Confidential,
        ),
        AttributeDef::new(
            "disease",
            AttributeKind::Nominal,
            AttributeRole::Confidential,
        ),
    ])
    .expect("census schema is valid")
}

/// Education levels in ascending order (used by generalization hierarchies).
pub const EDUCATION_LEVELS: [&str; 5] = ["primary", "secondary", "bachelor", "master", "doctorate"];

/// Diseases used as the sensitive categorical attribute.
pub const DISEASES: [&str; 6] = [
    "flu",
    "diabetes",
    "hypertension",
    "asthma",
    "cancer",
    "hepatitis",
];

/// Generates a census-style mixed population of `n` records.
pub fn census(n: usize, seed: u64) -> Dataset {
    let mut r = rng::seeded(seed);
    let mut d = Dataset::new(census_schema());
    let zips: Vec<String> = (0..20).map(|i| format!("43{:03}", i * 7 % 100)).collect();
    for _ in 0..n {
        let age = r.gen_range(18..=90i64);
        let zip = zips.choose(&mut r).unwrap().clone();
        let edu = *EDUCATION_LEVELS
            .choose_weighted(&mut r, |e| match *e {
                "primary" => 3.0,
                "secondary" => 4.0,
                "bachelor" => 3.0,
                "master" => 1.5,
                _ => 0.5,
            })
            .unwrap();
        // Income grows with age and education, log-normal-ish noise.
        let edu_rank = EDUCATION_LEVELS.iter().position(|e| *e == edu).unwrap() as f64;
        let base = 14_000.0 + 450.0 * (age as f64 - 18.0) + 7_000.0 * edu_rank;
        let income = base * (1.0 + 0.35 * rng::standard_normal(&mut r)).max(0.25);
        let disease = *DISEASES.choose(&mut r).unwrap();
        d.push_row(vec![
            Value::Int(age),
            Value::Str(zip),
            Value::Str(edu.to_owned()),
            Value::Float(income.round()),
            Value::Str(disease.to_owned()),
        ])
        .expect("generated row fits schema");
    }
    d
}

/// A market-basket transaction: item ids present in the basket.
pub type Transaction = Vec<u32>;

/// Configuration for the transaction generator.
#[derive(Debug, Clone)]
pub struct TransactionConfig {
    /// Number of transactions.
    pub n: usize,
    /// Item universe size.
    pub num_items: u32,
    /// Frequent itemsets planted into the data (with their incidence).
    pub planted: Vec<(Vec<u32>, f64)>,
    /// Background probability that any given item joins a basket.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransactionConfig {
    fn default() -> Self {
        Self {
            n: 2000,
            num_items: 40,
            planted: vec![
                (vec![1, 2], 0.35),
                (vec![3, 4, 5], 0.25),
                (vec![1, 7], 0.20),
            ],
            noise: 0.03,
            seed: 0xBA5_CE7,
        }
    }
}

/// Generates market-basket transactions with planted frequent itemsets.
pub fn transactions(config: &TransactionConfig) -> Vec<Transaction> {
    let mut r = rng::seeded(config.seed);
    let mut out = Vec::with_capacity(config.n);
    for _ in 0..config.n {
        let mut basket: Vec<u32> = Vec::new();
        for (items, p) in &config.planted {
            if r.gen::<f64>() < *p {
                basket.extend(items.iter().copied());
            }
        }
        for item in 0..config.num_items {
            if r.gen::<f64>() < config.noise {
                basket.push(item);
            }
        }
        basket.sort_unstable();
        basket.dedup();
        out.push(basket);
    }
    out
}

/// One entry of a synthetic search-engine query log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// Pseudonymous user id.
    pub user: u32,
    /// Index of the query in the query universe.
    pub query: usize,
}

/// Generates a query log of `n` entries over a universe of `universe`
/// distinct queries issued by `users` users, with Zipf-like popularity
/// (rank-`r` query has weight 1/r) — the workload of the §1 AOL anecdote.
pub fn query_log(n: usize, universe: usize, users: u32, seed: u64) -> Vec<QueryLogEntry> {
    assert!(universe > 0 && users > 0);
    let mut r = rng::seeded(seed);
    let weights: Vec<f64> = (1..=universe).map(|k| 1.0 / k as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut t = r.gen::<f64>() * total;
        let mut q = 0;
        for (i, w) in weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                q = i;
                break;
            }
        }
        out.push(QueryLogEntry {
            user: r.gen_range(0..users),
            query: q,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn patients_have_plausible_marginals() {
        let d = patients(&PatientConfig {
            n: 4000,
            ..Default::default()
        });
        assert_eq!(d.num_rows(), 4000);
        let h = d.numeric_column(0);
        let w = d.numeric_column(1);
        let mh = stats::mean(&h).unwrap();
        assert!((mh - 170.0).abs() < 1.0, "mean height {mh}");
        let rho = stats::correlation(&h, &w).unwrap();
        assert!((rho - 0.6).abs() < 0.08, "height/weight rho {rho}");
    }

    #[test]
    fn patients_generation_is_deterministic() {
        let c = PatientConfig::default();
        assert_eq!(patients(&c), patients(&c));
    }

    #[test]
    fn blood_pressure_correlates_with_weight() {
        let d = patients(&PatientConfig {
            n: 4000,
            ..Default::default()
        });
        let w = d.numeric_column(1);
        let bp = d.numeric_column(2);
        let rho = stats::correlation(&w, &bp).unwrap();
        assert!(rho > 0.2, "weight/bp rho {rho}");
    }

    #[test]
    fn census_has_valid_categories() {
        let d = census(500, 11);
        assert_eq!(d.num_rows(), 500);
        for row in d.rows() {
            let age = row[0].as_i64().unwrap();
            assert!((18..=90).contains(&age));
            assert!(EDUCATION_LEVELS.contains(&row[2].as_str().unwrap()));
            assert!(DISEASES.contains(&row[4].as_str().unwrap()));
            assert!(row[3].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn planted_itemsets_are_frequent() {
        let cfg = TransactionConfig::default();
        let txs = transactions(&cfg);
        let support = |items: &[u32]| {
            txs.iter()
                .filter(|t| items.iter().all(|i| t.contains(i)))
                .count() as f64
                / txs.len() as f64
        };
        assert!(support(&[1, 2]) > 0.25, "support {}", support(&[1, 2]));
        assert!(support(&[3, 4, 5]) > 0.15);
        // A random pair of noise items must be rare.
        assert!(support(&[20, 30]) < 0.05);
    }

    #[test]
    fn query_log_is_zipfian() {
        let log = query_log(20_000, 50, 100, 3);
        assert_eq!(log.len(), 20_000);
        let count = |q: usize| log.iter().filter(|e| e.query == q).count();
        // Rank 0 should be much more popular than rank 30.
        assert!(count(0) > 5 * count(30).max(1));
        assert!(log.iter().all(|e| e.query < 50 && e.user < 100));
    }
}
