//! Word-packed bit vector used for missing-ness masks and boolean columns.
//!
//! Same layout idea as `tdf-pir`'s `BitVec` (64 bits per `u64` word, little
//! bit-endian within a word), re-implemented here so the storage crate stays
//! dependency-free. The packed form keeps per-column masks at 1 bit per row
//! and lets scans test 64 rows per word.

/// A growable bit vector packed into `u64` words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when at least one bit is set (one word test per 64 rows).
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// True when no bit is set.
    #[inline]
    pub fn none(&self) -> bool {
        !self.any()
    }

    /// The packed words (trailing bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from packed words (the segment-spill codec's
    /// reload path). Trailing bits beyond `len` are masked to zero so the
    /// invariant `words()` documents survives a round-trip through disk.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        if len % 64 != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        Self { words, len }
    }

    /// Heap bytes held by the packed words.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        b.set(1, true);
        b.set(0, false);
        assert!(b.get(1) && !b.get(0));
    }

    #[test]
    fn word_boundaries_63_64_65() {
        for n in [63usize, 64, 65] {
            let mut b = Bitmap::zeros(n);
            assert_eq!(b.words().len(), n.div_ceil(64));
            assert!(b.none());
            b.set(n - 1, true);
            assert!(b.any());
            assert_eq!(b.count_ones(), 1);
            assert!(b.get(n - 1));
            assert!(!b.get(0) || n == 1);
        }
    }

    #[test]
    fn trailing_bits_stay_zero() {
        let mut b = Bitmap::new();
        for _ in 0..65 {
            b.push(true);
        }
        assert_eq!(b.count_ones(), 65);
        assert_eq!(b.words()[1], 1);
    }
}
