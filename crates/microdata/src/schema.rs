//! Dataset schemas: ordered attribute definitions with role-based lookups.

use crate::attribute::{AttributeDef, AttributeKind, AttributeRole};
use crate::error::{Error, Result};

/// An ordered list of attribute definitions.
///
/// Schemas are cheap to clone and are shared by an original dataset and all
/// of its masked releases — masking never changes the schema, only the cell
/// values (suppression writes [`crate::Value::Missing`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<AttributeDef>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new(attributes: Vec<AttributeDef>) -> Result<Self> {
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(Error::InvalidParameter(format!(
                    "duplicate attribute name `{}`",
                    a.name
                )));
            }
        }
        Ok(Self { attributes })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// All attribute definitions, in column order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// Column index of `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| Error::UnknownAttribute(name.to_owned()))
    }

    /// Attribute definition at `index`.
    pub fn attribute(&self, index: usize) -> &AttributeDef {
        &self.attributes[index]
    }

    /// Attribute definition by name.
    pub fn attribute_by_name(&self, name: &str) -> Result<&AttributeDef> {
        Ok(&self.attributes[self.index_of(name)?])
    }

    /// Column indices with the given role.
    pub fn indices_with_role(&self, role: AttributeRole) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == role)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the quasi-identifier (key) attributes.
    pub fn quasi_identifier_indices(&self) -> Vec<usize> {
        self.indices_with_role(AttributeRole::QuasiIdentifier)
    }

    /// Indices of confidential attributes.
    pub fn confidential_indices(&self) -> Vec<usize> {
        self.indices_with_role(AttributeRole::Confidential)
    }

    /// Indices of numeric attributes (continuous or integer kind).
    pub fn numeric_indices(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }

    /// Names of all attributes, in order.
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Sub-schema restricted to the given column indices (order preserved).
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            attributes: indices
                .iter()
                .map(|&i| self.attributes[i].clone())
                .collect(),
        }
    }

    /// True when the value's runtime type is acceptable for column `index`.
    pub fn value_fits(&self, index: usize, value: &crate::Value) -> bool {
        use crate::Value;
        if value.is_missing() {
            return true; // suppression is always representable
        }
        match self.attributes[index].kind {
            AttributeKind::Continuous | AttributeKind::Integer => {
                matches!(value, Value::Int(_) | Value::Float(_))
            }
            AttributeKind::Nominal | AttributeKind::Ordinal => {
                matches!(value, Value::Str(_) | Value::Int(_))
            }
            AttributeKind::Boolean => matches!(value, Value::Bool(_)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn patient_schema() -> Schema {
        Schema::new(vec![
            AttributeDef::continuous_qi("height"),
            AttributeDef::continuous_qi("weight"),
            AttributeDef::continuous_confidential("blood_pressure"),
            AttributeDef::boolean_confidential("aids"),
        ])
        .unwrap()
    }

    #[test]
    fn role_lookups() {
        let s = patient_schema();
        assert_eq!(s.quasi_identifier_indices(), vec![0, 1]);
        assert_eq!(s.confidential_indices(), vec![2, 3]);
        assert_eq!(s.numeric_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            AttributeDef::continuous_qi("x"),
            AttributeDef::continuous_qi("x"),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn index_of_unknown_attribute() {
        let s = patient_schema();
        assert!(matches!(s.index_of("zip"), Err(Error::UnknownAttribute(_))));
        assert_eq!(s.index_of("aids").unwrap(), 3);
    }

    #[test]
    fn projection_keeps_order() {
        let s = patient_schema();
        let p = s.project(&[3, 0]);
        assert_eq!(p.names(), vec!["aids", "height"]);
    }

    #[test]
    fn value_fitting() {
        let s = patient_schema();
        assert!(s.value_fits(0, &Value::Float(175.0)));
        assert!(s.value_fits(0, &Value::Int(175)));
        assert!(!s.value_fits(0, &Value::Str("tall".into())));
        assert!(s.value_fits(3, &Value::Bool(true)));
        assert!(!s.value_fits(3, &Value::Int(1)));
        assert!(s.value_fits(3, &Value::Missing));
    }
}
