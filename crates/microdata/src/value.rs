//! The dynamically-typed cell value stored in a dataset.

use std::cmp::Ordering;
use std::fmt;

/// A single cell of a microdata table.
///
/// `Value` deliberately keeps the palette small: the statistical-disclosure
/// literature distinguishes only continuous, integer, categorical and boolean
/// attributes, plus missing values (which masking methods such as local
/// suppression produce).
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer (ages, counts, coded categories).
    Int(i64),
    /// Double-precision float (heights, incomes, blood pressures).
    Float(f64),
    /// Categorical / free-text value.
    Str(String),
    /// Boolean flag (e.g. the AIDS column of the paper's Table 1).
    Bool(bool),
    /// A suppressed or absent cell.
    Missing,
}

impl Value {
    /// Short name of the value's runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Bool(_) => "bool",
            Value::Missing => "missing",
        }
    }

    /// Numeric view of the value, if it has one. Integers and booleans are
    /// widened; strings and missing cells have none.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(_) | Value::Missing => None,
        }
    }

    /// Integer view (floats are accepted only when they are whole).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(x) if x.fract() == 0.0 && x.is_finite() => Some(*x as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// String view for categorical comparisons.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when the cell is [`Value::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Total order used for grouping and sorting.
    ///
    /// Values of different types order by type tag; missing sorts last; NaN
    /// floats sort after all finite floats so that sorting is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn tag(v: &Value) -> u8 {
            match v {
                Int(_) => 0,
                Float(_) => 1,
                Str(_) => 2,
                Bool(_) => 3,
                Missing => 4,
            }
        }
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Missing, Missing) => Ordering::Equal,
            _ => tag(self).cmp(&tag(other)),
        }
    }

    /// Equality for grouping purposes: `Int(3)` equals `Float(3.0)`, two
    /// `Missing` cells are equal to each other, NaN equals NaN.
    pub fn group_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            // Ints and whole floats must hash alike because they compare equal.
            Value::Int(i) => {
                state.write_u8(0);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(x) => {
                state.write_u8(0);
                x.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(3);
                b.hash(state);
            }
            Value::Missing => state.write_u8(4),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{}", if *b { "Y" } else { "N" }),
            Value::Missing => write!(f, "*"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Missing.as_f64(), None);
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn missing_sorts_last() {
        let mut vs = [Value::Missing, Value::Int(1), Value::Float(0.5)];
        vs.sort();
        assert!(vs[2].is_missing());
        assert_eq!(vs[0], Value::Float(0.5));
    }

    #[test]
    fn nan_is_self_equal_for_grouping() {
        let nan = Value::Float(f64::NAN);
        assert!(nan.group_eq(&Value::Float(f64::NAN)));
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
    }

    #[test]
    fn display_matches_paper_conventions() {
        assert_eq!(Value::Bool(true).to_string(), "Y");
        assert_eq!(Value::Bool(false).to_string(), "N");
        assert_eq!(Value::Missing.to_string(), "*");
        assert_eq!(Value::Int(146).to_string(), "146");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Int(0).type_name(), "int");
        assert_eq!(Value::Missing.type_name(), "missing");
    }
}
