//! Deterministic randomness helpers.
//!
//! All experiments in the repository are seeded so that every table and
//! figure regenerates bit-identically. The samplers here avoid extra
//! dependencies: Gaussian variates come from Box–Muller, Laplace variates
//! from inverse-CDF sampling.

use rngkit::rngs::StdRng;
use rngkit::{Rng, SeedableRng};

/// A seeded RNG for reproducible experiments.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Laplace variate with location 0 and scale `b` (inverse CDF).
pub fn laplace<R: Rng + ?Sized>(rng: &mut R, b: f64) -> f64 {
    let u: f64 = rng.gen::<f64>() - 0.5;
    -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Samples a pair of correlated standard normals with correlation `rho`.
pub fn correlated_normals<R: Rng + ?Sized>(rng: &mut R, rho: f64) -> (f64, f64) {
    let z1 = standard_normal(rng);
    let z2 = standard_normal(rng);
    (z1, rho * z1 + (1.0 - rho * rho).sqrt() * z2)
}

/// Fisher–Yates shuffle of indices `0..n`, returned as a permutation vector.
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = seeded(42);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<f64> = {
            let mut r = seeded(42);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut r = seeded(7);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let m = stats::mean(&xs).unwrap();
        let s = stats::std_dev(&xs).unwrap();
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
        assert!((s - 2.0).abs() < 0.1, "std {s}");
    }

    #[test]
    fn laplace_is_symmetric_with_correct_scale() {
        let mut r = seeded(8);
        let xs: Vec<f64> = (0..30_000).map(|_| laplace(&mut r, 3.0)).collect();
        let m = stats::mean(&xs).unwrap();
        // Var(Laplace(b)) = 2 b^2 = 18.
        let v = stats::variance(&xs).unwrap();
        assert!(m.abs() < 0.2, "mean {m}");
        assert!((v - 18.0).abs() < 1.5, "var {v}");
    }

    #[test]
    fn correlated_normals_hit_target_rho() {
        let mut r = seeded(9);
        let pairs: Vec<(f64, f64)> = (0..20_000)
            .map(|_| correlated_normals(&mut r, 0.8))
            .collect();
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let rho = stats::correlation(&xs, &ys).unwrap();
        assert!((rho - 0.8).abs() < 0.05, "rho {rho}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut r = seeded(10);
        let p = permutation(&mut r, 100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
