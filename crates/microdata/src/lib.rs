//! # tdf-microdata
//!
//! Tabular *microdata* substrate for the three-dimensional database-privacy
//! toolkit. A microdata file, in the statistical-disclosure-control sense of
//! the paper this repository reproduces (Domingo-Ferrer, *A Three-Dimensional
//! Conceptual Framework for Database Privacy*, SDM@VLDB 2007), is a table in
//! which every record describes one *respondent* and every attribute is
//! classified by the role it plays in a disclosure scenario:
//!
//! * **identifiers** — unambiguously name the respondent (passport number);
//!   always removed before any release;
//! * **quasi-identifiers** (*key attributes* in the paper, after Dalenius and
//!   Samarati) — do not identify on their own but can be linked with external
//!   information (height, weight, zip code, birth date);
//! * **confidential attributes** — the sensitive payload (blood pressure,
//!   AIDS status);
//! * **non-confidential** — everything else.
//!
//! The crate provides typed values, schemas, datasets, CSV/TSV/JSON I/O
//! (all hand-rolled — the workspace builds with zero external crates),
//! summary statistics, record distances, deterministic random sampling, the
//! synthetic populations used by every experiment in this repository, and
//! faithful reconstructions of the paper's Table 1 toy datasets.
//!
//! ```
//! use tdf_microdata::patients;
//!
//! let d1 = patients::dataset1();
//! assert_eq!(d1.num_rows(), 10);
//! ```

pub mod attribute;
pub mod bitmap;
pub mod column;
pub mod csv;
pub mod dataset;
pub mod distance;
pub mod error;
pub mod patients;
pub mod rng;
pub mod sampling;
pub mod schema;
pub mod segio;
pub mod segment;
pub mod ser;
pub mod stats;
pub mod synth;
pub mod value;

pub use attribute::{AttributeDef, AttributeKind, AttributeRole};
pub use bitmap::Bitmap;
pub use column::{BoolCol, CatCol, Column, ColumnView, F64Cells, FloatCol, IntCol};
pub use dataset::Dataset;
pub use error::{Error, Result};
pub use schema::Schema;
pub use segment::{CompactedRun, CompactionReport, SegMeta, SegmentedDataset, SegmentedView};
pub use value::Value;
