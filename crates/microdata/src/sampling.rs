//! Record-level sampling utilities.
//!
//! Release pipelines shuffle before publishing (so row order leaks
//! nothing) and evaluation pipelines split into train/test; both need to
//! track the permutation so risk metrics can stay row-aligned.

use crate::dataset::Dataset;
use crate::rng::permutation;
use rngkit::Rng;

/// A shuffled dataset together with the permutation that produced it:
/// `shuffled.row(i) == original.row(order[i])`.
#[derive(Debug, Clone)]
pub struct Shuffled {
    /// The shuffled dataset.
    pub data: Dataset,
    /// Original index of each shuffled row.
    pub order: Vec<usize>,
}

/// Shuffles the records of `data` uniformly.
pub fn shuffle<R: Rng + ?Sized>(data: &Dataset, rng: &mut R) -> Shuffled {
    let order = permutation(rng, data.num_rows());
    let out = data.take(&order);
    Shuffled { data: out, order }
}

/// Samples `k` records without replacement (k ≤ n), preserving original
/// order; returns the sample and the chosen indices.
pub fn sample_without_replacement<R: Rng + ?Sized>(
    data: &Dataset,
    k: usize,
    rng: &mut R,
) -> (Dataset, Vec<usize>) {
    assert!(
        k <= data.num_rows(),
        "cannot sample {k} of {}",
        data.num_rows()
    );
    let mut chosen = permutation(rng, data.num_rows());
    chosen.truncate(k);
    chosen.sort_unstable();
    let out = data.take(&chosen);
    (out, chosen)
}

/// Splits into train/test with the given test fraction (0 < f < 1).
pub fn train_test_split<R: Rng + ?Sized>(
    data: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> (Dataset, Dataset) {
    assert!(
        (0.0..1.0).contains(&test_fraction) && test_fraction > 0.0,
        "test fraction must be in (0, 1)"
    );
    let order = permutation(rng, data.num_rows());
    let n_test = ((data.num_rows() as f64) * test_fraction).round() as usize;
    let test = data.take(&order[..n_test]);
    let train = data.take(&order[n_test..]);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::synth::{patients, PatientConfig};

    fn data() -> Dataset {
        patients(&PatientConfig {
            n: 50,
            ..Default::default()
        })
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let d = data();
        let s = shuffle(&d, &mut seeded(1));
        assert_eq!(s.data.num_rows(), d.num_rows());
        for (i, &orig) in s.order.iter().enumerate() {
            assert_eq!(s.data.row(i), d.row(orig));
        }
        let mut sorted = s.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_actually_moves_rows() {
        let d = data();
        let s = shuffle(&d, &mut seeded(2));
        assert_ne!(s.order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_without_replacement() {
        let d = data();
        let (sample, idx) = sample_without_replacement(&d, 10, &mut seeded(3));
        assert_eq!(sample.num_rows(), 10);
        assert_eq!(idx.len(), 10);
        let mut dedup = idx.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "indices must be distinct");
        for (j, &i) in idx.iter().enumerate() {
            assert_eq!(sample.row(j), d.row(i));
        }
    }

    #[test]
    fn split_partitions_the_data() {
        let d = data();
        let (train, test) = train_test_split(&d, 0.2, &mut seeded(4));
        assert_eq!(test.num_rows(), 10);
        assert_eq!(train.num_rows(), 40);
        assert_eq!(train.num_rows() + test.num_rows(), d.num_rows());
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_panics() {
        let _ = train_test_split(&data(), 1.5, &mut seeded(5));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let _ = sample_without_replacement(&data(), 51, &mut seeded(6));
    }
}
