//! Summary statistics used by masking methods and information-loss metrics.

use crate::dataset::Dataset;
use crate::error::{Error, Result};

/// Arithmetic mean of a slice; `None` when empty.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample variance (denominator n−1); `None` for fewer than two points.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Sample covariance between two equal-length slices.
pub fn covariance(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let s: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Some(s / (xs.len() - 1) as f64)
}

/// Pearson correlation; `None` when either side is constant.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let c = covariance(xs, ys)?;
    let sx = std_dev(xs)?;
    let sy = std_dev(ys)?;
    if sx == 0.0 || sy == 0.0 {
        None
    } else {
        Some(c / (sx * sy))
    }
}

/// `q`-quantile (0 ≤ q ≤ 1) with linear interpolation; `None` when empty.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Median (0.5-quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Per-column means of the numeric columns `cols` of a dataset.
pub fn column_means(data: &Dataset, cols: &[usize]) -> Result<Vec<f64>> {
    if data.is_empty() {
        return Err(Error::EmptyDataset);
    }
    cols.iter()
        .map(|&c| {
            mean(&data.numeric_column(c))
                .ok_or_else(|| Error::NotNumeric(data.schema().attribute(c).name.clone()))
        })
        .collect()
}

/// Covariance matrix of the numeric columns `cols` (row-major, cols×cols).
pub fn covariance_matrix(data: &Dataset, cols: &[usize]) -> Result<Vec<Vec<f64>>> {
    if data.num_rows() < 2 {
        return Err(Error::EmptyDataset);
    }
    let columns: Vec<Vec<f64>> = cols.iter().map(|&c| data.numeric_column(c)).collect();
    let d = cols.len();
    let mut m = vec![vec![0.0; d]; d];
    for i in 0..d {
        for j in i..d {
            let c = covariance(&columns[i], &columns[j]).ok_or(Error::EmptyDataset)?;
            m[i][j] = c;
            m[j][i] = c;
        }
    }
    Ok(m)
}

/// Equal-width histogram over `[lo, hi)` with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo, "invalid histogram domain");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let mut b = ((x - lo) / width).floor() as i64;
        b = b.clamp(0, bins as i64 - 1);
        counts[b as usize] += 1;
    }
    counts
}

/// Normalises a histogram to a probability distribution.
pub fn to_distribution(counts: &[usize]) -> Vec<f64> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Total-variation distance between two distributions of equal length.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Shannon entropy in bits of a discrete distribution.
pub fn entropy_bits(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.log2()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < EPS);
        // Sample variance of this classic set is 32/7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < EPS);
        assert!(mean(&[]).is_none());
        assert!(variance(&[1.0]).is_none());
    }

    #[test]
    fn covariance_and_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&xs, &ys).unwrap() - 1.0).abs() < EPS);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&xs, &zs).unwrap() + 1.0).abs() < EPS);
        assert!(correlation(&xs, &[5.0, 5.0, 5.0, 5.0]).is_none());
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert!((median(&xs).unwrap() - 2.5).abs() < EPS);
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < EPS);
        assert!((quantile(&xs, 1.0).unwrap() - 4.0).abs() < EPS);
        assert!(quantile(&[], 0.5).is_none());
        assert!(quantile(&xs, 1.5).is_none());
    }

    #[test]
    fn histogram_clamps_outliers() {
        let xs = [-10.0, 0.1, 0.2, 0.9, 42.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(h, vec![3, 2]);
        assert_eq!(to_distribution(&h), vec![0.6, 0.4]);
    }

    #[test]
    fn distribution_distances() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!((total_variation(&p, &q) - 0.5).abs() < EPS);
        assert!((entropy_bits(&p) - 1.0).abs() < EPS);
        assert!(entropy_bits(&q).abs() < EPS);
    }

    #[test]
    fn covariance_matrix_is_symmetric() {
        use crate::attribute::AttributeDef;
        use crate::schema::Schema;
        let schema = Schema::new(vec![
            AttributeDef::continuous_qi("a"),
            AttributeDef::continuous_qi("b"),
        ])
        .unwrap();
        let d = Dataset::with_rows(
            schema,
            vec![
                vec![1.0.into(), 10.0.into()],
                vec![2.0.into(), 8.0.into()],
                vec![3.0.into(), 9.0.into()],
            ],
        )
        .unwrap();
        let m = covariance_matrix(&d, &[0, 1]).unwrap();
        assert_eq!(m.len(), 2);
        assert!((m[0][1] - m[1][0]).abs() < EPS);
        assert!((m[0][0] - 1.0).abs() < EPS);
    }
}
