//! Typed columnar storage: one contiguous buffer per attribute.
//!
//! Every attribute of a [`crate::Dataset`] is stored in one of four column
//! layouts chosen from its [`crate::AttributeKind`]:
//!
//! * [`FloatCol`] — `Vec<f64>` plus a word-packed missing bitmap
//!   (continuous attributes, and integer attributes after a float write);
//! * [`IntCol`] — `Vec<i64>` plus missing bitmap (integer attributes);
//! * [`BoolCol`] — two packed bitmaps, data and missing (boolean attributes);
//! * [`CatCol`] — dictionary-encoded categoricals: an interned value pool
//!   plus `u32` codes per row (nominal / ordinal attributes).
//!
//! Missing cells are tracked in the bitmap; the payload slot of a missing
//! cell always holds a fixed filler (`0.0` / `0` / `false` / code `0`) so
//! gathers and appends stay branch-free.
//!
//! The enum [`ColumnView`] is the zero-copy read API handed out by
//! `Dataset::col`: kernels match on it once per column and then scan the
//! typed buffer directly instead of dispatching on `Value` per cell.

use crate::attribute::AttributeKind;
use crate::bitmap::Bitmap;
use crate::value::Value;
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Filler stored in the payload slot of a missing cell.
const FLOAT_FILL: f64 = 0.0;
const INT_FILL: i64 = 0;

/// Continuous column: contiguous `f64` buffer + missing bitmap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FloatCol {
    data: Vec<f64>,
    missing: Bitmap,
}

impl FloatCol {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw values; slots flagged missing hold `0.0`.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw values. Writing a slot does *not* clear its missing bit;
    /// use [`FloatCol::set`] for that.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The missing bitmap.
    pub fn missing(&self) -> &Bitmap {
        &self.missing
    }

    /// True when cell `i` is missing.
    pub fn is_missing(&self, i: usize) -> bool {
        self.missing.get(i)
    }

    /// Cell `i` as an `Option<f64>`.
    pub fn opt(&self, i: usize) -> Option<f64> {
        if self.missing.get(i) {
            None
        } else {
            Some(self.data[i])
        }
    }

    /// Appends a cell.
    pub fn push(&mut self, v: Option<f64>) {
        self.data.push(v.unwrap_or(FLOAT_FILL));
        self.missing.push(v.is_none());
    }

    /// Overwrites cell `i`.
    pub fn set(&mut self, i: usize, v: Option<f64>) {
        self.data[i] = v.unwrap_or(FLOAT_FILL);
        self.missing.set(i, v.is_none());
    }

    /// Rebuilds a column from its raw buffers (segment reload).
    pub fn from_parts(data: Vec<f64>, missing: Bitmap) -> Self {
        assert_eq!(data.len(), missing.len(), "missing bitmap length mismatch");
        Self { data, missing }
    }
}

/// Integer column: contiguous `i64` buffer + missing bitmap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntCol {
    data: Vec<i64>,
    missing: Bitmap,
}

impl IntCol {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw values; slots flagged missing hold `0`.
    pub fn values(&self) -> &[i64] {
        &self.data
    }

    /// The missing bitmap.
    pub fn missing(&self) -> &Bitmap {
        &self.missing
    }

    /// True when cell `i` is missing.
    pub fn is_missing(&self, i: usize) -> bool {
        self.missing.get(i)
    }

    /// Cell `i` as an `Option<i64>`.
    pub fn opt(&self, i: usize) -> Option<i64> {
        if self.missing.get(i) {
            None
        } else {
            Some(self.data[i])
        }
    }

    /// Appends a cell.
    pub fn push(&mut self, v: Option<i64>) {
        self.data.push(v.unwrap_or(INT_FILL));
        self.missing.push(v.is_none());
    }

    /// Overwrites cell `i`.
    pub fn set(&mut self, i: usize, v: Option<i64>) {
        self.data[i] = v.unwrap_or(INT_FILL);
        self.missing.set(i, v.is_none());
    }

    /// Rebuilds a column from its raw buffers (segment reload).
    pub fn from_parts(data: Vec<i64>, missing: Bitmap) -> Self {
        assert_eq!(data.len(), missing.len(), "missing bitmap length mismatch");
        Self { data, missing }
    }
}

/// Boolean column: packed data bits + missing bitmap (2 bits per row).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoolCol {
    data: Bitmap,
    missing: Bitmap,
}

impl BoolCol {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The packed data bits; slots flagged missing hold `false`.
    pub fn bits(&self) -> &Bitmap {
        &self.data
    }

    /// The missing bitmap.
    pub fn missing(&self) -> &Bitmap {
        &self.missing
    }

    /// True when cell `i` is missing.
    pub fn is_missing(&self, i: usize) -> bool {
        self.missing.get(i)
    }

    /// Cell `i` as an `Option<bool>`.
    pub fn opt(&self, i: usize) -> Option<bool> {
        if self.missing.get(i) {
            None
        } else {
            Some(self.data.get(i))
        }
    }

    /// Appends a cell.
    pub fn push(&mut self, v: Option<bool>) {
        self.data.push(v.unwrap_or(false));
        self.missing.push(v.is_none());
    }

    /// Overwrites cell `i`.
    pub fn set(&mut self, i: usize, v: Option<bool>) {
        self.data.set(i, v.unwrap_or(false));
        self.missing.set(i, v.is_none());
    }

    /// Rebuilds a column from its raw bitmaps (segment reload).
    pub fn from_parts(data: Bitmap, missing: Bitmap) -> Self {
        assert_eq!(data.len(), missing.len(), "missing bitmap length mismatch");
        Self { data, missing }
    }
}

/// Dictionary-encoded categorical column.
///
/// Distinct values (`Str` or coded `Int`) are interned once into `pool` in
/// first-seen order — codes are stable under push order — and each row
/// stores only a `u32` code. Equality tests in k-anonymity grouping and
/// attack comparators become integer compares; the heap `String` is touched
/// only when a cell is materialized back into a [`Value`].
#[derive(Debug, Clone, Default)]
pub struct CatCol {
    pool: Vec<Value>,
    index: HashMap<Value, u32>,
    codes: Vec<u32>,
    missing: Bitmap,
}

impl CatCol {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The per-row codes; slots flagged missing hold `0`.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The missing bitmap.
    pub fn missing(&self) -> &Bitmap {
        &self.missing
    }

    /// True when cell `i` is missing.
    pub fn is_missing(&self, i: usize) -> bool {
        self.missing.get(i)
    }

    /// The interned dictionary, in first-seen order.
    pub fn pool(&self) -> &[Value] {
        &self.pool
    }

    /// Number of distinct interned values.
    pub fn num_categories(&self) -> usize {
        self.pool.len()
    }

    /// The dictionary value behind `code`.
    pub fn decode(&self, code: u32) -> &Value {
        &self.pool[code as usize]
    }

    /// Cell `i`'s code, `None` when missing.
    pub fn code(&self, i: usize) -> Option<u32> {
        if self.missing.get(i) {
            None
        } else {
            Some(self.codes[i])
        }
    }

    /// Borrowed cell value, `None` when missing.
    pub fn value_ref(&self, i: usize) -> Option<&Value> {
        self.code(i).map(|c| self.decode(c))
    }

    /// The code `v` is interned under, if any (no insertion).
    pub fn lookup(&self, v: &Value) -> Option<u32> {
        self.index.get(v).copied()
    }

    /// Interns `v`, returning its stable code.
    ///
    /// Panics on values a categorical attribute cannot hold (enforced
    /// upstream by `Schema::value_fits`).
    pub fn intern(&mut self, v: &Value) -> u32 {
        debug_assert!(
            matches!(v, Value::Str(_) | Value::Int(_)),
            "categorical columns hold Str or Int, got {}",
            v.type_name()
        );
        if let Some(&c) = self.index.get(v) {
            return c;
        }
        let c = u32::try_from(self.pool.len()).expect("dictionary overflow");
        self.pool.push(v.clone());
        self.index.insert(v.clone(), c);
        c
    }

    /// Appends a cell.
    pub fn push(&mut self, v: Option<&Value>) {
        match v {
            Some(v) => {
                let c = self.intern(v);
                self.codes.push(c);
                self.missing.push(false);
            }
            None => {
                self.codes.push(0);
                self.missing.push(true);
            }
        }
    }

    /// Overwrites cell `i` with an already-interned code.
    pub fn set_code(&mut self, i: usize, code: u32) {
        assert!((code as usize) < self.pool.len(), "unknown dictionary code");
        self.codes[i] = code;
        self.missing.set(i, false);
    }

    /// Overwrites cell `i`.
    pub fn set(&mut self, i: usize, v: Option<&Value>) {
        match v {
            Some(v) => {
                let c = self.intern(v);
                self.codes[i] = c;
                self.missing.set(i, false);
            }
            None => {
                self.codes[i] = 0;
                self.missing.set(i, true);
            }
        }
    }

    /// Rebuilds a column from its dictionary and raw code buffer (segment
    /// reload); the interning index is reconstructed from the pool.
    pub fn from_parts(pool: Vec<Value>, codes: Vec<u32>, missing: Bitmap) -> Self {
        assert_eq!(codes.len(), missing.len(), "missing bitmap length mismatch");
        assert!(
            codes.iter().all(|&c| (c as usize) < pool.len().max(1)),
            "code outside dictionary"
        );
        let index = pool
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        Self {
            pool,
            index,
            codes,
            missing,
        }
    }
}

impl PartialEq for CatCol {
    /// Logical equality: same cells, regardless of dictionary order.
    fn eq(&self, other: &Self) -> bool {
        if self.codes.len() != other.codes.len() {
            return false;
        }
        // Remap our codes into the other dictionary once, then compare codes.
        let remap: Vec<Option<u32>> = self
            .pool
            .iter()
            .map(|v| other.index.get(v).copied())
            .collect();
        (0..self.codes.len()).all(|i| match (self.missing.get(i), other.missing.get(i)) {
            (true, true) => true,
            (false, false) => remap[self.codes[i] as usize] == Some(other.codes[i]),
            _ => false,
        })
    }
}

/// One stored column of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Continuous storage (also integer attributes after a float write).
    Float(FloatCol),
    /// Integer storage.
    Int(IntCol),
    /// Boolean storage.
    Bool(BoolCol),
    /// Dictionary-encoded categorical storage.
    Cat(CatCol),
}

impl Column {
    /// Empty column with the storage layout for `kind`.
    pub fn for_kind(kind: AttributeKind) -> Self {
        match kind {
            AttributeKind::Continuous => Column::Float(FloatCol::default()),
            AttributeKind::Integer => Column::Int(IntCol::default()),
            AttributeKind::Boolean => Column::Bool(BoolCol::default()),
            AttributeKind::Nominal | AttributeKind::Ordinal => Column::Cat(CatCol::default()),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Float(c) => c.len(),
            Column::Int(c) => c.len(),
            Column::Bool(c) => c.len(),
            Column::Cat(c) => c.len(),
        }
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-only typed view.
    pub fn view(&self) -> ColumnView<'_> {
        match self {
            Column::Float(c) => ColumnView::Float(c),
            Column::Int(c) => ColumnView::Int(c),
            Column::Bool(c) => ColumnView::Bool(c),
            Column::Cat(c) => ColumnView::Cat(c),
        }
    }

    /// Converts integer storage to float storage in place (one O(n) pass).
    ///
    /// Integer attributes legally receive fractional `Float` cells from
    /// maskers (microaggregation and Mondrian write partition means); the
    /// first such write promotes the whole column. Promoted cells
    /// materialize as `Value::Float`, which compares `group_eq`-equal to
    /// the original `Int` representation.
    pub fn promote_to_float(&mut self) {
        if let Column::Int(c) = self {
            let data: Vec<f64> = c
                .values()
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    if c.is_missing(i) {
                        FLOAT_FILL
                    } else {
                        v as f64
                    }
                })
                .collect();
            *self = Column::Float(FloatCol {
                data,
                missing: c.missing.clone(),
            });
        }
    }

    /// Appends `v`, promoting integer storage when a `Float` arrives.
    ///
    /// The value must already satisfy `Schema::value_fits` for the owning
    /// attribute; violations panic.
    pub fn push(&mut self, v: &Value) {
        if matches!(self, Column::Int(_)) && matches!(v, Value::Float(_)) {
            self.promote_to_float();
        }
        match (self, v) {
            (Column::Float(c), Value::Missing) => c.push(None),
            (Column::Float(c), v) => c.push(Some(v.as_f64().expect("numeric cell"))),
            (Column::Int(c), Value::Missing) => c.push(None),
            (Column::Int(c), Value::Int(i)) => c.push(Some(*i)),
            (Column::Bool(c), Value::Missing) => c.push(None),
            (Column::Bool(c), Value::Bool(b)) => c.push(Some(*b)),
            (Column::Cat(c), Value::Missing) => c.push(None),
            (Column::Cat(c), v @ (Value::Str(_) | Value::Int(_))) => c.push(Some(v)),
            (col, v) => panic!(
                "value kind {} does not fit column layout {}",
                v.type_name(),
                col.layout_name()
            ),
        }
    }

    /// Overwrites cell `i`, promoting integer storage when a `Float` arrives.
    pub fn set(&mut self, i: usize, v: &Value) {
        if matches!(self, Column::Int(_)) && matches!(v, Value::Float(_)) {
            self.promote_to_float();
        }
        match (self, v) {
            (Column::Float(c), Value::Missing) => c.set(i, None),
            (Column::Float(c), v) => c.set(i, Some(v.as_f64().expect("numeric cell"))),
            (Column::Int(c), Value::Missing) => c.set(i, None),
            (Column::Int(c), Value::Int(x)) => c.set(i, Some(*x)),
            (Column::Bool(c), Value::Missing) => c.set(i, None),
            (Column::Bool(c), Value::Bool(b)) => c.set(i, Some(*b)),
            (Column::Cat(c), Value::Missing) => c.set(i, None),
            (Column::Cat(c), v @ (Value::Str(_) | Value::Int(_))) => c.set(i, Some(v)),
            (col, v) => panic!(
                "value kind {} does not fit column layout {}",
                v.type_name(),
                col.layout_name()
            ),
        }
    }

    /// Swaps cells `i` and `j` without changing representation.
    pub fn swap(&mut self, i: usize, j: usize) {
        match self {
            Column::Float(c) => {
                c.data.swap(i, j);
                let (a, b) = (c.missing.get(i), c.missing.get(j));
                c.missing.set(i, b);
                c.missing.set(j, a);
            }
            Column::Int(c) => {
                c.data.swap(i, j);
                let (a, b) = (c.missing.get(i), c.missing.get(j));
                c.missing.set(i, b);
                c.missing.set(j, a);
            }
            Column::Bool(c) => {
                let (a, b) = (c.data.get(i), c.data.get(j));
                c.data.set(i, b);
                c.data.set(j, a);
                let (a, b) = (c.missing.get(i), c.missing.get(j));
                c.missing.set(i, b);
                c.missing.set(j, a);
            }
            Column::Cat(c) => {
                c.codes.swap(i, j);
                let (a, b) = (c.missing.get(i), c.missing.get(j));
                c.missing.set(i, b);
                c.missing.set(j, a);
            }
        }
    }

    /// Materializes cell `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        self.view().get(i)
    }

    /// True when cell `i` is missing.
    pub fn is_missing(&self, i: usize) -> bool {
        match self {
            Column::Float(c) => c.is_missing(i),
            Column::Int(c) => c.is_missing(i),
            Column::Bool(c) => c.is_missing(i),
            Column::Cat(c) => c.is_missing(i),
        }
    }

    /// New column holding cells `idx` in order (row gather).
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Float(c) => {
                let mut out = FloatCol::default();
                for &i in idx {
                    out.push(c.opt(i));
                }
                Column::Float(out)
            }
            Column::Int(c) => {
                let mut out = IntCol::default();
                for &i in idx {
                    out.push(c.opt(i));
                }
                Column::Int(out)
            }
            Column::Bool(c) => {
                let mut out = BoolCol::default();
                for &i in idx {
                    out.push(c.opt(i));
                }
                Column::Bool(out)
            }
            Column::Cat(c) => {
                // Keep the dictionary (and thus code stability) intact;
                // only the per-row codes are gathered.
                let mut out = CatCol {
                    pool: c.pool.clone(),
                    index: c.index.clone(),
                    codes: Vec::with_capacity(idx.len()),
                    missing: Bitmap::new(),
                };
                for &i in idx {
                    out.codes.push(c.codes[i]);
                    out.missing.push(c.missing.get(i));
                }
                Column::Cat(out)
            }
        }
    }

    /// Appends every cell of `other` (vertical union). Categorical codes
    /// are remapped through this column's dictionary.
    pub fn append(&mut self, other: &Column) {
        // Mixed Int/Float storage for the same integer attribute can arise
        // when one side was promoted; promote ours first in that case.
        if matches!(self, Column::Int(_)) && matches!(other, Column::Float(_)) {
            self.promote_to_float();
        }
        match (self, other) {
            (Column::Float(a), Column::Float(b)) => {
                for i in 0..b.len() {
                    a.push(b.opt(i));
                }
            }
            (Column::Float(a), Column::Int(b)) => {
                for i in 0..b.len() {
                    a.push(b.opt(i).map(|v| v as f64));
                }
            }
            (Column::Int(a), Column::Int(b)) => {
                for i in 0..b.len() {
                    a.push(b.opt(i));
                }
            }
            (Column::Bool(a), Column::Bool(b)) => {
                for i in 0..b.len() {
                    a.push(b.opt(i));
                }
            }
            (Column::Cat(a), Column::Cat(b)) => {
                for i in 0..b.len() {
                    a.push(b.value_ref(i));
                }
            }
            (a, b) => panic!(
                "cannot append column layout {} onto {}",
                b.layout_name(),
                a.layout_name()
            ),
        }
    }

    /// Approximate heap bytes held by this column's buffers (payload +
    /// bitmaps + dictionary). Used by the segment cache to charge sealed
    /// segments against the `TDF_SEGCACHE` byte budget.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Column::Float(c) => c.data.len() * 8 + c.missing.heap_bytes(),
            Column::Int(c) => c.data.len() * 8 + c.missing.heap_bytes(),
            Column::Bool(c) => c.data.heap_bytes() + c.missing.heap_bytes(),
            Column::Cat(c) => {
                let pool: usize = c
                    .pool
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => s.len() + 24,
                        _ => 16,
                    })
                    .sum();
                c.codes.len() * 4 + c.missing.heap_bytes() + pool
            }
        }
    }

    fn layout_name(&self) -> &'static str {
        match self {
            Column::Float(_) => "float",
            Column::Int(_) => "int",
            Column::Bool(_) => "bool",
            Column::Cat(_) => "cat",
        }
    }
}

/// Packed per-cell grouping key: payload bits plus a missing flag.
///
/// Within one column the mapping cell → key is injective w.r.t.
/// `Value::group_eq` (float cells key on `f64::to_bits`, whose equality is
/// exactly `f64::total_cmp` equality; categorical cells key on their
/// dictionary code, which interns by the same equality), so grouping on
/// packed keys produces the same partition as grouping on cloned `Value`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey(u64, bool);

/// Zero-copy read-only view of one column.
#[derive(Debug, Clone, Copy)]
pub enum ColumnView<'a> {
    /// Continuous storage.
    Float(&'a FloatCol),
    /// Integer storage.
    Int(&'a IntCol),
    /// Boolean storage.
    Bool(&'a BoolCol),
    /// Dictionary-encoded categorical storage.
    Cat(&'a CatCol),
}

impl<'a> ColumnView<'a> {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            ColumnView::Float(c) => c.len(),
            ColumnView::Int(c) => c.len(),
            ColumnView::Bool(c) => c.len(),
            ColumnView::Cat(c) => c.len(),
        }
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when cell `i` is missing.
    pub fn is_missing(&self, i: usize) -> bool {
        match self {
            ColumnView::Float(c) => c.is_missing(i),
            ColumnView::Int(c) => c.is_missing(i),
            ColumnView::Bool(c) => c.is_missing(i),
            ColumnView::Cat(c) => c.is_missing(i),
        }
    }

    /// Materializes cell `i` into an owned [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnView::Float(c) => c.opt(i).map_or(Value::Missing, Value::Float),
            ColumnView::Int(c) => c.opt(i).map_or(Value::Missing, Value::Int),
            ColumnView::Bool(c) => c.opt(i).map_or(Value::Missing, Value::Bool),
            ColumnView::Cat(c) => c.value_ref(i).cloned().unwrap_or(Value::Missing),
        }
    }

    /// Numeric view of cell `i` (same semantics as `Value::as_f64`).
    pub fn f64(&self, i: usize) -> Option<f64> {
        match self {
            ColumnView::Float(c) => c.opt(i),
            ColumnView::Int(c) => c.opt(i).map(|v| v as f64),
            ColumnView::Bool(c) => c.opt(i).map(|b| if b { 1.0 } else { 0.0 }),
            ColumnView::Cat(c) => c.value_ref(i).and_then(Value::as_f64),
        }
    }

    /// Equality of cells `i` and `j` under `Value::group_eq`, without
    /// materializing either cell.
    pub fn group_eq(&self, i: usize, j: usize) -> bool {
        match self {
            ColumnView::Float(c) => match (c.opt(i), c.opt(j)) {
                (Some(a), Some(b)) => a.total_cmp(&b) == Ordering::Equal,
                (None, None) => true,
                _ => false,
            },
            ColumnView::Int(c) => c.opt(i) == c.opt(j),
            ColumnView::Bool(c) => c.opt(i) == c.opt(j),
            ColumnView::Cat(c) => c.code(i) == c.code(j),
        }
    }

    /// `Value::total_cmp` between cell `i` and `other`, without cloning.
    pub fn cmp_value(&self, i: usize, other: &Value) -> Ordering {
        match self {
            ColumnView::Float(c) => c
                .opt(i)
                .map_or(Value::Missing, Value::Float)
                .total_cmp(other),
            ColumnView::Int(c) => c.opt(i).map_or(Value::Missing, Value::Int).total_cmp(other),
            ColumnView::Bool(c) => c
                .opt(i)
                .map_or(Value::Missing, Value::Bool)
                .total_cmp(other),
            ColumnView::Cat(c) => match c.value_ref(i) {
                Some(v) => v.total_cmp(other),
                None => Value::Missing.total_cmp(other),
            },
        }
    }

    /// Packed grouping key for cell `i` (see [`CellKey`]).
    pub fn key(&self, i: usize) -> CellKey {
        match self {
            ColumnView::Float(c) => match c.opt(i) {
                Some(x) => CellKey(x.to_bits(), false),
                None => CellKey(0, true),
            },
            ColumnView::Int(c) => match c.opt(i) {
                Some(x) => CellKey(x as u64, false),
                None => CellKey(0, true),
            },
            ColumnView::Bool(c) => match c.opt(i) {
                Some(b) => CellKey(b as u64, false),
                None => CellKey(0, true),
            },
            ColumnView::Cat(c) => match c.code(i) {
                Some(code) => CellKey(code as u64, false),
                None => CellKey(0, true),
            },
        }
    }

    /// The underlying float column, when float-backed.
    pub fn as_float(&self) -> Option<&'a FloatCol> {
        match self {
            ColumnView::Float(c) => Some(c),
            _ => None,
        }
    }

    /// The underlying categorical column, when dictionary-encoded.
    pub fn as_cat(&self) -> Option<&'a CatCol> {
        match self {
            ColumnView::Cat(c) => Some(c),
            _ => None,
        }
    }

    /// Contiguous `f64` image of a numeric (or boolean) column.
    ///
    /// Zero-copy for float-backed columns, one conversion pass for
    /// integer / boolean storage, `None` for categorical columns (whose
    /// `Int` members still answer through [`ColumnView::f64`]).
    pub fn f64_cells(&self) -> Option<F64Cells<'a>> {
        match self {
            ColumnView::Float(c) => Some(F64Cells {
                vals: Cow::Borrowed(c.values()),
                missing: c.missing(),
            }),
            ColumnView::Int(c) => Some(F64Cells {
                vals: Cow::Owned(c.values().iter().map(|&v| v as f64).collect()),
                missing: c.missing(),
            }),
            ColumnView::Bool(c) => Some(F64Cells {
                vals: Cow::Owned(
                    (0..c.len())
                        .map(|i| if c.bits().get(i) { 1.0 } else { 0.0 })
                        .collect(),
                ),
                missing: c.missing(),
            }),
            ColumnView::Cat(_) => None,
        }
    }
}

/// Contiguous `f64` image of a column: `vals[i]` is meaningful iff
/// `!missing.get(i)` (missing slots hold `0.0`).
pub struct F64Cells<'a> {
    /// The per-row values (borrowed straight from float storage).
    pub vals: Cow<'a, [f64]>,
    /// The missing bitmap.
    pub missing: &'a Bitmap,
}

impl F64Cells<'_> {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Cell `i` as an `Option<f64>`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<f64> {
        if self.missing.get(i) {
            None
        } else {
            Some(self.vals[i])
        }
    }

    /// True when no cell is missing (enables branch-free scans).
    #[inline]
    pub fn all_present(&self) -> bool {
        self.missing.none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_codes_are_stable_under_push_order() {
        let mut c = CatCol::default();
        for v in ["b", "a", "b", "c", "a"] {
            c.push(Some(&Value::Str(v.into())));
        }
        assert_eq!(c.codes(), &[0, 1, 0, 2, 1]);
        assert_eq!(c.pool().len(), 3);
        assert_eq!(c.decode(0), &Value::Str("b".into()));
        assert_eq!(c.decode(2), &Value::Str("c".into()));
    }

    #[test]
    fn cat_interning_dedups_and_mixes_int_str() {
        let mut c = CatCol::default();
        let a = c.intern(&Value::Str("3".into()));
        let b = c.intern(&Value::Int(3));
        let a2 = c.intern(&Value::Str("3".into()));
        assert_eq!(a, a2);
        assert_ne!(a, b, "Str(\"3\") and Int(3) are distinct categories");
        assert_eq!(c.num_categories(), 2);
    }

    #[test]
    fn missing_bitmap_at_word_boundaries() {
        for n in [63usize, 64, 65] {
            let mut c = CatCol::default();
            for i in 0..n {
                if i == n - 1 {
                    c.push(None);
                } else {
                    c.push(Some(&Value::Str(format!("v{}", i % 5))));
                }
            }
            assert_eq!(c.len(), n);
            assert!(c.is_missing(n - 1), "n = {n}");
            assert_eq!(c.missing().count_ones(), 1, "n = {n}");
            assert_eq!(c.value_ref(n - 1), None);
            assert_eq!(c.get_value(0), Value::Str("v0".into()));
        }
    }

    #[test]
    fn int_column_promotes_on_float_write() {
        let mut col = Column::for_kind(AttributeKind::Integer);
        col.push(&Value::Int(30));
        col.push(&Value::Missing);
        col.push(&Value::Int(41));
        col.set(2, &Value::Float(35.5));
        assert!(matches!(col, Column::Float(_)));
        assert_eq!(col.get(0), Value::Float(30.0));
        assert_eq!(
            col.get(0),
            Value::Int(30),
            "group_eq across representations"
        );
        assert!(col.get(1).is_missing());
        assert_eq!(col.get(2), Value::Float(35.5));
    }

    #[test]
    fn cat_logical_eq_ignores_dictionary_order() {
        let mut a = CatCol::default();
        let mut b = CatCol::default();
        a.intern(&Value::Str("zzz".into())); // extra unused category
        for v in ["x", "y"] {
            a.push(Some(&Value::Str(v.into())));
        }
        for v in ["y", "x"] {
            b.push(Some(&Value::Str(v.into())));
        }
        b.swap_rows_for_test();
        assert_eq!(a, b);
    }

    impl CatCol {
        fn get_value(&self, i: usize) -> Value {
            self.value_ref(i).cloned().unwrap_or(Value::Missing)
        }
        fn swap_rows_for_test(&mut self) {
            self.codes.swap(0, 1);
        }
    }
}
