//! Attribute definitions: kind (statistical type) and disclosure role.

/// Statistical type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeKind {
    /// Real-valued (height in cm, income in EUR).
    Continuous,
    /// Integer-valued but treated numerically (age in years).
    Integer,
    /// Unordered categories (diagnosis code, city).
    Nominal,
    /// Ordered categories, stored as strings with an external order
    /// (education level). Masking methods may exploit the order.
    Ordinal,
    /// Two-valued flag (the paper's AIDS Y/N column).
    Boolean,
}

impl AttributeKind {
    /// Whether values of this kind can be averaged / perturbed numerically.
    pub fn is_numeric(self) -> bool {
        matches!(self, AttributeKind::Continuous | AttributeKind::Integer)
    }
}

/// Disclosure role of an attribute, following the taxonomy of §2 of the
/// paper (after Dalenius [9] and Samarati [20]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeRole {
    /// Directly identifies the respondent; removed before any processing.
    Identifier,
    /// *Key attribute*: identifies with some ambiguity when linked with
    /// external data (the paper's height and weight).
    QuasiIdentifier,
    /// Sensitive payload whose association with an identity must be
    /// prevented (blood pressure, AIDS).
    Confidential,
    /// Neither identifying nor sensitive.
    NonConfidential,
}

/// One column of a microdata schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Column name, unique within a schema.
    pub name: String,
    /// Statistical type.
    pub kind: AttributeKind,
    /// Disclosure role.
    pub role: AttributeRole,
}

impl AttributeDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: AttributeKind, role: AttributeRole) -> Self {
        Self {
            name: name.into(),
            kind,
            role,
        }
    }

    /// A continuous quasi-identifier (the most common case in this repo).
    pub fn continuous_qi(name: impl Into<String>) -> Self {
        Self::new(
            name,
            AttributeKind::Continuous,
            AttributeRole::QuasiIdentifier,
        )
    }

    /// A continuous confidential attribute.
    pub fn continuous_confidential(name: impl Into<String>) -> Self {
        Self::new(name, AttributeKind::Continuous, AttributeRole::Confidential)
    }

    /// A boolean confidential attribute (e.g. AIDS in Table 1).
    pub fn boolean_confidential(name: impl Into<String>) -> Self {
        Self::new(name, AttributeKind::Boolean, AttributeRole::Confidential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_kinds() {
        assert!(AttributeKind::Continuous.is_numeric());
        assert!(AttributeKind::Integer.is_numeric());
        assert!(!AttributeKind::Nominal.is_numeric());
        assert!(!AttributeKind::Ordinal.is_numeric());
        assert!(!AttributeKind::Boolean.is_numeric());
    }

    #[test]
    fn constructors_set_roles() {
        let a = AttributeDef::continuous_qi("height");
        assert_eq!(a.role, AttributeRole::QuasiIdentifier);
        assert_eq!(a.kind, AttributeKind::Continuous);
        let b = AttributeDef::boolean_confidential("aids");
        assert_eq!(b.role, AttributeRole::Confidential);
        assert_eq!(b.kind, AttributeKind::Boolean);
    }
}
