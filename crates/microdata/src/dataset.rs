//! The central [`Dataset`] type: a schema plus rows of values.

use crate::attribute::AttributeRole;
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A microdata table: one record per respondent.
///
/// Rows are stored row-major; the row index is the *respondent identity* for
/// the purposes of re-identification experiments (an attacker "re-identifies"
/// a respondent when it correctly recovers a row index of the original
/// dataset from released information).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Dataset {
    /// Creates an empty dataset over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a dataset and bulk-loads `rows`, validating each.
    pub fn with_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut d = Self::new(schema);
        for row in rows {
            d.push_row(row)?;
        }
        Ok(d)
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of attributes.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// True when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a record after arity and type validation.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            if !self.schema.value_fits(i, v) {
                return Err(Error::TypeMismatch {
                    attribute: self.schema.attribute(i).name.clone(),
                    expected: "value compatible with attribute kind",
                    got: v.type_name(),
                });
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Borrow record `i`.
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i]
    }

    /// All records.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Mutable access to record `i` (used by in-place maskers).
    pub fn row_mut(&mut self, i: usize) -> &mut [Value] {
        &mut self.rows[i]
    }

    /// Cell at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    /// Overwrites the cell at (`row`, `col`) after type validation.
    pub fn set_value(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        if !self.schema.value_fits(col, &value) {
            return Err(Error::TypeMismatch {
                attribute: self.schema.attribute(col).name.clone(),
                expected: "value compatible with attribute kind",
                got: value.type_name(),
            });
        }
        self.rows[row][col] = value;
        Ok(())
    }

    /// Column `col` as a vector of owned values.
    pub fn column(&self, col: usize) -> Vec<Value> {
        self.rows.iter().map(|r| r[col].clone()).collect()
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<Vec<Value>> {
        Ok(self.column(self.schema.index_of(name)?))
    }

    /// Numeric view of a column; missing / non-numeric cells are skipped.
    pub fn numeric_column(&self, col: usize) -> Vec<f64> {
        self.rows.iter().filter_map(|r| r[col].as_f64()).collect()
    }

    /// Numeric view of a column, erroring if the attribute kind is not
    /// numeric; missing cells become `None`.
    pub fn numeric_column_checked(&self, col: usize) -> Result<Vec<Option<f64>>> {
        if !self.schema.attribute(col).kind.is_numeric() {
            return Err(Error::NotNumeric(self.schema.attribute(col).name.clone()));
        }
        Ok(self.rows.iter().map(|r| r[col].as_f64()).collect())
    }

    /// New dataset with only the given column indices.
    pub fn project(&self, cols: &[usize]) -> Dataset {
        let schema = self.schema.project(cols);
        let rows = self
            .rows
            .iter()
            .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
            .collect();
        Dataset { schema, rows }
    }

    /// New dataset with the records for which `predicate` returns true.
    pub fn filter(&self, predicate: impl Fn(&[Value]) -> bool) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|r| predicate(r)).cloned().collect(),
        }
    }

    /// Indices of the records matching `predicate` (the *query set* of the
    /// inference-control literature).
    pub fn matching_indices(&self, predicate: impl Fn(&[Value]) -> bool) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| predicate(r))
            .map(|(i, _)| i)
            .collect()
    }

    /// Groups record indices by their combination of values on `cols`.
    ///
    /// This is the *equivalence class* partition w.r.t. a quasi-identifier
    /// set: the building block of every k-anonymity computation.
    pub fn group_indices_by(&self, cols: &[usize]) -> BTreeMap<Vec<Value>, Vec<usize>> {
        let mut groups: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            groups.entry(key).or_default().push(i);
        }
        groups
    }

    /// Convenience: the quasi-identifier partition of this dataset.
    pub fn quasi_identifier_groups(&self) -> BTreeMap<Vec<Value>, Vec<usize>> {
        self.group_indices_by(&self.schema.quasi_identifier_indices())
    }

    /// Removes identifier columns, returning a projection without them
    /// (step zero of every release pipeline).
    pub fn drop_identifiers(&self) -> Dataset {
        let keep: Vec<usize> = (0..self.schema.len())
            .filter(|&i| self.schema.attribute(i).role != AttributeRole::Identifier)
            .collect();
        self.project(&keep)
    }

    /// Vertical merge of two datasets over the same schema.
    pub fn union(&self, other: &Dataset) -> Result<Dataset> {
        if self.schema != other.schema {
            return Err(Error::SchemaMismatch);
        }
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Ok(Dataset {
            schema: self.schema.clone(),
            rows,
        })
    }

    /// Splits the records into `parts` nearly-equal horizontal partitions
    /// (used to distribute data among SMC parties).
    pub fn horizontal_partition(&self, parts: usize) -> Vec<Dataset> {
        assert!(parts > 0, "parts must be positive");
        let mut out: Vec<Dataset> = (0..parts)
            .map(|_| Dataset::new(self.schema.clone()))
            .collect();
        for (i, row) in self.rows.iter().enumerate() {
            out[i % parts].rows.push(row.clone());
        }
        out
    }

    /// Renders an ASCII table in the style of the paper's Table 1.
    pub fn to_ascii_table(&self) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        for (i, n) in names.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", n, w = widths[i]));
        }
        s.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeDef;

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::continuous_qi("height"),
            AttributeDef::continuous_qi("weight"),
            AttributeDef::continuous_confidential("bp"),
            AttributeDef::boolean_confidential("aids"),
        ])
        .unwrap()
    }

    fn sample() -> Dataset {
        Dataset::with_rows(
            schema(),
            vec![
                vec![175.0.into(), 80.0.into(), 135.0.into(), true.into()],
                vec![175.0.into(), 80.0.into(), 128.0.into(), false.into()],
                vec![180.0.into(), 95.0.into(), 140.0.into(), false.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_row_validates_arity() {
        let mut d = Dataset::new(schema());
        let err = d.push_row(vec![Value::Float(1.0)]).unwrap_err();
        assert!(matches!(
            err,
            Error::ArityMismatch {
                expected: 4,
                got: 1
            }
        ));
    }

    #[test]
    fn push_row_validates_types() {
        let mut d = Dataset::new(schema());
        let err = d
            .push_row(vec!["tall".into(), 80.0.into(), 135.0.into(), true.into()])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
    }

    #[test]
    fn grouping_by_quasi_identifiers() {
        let d = sample();
        let groups = d.quasi_identifier_groups();
        assert_eq!(groups.len(), 2);
        let g = groups
            .get(&vec![Value::Float(175.0), Value::Float(80.0)])
            .unwrap();
        assert_eq!(g, &vec![0, 1]);
    }

    #[test]
    fn projection_and_filter() {
        let d = sample();
        let p = d.project(&[0, 3]);
        assert_eq!(p.num_columns(), 2);
        assert_eq!(p.value(0, 1), &Value::Bool(true));
        let f = d.filter(|r| r[3] == Value::Bool(false));
        assert_eq!(f.num_rows(), 2);
    }

    #[test]
    fn union_requires_same_schema() {
        let d = sample();
        let other = Dataset::new(Schema::new(vec![AttributeDef::continuous_qi("x")]).unwrap());
        assert!(matches!(d.union(&other), Err(Error::SchemaMismatch)));
        let u = d.union(&sample()).unwrap();
        assert_eq!(u.num_rows(), 6);
    }

    #[test]
    fn horizontal_partition_covers_all_rows() {
        let d = sample();
        let parts = d.horizontal_partition(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(Dataset::num_rows).sum::<usize>(), 3);
        assert_eq!(parts[0].num_rows(), 2);
    }

    #[test]
    fn ascii_table_contains_headers_and_values() {
        let t = sample().to_ascii_table();
        assert!(t.contains("height"));
        assert!(t.contains("135"));
        assert!(t.contains('Y'));
    }

    #[test]
    fn set_value_validates() {
        let mut d = sample();
        assert!(d.set_value(0, 0, Value::Missing).is_ok());
        assert!(d.set_value(0, 3, Value::Int(1)).is_err());
        assert!(d.value(0, 0).is_missing());
    }

    #[test]
    fn matching_indices_is_query_set() {
        let d = sample();
        let idx = d.matching_indices(|r| r[1].as_f64().unwrap() > 90.0);
        assert_eq!(idx, vec![2]);
    }
}
