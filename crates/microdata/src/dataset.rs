//! The central [`Dataset`] type: a schema plus typed columnar storage.

use crate::attribute::AttributeRole;
use crate::column::{CellKey, Column, ColumnView, F64Cells};
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A microdata table: one record per respondent.
///
/// Storage is *columnar*: each attribute owns one typed contiguous buffer
/// (see [`crate::column`]) — `Vec<f64>` / `Vec<i64>` with word-packed
/// missing bitmaps for numeric attributes, packed bits for booleans, and a
/// dictionary (interned value pool + `u32` codes) for categoricals. Kernels
/// read through [`Dataset::col`] / [`Dataset::f64_cells`] and scan the
/// buffers directly; [`Dataset::row`] and [`Dataset::rows`] remain as
/// *materializing* compatibility shims for row-oriented callers.
///
/// The row index is the *respondent identity* for the purposes of
/// re-identification experiments (an attacker "re-identifies" a respondent
/// when it correctly recovers a row index of the original dataset from
/// released information).
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Dataset {
    /// Creates an empty dataset over `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.len())
            .map(|i| Column::for_kind(schema.attribute(i).kind))
            .collect();
        Self {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// Creates a dataset and bulk-loads `rows`, validating each.
    pub fn with_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut d = Self::new(schema);
        for row in rows {
            d.push_row(row)?;
        }
        Ok(d)
    }

    /// Rebuilds a dataset from already-typed columns (the segment-spill
    /// codec's reload path). Every column must hold the same number of
    /// cells and match its attribute's storage layout.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(Error::ArityMismatch {
                expected: schema.len(),
                got: columns.len(),
            });
        }
        let num_rows = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != num_rows) {
            return Err(Error::Serial("ragged column lengths".into()));
        }
        Ok(Self {
            schema,
            columns,
            num_rows,
        })
    }

    /// The typed column storage, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Approximate heap bytes held by the column buffers (the segment
    /// cache charges sealed segments at this size).
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(Column::heap_bytes).sum()
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of attributes.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// True when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Appends a record after arity and type validation.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            if !self.schema.value_fits(i, v) {
                return Err(Error::TypeMismatch {
                    attribute: self.schema.attribute(i).name.clone(),
                    expected: "value compatible with attribute kind",
                    got: v.type_name(),
                });
            }
        }
        for (c, v) in row.iter().enumerate() {
            self.columns[c].push(v);
        }
        self.num_rows += 1;
        Ok(())
    }

    /// Materializes record `i` (compatibility shim; columnar callers
    /// should read through [`Dataset::col`] instead).
    pub fn row(&self, i: usize) -> Vec<Value> {
        assert!(i < self.num_rows, "row {i} out of bounds");
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Materializes every record (compatibility shim for row-oriented
    /// callers; allocates the full table).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.num_rows).map(|i| self.row(i)).collect()
    }

    /// Materializes the cell at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Overwrites the cell at (`row`, `col`) after type validation.
    pub fn set_value(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        if !self.schema.value_fits(col, &value) {
            return Err(Error::TypeMismatch {
                attribute: self.schema.attribute(col).name.clone(),
                expected: "value compatible with attribute kind",
                got: value.type_name(),
            });
        }
        assert!(row < self.num_rows, "row {row} out of bounds");
        self.columns[col].set(row, &value);
        Ok(())
    }

    /// Swaps the cells at rows `a` and `b` of column `col` in place,
    /// without changing their representation (used by rank swapping).
    pub fn swap_cells(&mut self, a: usize, b: usize, col: usize) {
        assert!(a < self.num_rows && b < self.num_rows);
        self.columns[col].swap(a, b);
    }

    /// Zero-copy typed view of column `col`.
    pub fn col(&self, col: usize) -> ColumnView<'_> {
        self.columns[col].view()
    }

    /// Contiguous `f64` image of a numeric / boolean column (zero-copy for
    /// float-backed storage); `None` for categorical columns.
    pub fn f64_cells(&self, col: usize) -> Option<F64Cells<'_>> {
        self.col(col).f64_cells()
    }

    /// Mutable float storage for column `col`. Integer storage is promoted
    /// to floats first; errors on non-numeric attributes.
    pub fn float_col_mut(&mut self, col: usize) -> Result<&mut crate::column::FloatCol> {
        if !self.schema.attribute(col).kind.is_numeric() {
            return Err(Error::NotNumeric(self.schema.attribute(col).name.clone()));
        }
        self.columns[col].promote_to_float();
        match &mut self.columns[col] {
            Column::Float(c) => Ok(c),
            _ => unreachable!("numeric column promoted to float storage"),
        }
    }

    /// Mutable dictionary-encoded storage for categorical column `col`.
    pub fn cat_col_mut(&mut self, col: usize) -> Result<&mut crate::column::CatCol> {
        match &mut self.columns[col] {
            Column::Cat(c) => Ok(c),
            _ => Err(Error::TypeMismatch {
                attribute: self.schema.attribute(col).name.clone(),
                expected: "categorical (nominal / ordinal) attribute",
                got: "non-categorical storage",
            }),
        }
    }

    /// Mutable packed-bit storage for boolean column `col`.
    pub fn bool_col_mut(&mut self, col: usize) -> Result<&mut crate::column::BoolCol> {
        match &mut self.columns[col] {
            Column::Bool(c) => Ok(c),
            _ => Err(Error::TypeMismatch {
                attribute: self.schema.attribute(col).name.clone(),
                expected: "boolean attribute",
                got: "non-boolean storage",
            }),
        }
    }

    /// Column `col` as a vector of owned values (materializing).
    pub fn column(&self, col: usize) -> Vec<Value> {
        let view = self.col(col);
        (0..self.num_rows).map(|i| view.get(i)).collect()
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<Vec<Value>> {
        Ok(self.column(self.schema.index_of(name)?))
    }

    /// Numeric view of a column; missing / non-numeric cells are skipped.
    pub fn numeric_column(&self, col: usize) -> Vec<f64> {
        let view = self.col(col);
        match view.f64_cells() {
            Some(cells) => {
                if cells.all_present() {
                    cells.vals.to_vec()
                } else {
                    (0..self.num_rows).filter_map(|i| cells.get(i)).collect()
                }
            }
            // Categorical columns may intern numeric `Int` codes.
            None => (0..self.num_rows).filter_map(|i| view.f64(i)).collect(),
        }
    }

    /// Numeric view of a column, erroring if the attribute kind is not
    /// numeric; missing cells become `None`.
    pub fn numeric_column_checked(&self, col: usize) -> Result<Vec<Option<f64>>> {
        if !self.schema.attribute(col).kind.is_numeric() {
            return Err(Error::NotNumeric(self.schema.attribute(col).name.clone()));
        }
        let view = self.col(col);
        Ok((0..self.num_rows).map(|i| view.f64(i)).collect())
    }

    /// New dataset with only the given column indices.
    pub fn project(&self, cols: &[usize]) -> Dataset {
        let schema = self.schema.project(cols);
        let columns = cols.iter().map(|&c| self.columns[c].clone()).collect();
        Dataset {
            schema,
            columns,
            num_rows: self.num_rows,
        }
    }

    /// New dataset holding rows `idx` in order (columnar gather; `idx` may
    /// repeat or reorder rows).
    pub fn take(&self, idx: &[usize]) -> Dataset {
        if let Some(&bad) = idx.iter().find(|&&i| i >= self.num_rows) {
            panic!("row {bad} out of bounds");
        }
        Dataset {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(idx)).collect(),
            num_rows: idx.len(),
        }
    }

    /// New dataset with the records for which `predicate` returns true.
    pub fn filter(&self, predicate: impl Fn(&[Value]) -> bool) -> Dataset {
        self.take(&self.matching_indices(predicate))
    }

    /// Indices of the records matching `predicate` (the *query set* of the
    /// inference-control literature).
    pub fn matching_indices(&self, predicate: impl Fn(&[Value]) -> bool) -> Vec<usize> {
        (0..self.num_rows)
            .filter(|&i| predicate(&self.row(i)))
            .collect()
    }

    /// Groups record indices by their combination of values on `cols`.
    ///
    /// This is the *equivalence class* partition w.r.t. a quasi-identifier
    /// set: the building block of every k-anonymity computation. The scan
    /// groups on packed per-column keys (float bits / dictionary codes, one
    /// `u64` per cell — no `Value` clones); only one representative key per
    /// group is materialized for the returned map.
    pub fn group_indices_by(&self, cols: &[usize]) -> BTreeMap<Vec<Value>, Vec<usize>> {
        let views: Vec<ColumnView<'_>> = cols.iter().map(|&c| self.col(c)).collect();
        let mut packed: HashMap<Vec<CellKey>, Vec<usize>> = HashMap::new();
        for i in 0..self.num_rows {
            let key: Vec<CellKey> = views.iter().map(|v| v.key(i)).collect();
            packed.entry(key).or_default().push(i);
        }
        let mut groups: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
        for (_, members) in packed {
            let rep = members[0];
            let key: Vec<Value> = views.iter().map(|v| v.get(rep)).collect();
            groups.insert(key, members);
        }
        groups
    }

    /// Convenience: the quasi-identifier partition of this dataset.
    pub fn quasi_identifier_groups(&self) -> BTreeMap<Vec<Value>, Vec<usize>> {
        self.group_indices_by(&self.schema.quasi_identifier_indices())
    }

    /// Removes identifier columns, returning a projection without them
    /// (step zero of every release pipeline).
    pub fn drop_identifiers(&self) -> Dataset {
        let keep: Vec<usize> = (0..self.schema.len())
            .filter(|&i| self.schema.attribute(i).role != AttributeRole::Identifier)
            .collect();
        self.project(&keep)
    }

    /// Vertical merge of two datasets over the same schema.
    pub fn union(&self, other: &Dataset) -> Result<Dataset> {
        if self.schema != other.schema {
            return Err(Error::SchemaMismatch);
        }
        let mut columns = self.columns.clone();
        for (a, b) in columns.iter_mut().zip(&other.columns) {
            a.append(b);
        }
        Ok(Dataset {
            schema: self.schema.clone(),
            columns,
            num_rows: self.num_rows + other.num_rows,
        })
    }

    /// Splits the records into `parts` nearly-equal horizontal partitions
    /// (used to distribute data among SMC parties).
    pub fn horizontal_partition(&self, parts: usize) -> Vec<Dataset> {
        assert!(parts > 0, "parts must be positive");
        (0..parts)
            .map(|p| {
                let idx: Vec<usize> = (p..self.num_rows).step_by(parts).collect();
                self.take(&idx)
            })
            .collect()
    }

    /// Renders an ASCII table in the style of the paper's Table 1.
    pub fn to_ascii_table(&self) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let cells: Vec<Vec<String>> = (0..self.num_rows)
            .map(|i| self.row(i).iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        for (i, n) in names.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", n, w = widths[i]));
        }
        s.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            s.push('\n');
        }
        s
    }
}

impl PartialEq for Dataset {
    /// Cell-wise logical equality under `Value::group_eq`: storage details
    /// (dictionary order, int vs promoted-float backing) do not matter.
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema || self.num_rows != other.num_rows {
            return false;
        }
        self.columns
            .iter()
            .zip(&other.columns)
            .all(|(a, b)| columns_logically_eq(a, b, self.num_rows))
    }
}

fn columns_logically_eq(a: &Column, b: &Column, n: usize) -> bool {
    match (a, b) {
        // Same layout: compare storage directly (fast path).
        (Column::Int(x), Column::Int(y)) => x == y,
        (Column::Bool(x), Column::Bool(y)) => x == y,
        (Column::Cat(x), Column::Cat(y)) => x == y,
        (Column::Float(x), Column::Float(y)) => {
            (0..n).all(|i| match (x.opt(i), y.opt(i)) {
                // Bit equality == total_cmp equality (NaN-safe, ±0.0-exact).
                (Some(p), Some(q)) => p.to_bits() == q.to_bits(),
                (None, None) => true,
                _ => false,
            })
        }
        // Mixed numeric backing (one side promoted): compare as f64.
        (Column::Float(x), Column::Int(y)) => (0..n).all(|i| match (x.opt(i), y.opt(i)) {
            (Some(p), Some(q)) => p.to_bits() == (q as f64).to_bits(),
            (None, None) => true,
            _ => false,
        }),
        (Column::Int(_), Column::Float(_)) => columns_logically_eq(b, a, n),
        _ => false,
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeDef;

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::continuous_qi("height"),
            AttributeDef::continuous_qi("weight"),
            AttributeDef::continuous_confidential("bp"),
            AttributeDef::boolean_confidential("aids"),
        ])
        .unwrap()
    }

    fn sample() -> Dataset {
        Dataset::with_rows(
            schema(),
            vec![
                vec![175.0.into(), 80.0.into(), 135.0.into(), true.into()],
                vec![175.0.into(), 80.0.into(), 128.0.into(), false.into()],
                vec![180.0.into(), 95.0.into(), 140.0.into(), false.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_row_validates_arity() {
        let mut d = Dataset::new(schema());
        let err = d.push_row(vec![Value::Float(1.0)]).unwrap_err();
        assert!(matches!(
            err,
            Error::ArityMismatch {
                expected: 4,
                got: 1
            }
        ));
    }

    #[test]
    fn push_row_validates_types() {
        let mut d = Dataset::new(schema());
        let err = d
            .push_row(vec!["tall".into(), 80.0.into(), 135.0.into(), true.into()])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
    }

    #[test]
    fn grouping_by_quasi_identifiers() {
        let d = sample();
        let groups = d.quasi_identifier_groups();
        assert_eq!(groups.len(), 2);
        let g = groups
            .get(&vec![Value::Float(175.0), Value::Float(80.0)])
            .unwrap();
        assert_eq!(g, &vec![0, 1]);
    }

    #[test]
    fn projection_and_filter() {
        let d = sample();
        let p = d.project(&[0, 3]);
        assert_eq!(p.num_columns(), 2);
        assert_eq!(p.value(0, 1), Value::Bool(true));
        let f = d.filter(|r| r[3] == Value::Bool(false));
        assert_eq!(f.num_rows(), 2);
    }

    #[test]
    fn union_requires_same_schema() {
        let d = sample();
        let other = Dataset::new(Schema::new(vec![AttributeDef::continuous_qi("x")]).unwrap());
        assert!(matches!(d.union(&other), Err(Error::SchemaMismatch)));
        let u = d.union(&sample()).unwrap();
        assert_eq!(u.num_rows(), 6);
        assert_eq!(u.value(5, 2), Value::Float(140.0));
    }

    #[test]
    fn horizontal_partition_covers_all_rows() {
        let d = sample();
        let parts = d.horizontal_partition(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.iter().map(Dataset::num_rows).sum::<usize>(), 3);
        assert_eq!(parts[0].num_rows(), 2);
    }

    #[test]
    fn ascii_table_contains_headers_and_values() {
        let t = sample().to_ascii_table();
        assert!(t.contains("height"));
        assert!(t.contains("135"));
        assert!(t.contains('Y'));
    }

    #[test]
    fn set_value_validates() {
        let mut d = sample();
        assert!(d.set_value(0, 0, Value::Missing).is_ok());
        assert!(d.set_value(0, 3, Value::Int(1)).is_err());
        assert!(d.value(0, 0).is_missing());
    }

    #[test]
    fn matching_indices_is_query_set() {
        let d = sample();
        let idx = d.matching_indices(|r| r[1].as_f64().unwrap() > 90.0);
        assert_eq!(idx, vec![2]);
    }

    #[test]
    fn take_gathers_and_reorders() {
        let d = sample();
        let t = d.take(&[2, 0, 0]);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(0, 2), Value::Float(140.0));
        assert_eq!(t.value(1, 2), Value::Float(135.0));
        assert_eq!(t.value(2, 2), Value::Float(135.0));
    }

    #[test]
    fn swap_cells_swaps_in_place() {
        let mut d = sample();
        d.swap_cells(0, 2, 2);
        assert_eq!(d.value(0, 2), Value::Float(140.0));
        assert_eq!(d.value(2, 2), Value::Float(135.0));
    }

    #[test]
    fn equality_is_representation_independent() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a, b);
        b.set_value(0, 2, Value::Float(136.0)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn f64_cells_borrows_float_storage() {
        let d = sample();
        let cells = d.f64_cells(2).unwrap();
        assert!(matches!(cells.vals, std::borrow::Cow::Borrowed(_)));
        assert_eq!(&cells.vals[..], &[135.0, 128.0, 140.0]);
        assert!(cells.all_present());
        assert!(d.f64_cells(3).is_some(), "bool columns have an f64 image");
    }
}
