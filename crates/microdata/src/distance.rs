//! Record distances for linkage attacks and microaggregation.
//!
//! The disclosure-risk literature (and MDAV-style microaggregation) measures
//! closeness of records on the quasi-identifier attributes after
//! standardising each attribute, so that centimetres and kilograms weigh
//! equally. Categorical attributes contribute a 0/1 overlap term, which
//! makes the mixed distance a Gower-style coefficient.

use crate::dataset::Dataset;
use crate::stats;
use crate::value::Value;

/// Per-column standardisation parameters (mean and standard deviation).
#[derive(Debug, Clone)]
pub struct Standardizer {
    cols: Vec<usize>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits a standardizer on the given columns of `data`. Constant columns
    /// get a standard deviation of 1 so they contribute zero distance rather
    /// than NaN.
    pub fn fit(data: &Dataset, cols: &[usize]) -> Self {
        let mut means = Vec::with_capacity(cols.len());
        let mut stds = Vec::with_capacity(cols.len());
        for &c in cols {
            let xs = data.numeric_column(c);
            means.push(stats::mean(&xs).unwrap_or(0.0));
            let sd = stats::std_dev(&xs).unwrap_or(1.0);
            stds.push(if sd > 0.0 { sd } else { 1.0 });
        }
        Self {
            cols: cols.to_vec(),
            means,
            stds,
        }
    }

    /// Columns this standardizer covers.
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Standardised numeric vector of a record (missing → mean → 0.0).
    pub fn transform(&self, row: &[Value]) -> Vec<f64> {
        self.cols
            .iter()
            .enumerate()
            .map(|(j, &c)| match row[c].as_f64() {
                Some(x) => (x - self.means[j]) / self.stds[j],
                None => 0.0,
            })
            .collect()
    }

    /// Standardises every record of `data` into one flat row-major buffer
    /// (the columnar fast path: each column is read as a contiguous slice;
    /// the per-cell arithmetic — and therefore every bit of the result —
    /// is identical to calling [`Standardizer::transform`] per row).
    pub fn transform_points(&self, data: &Dataset) -> Points {
        let n = data.num_rows();
        let dim = self.cols.len();
        let mut flat = vec![0.0f64; n * dim];
        for (j, &c) in self.cols.iter().enumerate() {
            let (mean, sd) = (self.means[j], self.stds[j]);
            match data.f64_cells(c) {
                Some(cells) => {
                    let vals = &cells.vals[..];
                    if cells.all_present() {
                        for (i, &x) in vals.iter().enumerate() {
                            flat[i * dim + j] = (x - mean) / sd;
                        }
                    } else {
                        for (i, &x) in vals.iter().enumerate() {
                            if !cells.missing.get(i) {
                                flat[i * dim + j] = (x - mean) / sd;
                            }
                        }
                    }
                }
                None => {
                    // Categorical storage: fall back to per-cell reads
                    // (`Int` categories still expose a numeric view).
                    let view = data.col(c);
                    for (i, slot) in flat.iter_mut().skip(j).step_by(dim.max(1)).enumerate() {
                        if let Some(x) = view.f64(i) {
                            *slot = (x - mean) / sd;
                        }
                    }
                }
            }
        }
        Points { flat, dim, n }
    }
}

/// A flat row-major `n × dim` matrix of standardised records.
///
/// Replaces the old `Vec<Vec<f64>>` point sets in the microaggregation and
/// record-linkage scans: one allocation, contiguous rows, cache-friendly
/// sequential distance loops.
#[derive(Debug, Clone, PartialEq)]
pub struct Points {
    flat: Vec<f64>,
    dim: usize,
    n: usize,
}

impl Points {
    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of each record.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Record `i` as a contiguous slice.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.flat[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole buffer, row-major.
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.flat
    }
}

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Squared distances from `target` to every `dim`-wide row of a packed
/// row-major buffer: `out[p] = sq_euclidean(&flat[p*dim..(p+1)*dim],
/// target)`, computed as one contiguous sweep with unrolled low-dimension
/// fast paths. Bitwise equal to the per-row definition: squares are never
/// `-0.0`, so dropping the iterator sum's leading `0.0 +` term cannot
/// change a bit of the result.
pub fn sq_dists_packed(flat: &[f64], dim: usize, target: &[f64]) -> Vec<f64> {
    debug_assert_eq!(target.len(), dim);
    debug_assert!(dim > 0 && flat.len() % dim == 0);
    match dim {
        1 => {
            let t = target[0];
            flat.iter()
                .map(|&x| {
                    let d = x - t;
                    d * d
                })
                .collect()
        }
        2 => {
            let (t0, t1) = (target[0], target[1]);
            flat.chunks_exact(2)
                .map(|p| {
                    let (d0, d1) = (p[0] - t0, p[1] - t1);
                    d0 * d0 + d1 * d1
                })
                .collect()
        }
        3 => {
            let (t0, t1, t2) = (target[0], target[1], target[2]);
            flat.chunks_exact(3)
                .map(|p| {
                    let (d0, d1, d2) = (p[0] - t0, p[1] - t1, p[2] - t2);
                    d0 * d0 + d1 * d1 + d2 * d2
                })
                .collect()
        }
        _ => flat
            .chunks_exact(dim)
            .map(|p| sq_euclidean(p, target))
            .collect(),
    }
}

/// Euclidean distance.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Mixed (Gower-style) record distance over the given columns: standardised
/// squared difference for numeric cells, 0/1 mismatch for categorical and
/// boolean cells, 1 for a missing-vs-present pair.
pub fn mixed_distance(
    std: &Standardizer,
    data_kinds: &Dataset,
    a: &[Value],
    b: &[Value],
    cols: &[usize],
) -> f64 {
    let mut acc = 0.0;
    for &c in cols {
        let kind = data_kinds.schema().attribute(c).kind;
        if kind.is_numeric() {
            let j = std.columns().iter().position(|&x| x == c);
            match (a[c].as_f64(), b[c].as_f64(), j) {
                (Some(x), Some(y), Some(j)) => {
                    let sd = {
                        // re-standardise through the fitted parameters
                        let ax = (x - std.means[j]) / std.stds[j];
                        let bx = (y - std.means[j]) / std.stds[j];
                        (ax - bx) * (ax - bx)
                    };
                    acc += sd;
                }
                (Some(_), Some(_), None) => acc += 0.0,
                _ => acc += 1.0,
            }
        } else {
            match (&a[c], &b[c]) {
                (Value::Missing, Value::Missing) => {}
                (x, y) if x.group_eq(y) => {}
                _ => acc += 1.0,
            }
        }
    }
    acc.sqrt()
}

/// Index of the record in `candidates` nearest to `target` (standardised
/// Euclidean over `std`'s columns). Returns `None` when `candidates` is empty.
pub fn nearest_record(std: &Standardizer, target: &[Value], candidates: &Dataset) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let t = std.transform(target);
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for i in 0..candidates.num_rows() {
        let d = sq_euclidean(&t, &std.transform(&candidates.row(i)));
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeDef;
    use crate::schema::Schema;

    fn data() -> Dataset {
        let schema = Schema::new(vec![
            AttributeDef::continuous_qi("h"),
            AttributeDef::continuous_qi("w"),
        ])
        .unwrap();
        Dataset::with_rows(
            schema,
            vec![
                vec![170.0.into(), 70.0.into()],
                vec![175.0.into(), 80.0.into()],
                vec![180.0.into(), 95.0.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn standardized_columns_have_unit_scale() {
        let d = data();
        let s = Standardizer::fit(&d, &[0, 1]);
        let v0 = s.transform(&d.row(0));
        let v2 = s.transform(&d.row(2));
        // Extremes should be symmetric around the middle record.
        assert!(v0[0] < 0.0 && v2[0] > 0.0);
        assert!((v0[0] + v2[0]).abs() < 1e-9);
    }

    #[test]
    fn nearest_record_finds_self() {
        let d = data();
        let s = Standardizer::fit(&d, &[0, 1]);
        for i in 0..d.num_rows() {
            assert_eq!(nearest_record(&s, &d.row(i), &d), Some(i));
        }
    }

    #[test]
    fn nearest_record_empty_candidates() {
        let d = data();
        let s = Standardizer::fit(&d, &[0, 1]);
        let empty = Dataset::new(d.schema().clone());
        assert_eq!(nearest_record(&s, &d.row(0), &empty), None);
    }

    #[test]
    fn constant_column_contributes_nothing() {
        let schema = Schema::new(vec![
            AttributeDef::continuous_qi("a"),
            AttributeDef::continuous_qi("b"),
        ])
        .unwrap();
        let d = Dataset::with_rows(
            schema,
            vec![vec![5.0.into(), 1.0.into()], vec![5.0.into(), 2.0.into()]],
        )
        .unwrap();
        let s = Standardizer::fit(&d, &[0, 1]);
        let v = s.transform(&d.row(0));
        assert_eq!(v[0], 0.0);
        assert!(v[0].is_finite() && v[1].is_finite());
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(sq_euclidean(&[1.0], &[1.0]), 0.0);
    }
}
