//! The paper's Table 1 toy patient datasets, reconstructed.
//!
//! All records belong to a hypertension drug trial (so mere participation is
//! sensitive, §2). Direct identifiers are already removed; *height* and
//! *weight* are the key attributes; *systolic blood pressure* and *AIDS* are
//! confidential.
//!
//! The numeric cell values of Table 1 are partially lost in the available
//! scan of the paper, so the datasets below are reconstructed to satisfy
//! **every** structural property the text relies on:
//!
//! * both datasets have 10 records (the scan preserves ten Y/N AIDS flags
//!   per dataset: `Y N N N Y N N Y N N` and `N Y N N N Y N Y N N`);
//! * **Dataset 1** "spontaneously satisfies k-anonymity for k = 3 with
//!   respect to the key attributes (height, weight)" — every (height,
//!   weight) combination appears at least 3 times;
//! * **Dataset 2** "is no longer 3-anonymous with respect to (height,
//!   weight)" — in fact every combination is unique;
//! * Dataset 2 contains **exactly one** individual with height < 165 cm and
//!   weight > 105 kg, whose systolic blood pressure is **146 mmHg** (the
//!   target of the paper's two-query PIR isolation attack in §3);
//! * all patients suffer hypertension, so systolic pressures sit in the
//!   hypertensive range.

use crate::attribute::AttributeDef;
use crate::dataset::Dataset;
use crate::schema::Schema;
use crate::value::Value;

/// Name of the height attribute (cm).
pub const HEIGHT: &str = "height";
/// Name of the weight attribute (kg).
pub const WEIGHT: &str = "weight";
/// Name of the systolic blood-pressure attribute (mmHg).
pub const BLOOD_PRESSURE: &str = "blood_pressure";
/// Name of the AIDS flag attribute.
pub const AIDS: &str = "aids";

/// The schema shared by both Table 1 datasets.
pub fn patient_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::continuous_qi(HEIGHT),
        AttributeDef::continuous_qi(WEIGHT),
        AttributeDef::continuous_confidential(BLOOD_PRESSURE),
        AttributeDef::boolean_confidential(AIDS),
    ])
    .expect("patient schema is valid")
}

fn row(h: f64, w: f64, bp: f64, aids: bool) -> Vec<Value> {
    vec![h.into(), w.into(), bp.into(), aids.into()]
}

/// Table 1 (left): patient dataset no. 1 — spontaneously 3-anonymous
/// w.r.t. (height, weight).
pub fn dataset1() -> Dataset {
    Dataset::with_rows(
        patient_schema(),
        vec![
            row(175.0, 80.0, 135.0, true),
            row(175.0, 80.0, 128.0, false),
            row(175.0, 80.0, 131.0, false),
            row(180.0, 95.0, 140.0, false),
            row(180.0, 95.0, 138.0, true),
            row(180.0, 95.0, 144.0, false),
            row(170.0, 70.0, 130.0, false),
            row(170.0, 70.0, 133.0, true),
            row(170.0, 70.0, 129.0, false),
            row(170.0, 70.0, 136.0, false),
        ],
    )
    .expect("dataset 1 is well-formed")
}

/// Table 1 (right): patient dataset no. 2 — every (height, weight)
/// combination unique; record 2 (0-indexed) is the small-and-heavy
/// individual the §3 isolation attack re-identifies.
pub fn dataset2() -> Dataset {
    Dataset::with_rows(
        patient_schema(),
        vec![
            row(170.0, 75.0, 132.0, false),
            row(173.0, 82.0, 138.0, true),
            row(160.0, 110.0, 146.0, false),
            row(180.0, 95.0, 135.0, false),
            row(168.0, 72.0, 128.0, false),
            row(165.0, 90.0, 141.0, true),
            row(182.0, 100.0, 137.0, false),
            row(177.0, 85.0, 143.0, true),
            row(171.0, 78.0, 130.0, false),
            row(158.0, 64.0, 133.0, false),
        ],
    )
    .expect("dataset 2 is well-formed")
}

/// Row index (in [`dataset2`]) of the unique individual with height < 165
/// and weight > 105 — Mr./Mrs. X of the paper's §3 example.
pub const DATASET2_ISOLATED_ROW: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_datasets_have_ten_records() {
        assert_eq!(dataset1().num_rows(), 10);
        assert_eq!(dataset2().num_rows(), 10);
    }

    #[test]
    fn dataset1_is_spontaneously_3_anonymous() {
        let d = dataset1();
        for (_, group) in d.quasi_identifier_groups() {
            assert!(group.len() >= 3, "group smaller than 3: {group:?}");
        }
    }

    #[test]
    fn dataset2_has_all_unique_key_combinations() {
        let d = dataset2();
        let groups = d.quasi_identifier_groups();
        assert_eq!(groups.len(), 10);
        assert!(groups.values().all(|g| g.len() == 1));
    }

    #[test]
    fn dataset2_isolation_predicate_matches_exactly_one_record() {
        let d = dataset2();
        let idx = d
            .matching_indices(|r| r[0].as_f64().unwrap() < 165.0 && r[1].as_f64().unwrap() > 105.0);
        assert_eq!(idx, vec![DATASET2_ISOLATED_ROW]);
        // ... and that record's blood pressure is 146, as in the paper.
        assert_eq!(d.value(DATASET2_ISOLATED_ROW, 2).as_f64().unwrap(), 146.0);
    }

    #[test]
    fn aids_flags_follow_the_scanned_sequences() {
        let seq1: Vec<bool> = dataset1()
            .rows()
            .iter()
            .map(|r| r[3].as_bool().unwrap())
            .collect();
        assert_eq!(
            seq1,
            vec![true, false, false, false, true, false, false, true, false, false]
        );
        let seq2: Vec<bool> = dataset2()
            .rows()
            .iter()
            .map(|r| r[3].as_bool().unwrap())
            .collect();
        assert_eq!(
            seq2,
            vec![false, true, false, false, false, true, false, true, false, false]
        );
    }

    #[test]
    fn all_patients_are_hypertensive() {
        for d in [dataset1(), dataset2()] {
            for r in d.rows() {
                let bp = r[2].as_f64().unwrap();
                assert!((125.0..=150.0).contains(&bp), "bp {bp} out of trial range");
            }
        }
    }
}
