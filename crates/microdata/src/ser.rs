//! Hand-rolled, self-describing dataset serialisation (JSON and TSV).
//!
//! The workspace is hermetic — `serde` is banned along with every other
//! registry dependency — so the two interchange formats the toolkit
//! needs are implemented directly here:
//!
//! * **JSON**: a self-describing document carrying the schema (name,
//!   kind, role per attribute) and the rows. Cells are tagged so the
//!   exact [`Value`] variant round-trips: `{"i":3}` for `Int`,
//!   `{"f":1.5}` for `Float` (non-finite floats encode as strings),
//!   `{"s":"…"}` for `Str`, `true`/`false` for `Bool`, `null` for
//!   `Missing`.
//! * **TSV**: a `#schema` header line (`name:kind:role` per column),
//!   a column-name line, then one escaped record per line. `\N` encodes
//!   a missing cell (the classic dump convention), and tab / newline /
//!   backslash are escaped so arbitrary strings survive.
//!
//! Both directions validate against the embedded schema, so a parsed
//! dataset is as well-formed as one built through [`Dataset::push_row`].

use crate::attribute::{AttributeDef, AttributeKind, AttributeRole};
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Schema tag tables
// ---------------------------------------------------------------------------

fn kind_tag(kind: AttributeKind) -> &'static str {
    match kind {
        AttributeKind::Continuous => "continuous",
        AttributeKind::Integer => "integer",
        AttributeKind::Nominal => "nominal",
        AttributeKind::Ordinal => "ordinal",
        AttributeKind::Boolean => "boolean",
    }
}

fn kind_from_tag(tag: &str) -> Result<AttributeKind> {
    Ok(match tag {
        "continuous" => AttributeKind::Continuous,
        "integer" => AttributeKind::Integer,
        "nominal" => AttributeKind::Nominal,
        "ordinal" => AttributeKind::Ordinal,
        "boolean" => AttributeKind::Boolean,
        other => return Err(Error::Serial(format!("unknown attribute kind `{other}`"))),
    })
}

fn role_tag(role: AttributeRole) -> &'static str {
    match role {
        AttributeRole::Identifier => "identifier",
        AttributeRole::QuasiIdentifier => "quasi_identifier",
        AttributeRole::Confidential => "confidential",
        AttributeRole::NonConfidential => "non_confidential",
    }
}

fn role_from_tag(tag: &str) -> Result<AttributeRole> {
    Ok(match tag {
        "identifier" => AttributeRole::Identifier,
        "quasi_identifier" => AttributeRole::QuasiIdentifier,
        "confidential" => AttributeRole::Confidential,
        "non_confidential" => AttributeRole::NonConfidential,
        other => return Err(Error::Serial(format!("unknown attribute role `{other}`"))),
    })
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

/// Escapes `s` as the body of a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_value(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{{\"i\":{i}}}");
        }
        Value::Float(x) if x.is_finite() => {
            // `{x:?}` prints the shortest representation that round-trips.
            let _ = write!(out, "{{\"f\":{x:?}}}");
        }
        Value::Float(x) => {
            let tag = if x.is_nan() {
                "nan"
            } else if *x > 0.0 {
                "inf"
            } else {
                "-inf"
            };
            let _ = write!(out, "{{\"f\":\"{tag}\"}}");
        }
        Value::Str(s) => {
            out.push_str("{\"s\":\"");
            json_escape(s, out);
            out.push_str("\"}");
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Missing => out.push_str("null"),
    }
}

/// Serialises a dataset to a self-describing JSON document.
pub fn dataset_to_json(data: &Dataset) -> String {
    let mut out = String::from("{\"schema\":[");
    for (i, a) in data.schema().attributes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        json_escape(&a.name, &mut out);
        let _ = write!(
            out,
            "\",\"kind\":\"{}\",\"role\":\"{}\"}}",
            kind_tag(a.kind),
            role_tag(a.role)
        );
    }
    out.push_str("],\"rows\":[");
    for (i, row) in data.rows().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_value(v, &mut out);
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// JSON reader (recursive descent over a minimal document model)
// ---------------------------------------------------------------------------

/// Minimal JSON document model. Numbers keep their source text so i64
/// precision survives (`f64` cannot hold every i64).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Serial(format!("JSON at byte {}: {}", self.pos, message.into()))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_document(mut self) -> Result<Json> {
        self.skip_ws();
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing garbage"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if text.parse::<f64>().is_err() {
            return Err(self.err(format!("malformed number `{text}`")));
        }
        Ok(Json::Num(text.to_owned()))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos-1.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn value_from_json(cell: &Json) -> Result<Value> {
    Ok(match cell {
        Json::Null => Value::Missing,
        Json::Bool(b) => Value::Bool(*b),
        Json::Obj(_) => {
            if let Some(i) = cell.get("i") {
                let Json::Num(text) = i else {
                    return Err(Error::Serial("\"i\" must be a number".into()));
                };
                Value::Int(
                    text.parse::<i64>()
                        .map_err(|_| Error::Serial(format!("bad int `{text}`")))?,
                )
            } else if let Some(f) = cell.get("f") {
                match f {
                    Json::Num(text) => Value::Float(
                        text.parse::<f64>()
                            .map_err(|_| Error::Serial(format!("bad float `{text}`")))?,
                    ),
                    Json::Str(tag) => Value::Float(match tag.as_str() {
                        "nan" => f64::NAN,
                        "inf" => f64::INFINITY,
                        "-inf" => f64::NEG_INFINITY,
                        other => return Err(Error::Serial(format!("bad float tag `{other}`"))),
                    }),
                    _ => return Err(Error::Serial("\"f\" must be number or tag".into())),
                }
            } else if let Some(s) = cell.get("s") {
                Value::Str(
                    s.as_str()
                        .ok_or_else(|| Error::Serial("\"s\" must be a string".into()))?
                        .to_owned(),
                )
            } else {
                return Err(Error::Serial("cell object needs an i/f/s tag".into()));
            }
        }
        other => {
            return Err(Error::Serial(format!("unexpected cell {other:?}")));
        }
    })
}

/// Parses a dataset from the JSON produced by [`dataset_to_json`].
pub fn dataset_from_json(text: &str) -> Result<Dataset> {
    let doc = JsonParser::new(text).parse_document()?;
    let schema_json = doc
        .get("schema")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::Serial("document needs a \"schema\" array".into()))?;
    let mut attrs = Vec::with_capacity(schema_json.len());
    for a in schema_json {
        let name = a
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::Serial("attribute needs a \"name\"".into()))?;
        let kind = kind_from_tag(
            a.get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| Error::Serial("attribute needs a \"kind\"".into()))?,
        )?;
        let role = role_from_tag(
            a.get("role")
                .and_then(Json::as_str)
                .ok_or_else(|| Error::Serial("attribute needs a \"role\"".into()))?,
        )?;
        attrs.push(AttributeDef::new(name, kind, role));
    }
    let schema = Schema::new(attrs).map_err(|e| Error::Serial(e.to_string()))?;
    let rows_json = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| Error::Serial("document needs a \"rows\" array".into()))?;
    let mut data = Dataset::new(schema);
    for row_json in rows_json {
        let cells = row_json
            .as_arr()
            .ok_or_else(|| Error::Serial("each row must be an array".into()))?;
        let row: Vec<Value> = cells.iter().map(value_from_json).collect::<Result<_>>()?;
        data.push_row(row)
            .map_err(|e| Error::Serial(e.to_string()))?;
    }
    Ok(data)
}

// ---------------------------------------------------------------------------
// TSV
// ---------------------------------------------------------------------------

/// Missing-cell marker (the classic database dump convention).
const TSV_MISSING: &str = "\\N";

fn tsv_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Unescapes one TSV cell. `Err` carries the message only — callers wrap
/// it in [`Error::Tsv`] with the line it came from.
fn tsv_unescape(s: &str) -> std::result::Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("bad escape `\\{other}`")),
            None => return Err("truncated escape at end of cell".into()),
        }
    }
    Ok(out)
}

/// Serialises a dataset to TSV with an embedded `#schema` line.
pub fn dataset_to_tsv(data: &Dataset) -> String {
    let mut out = String::from("#schema\t");
    let schema_cells: Vec<String> = data
        .schema()
        .attributes()
        .iter()
        .map(|a| {
            format!(
                "{}:{}:{}",
                tsv_escape(&a.name),
                kind_tag(a.kind),
                role_tag(a.role)
            )
        })
        .collect();
    out.push_str(&schema_cells.join("\t"));
    out.push('\n');
    let names: Vec<String> = data
        .schema()
        .attributes()
        .iter()
        .map(|a| tsv_escape(&a.name))
        .collect();
    out.push_str(&names.join("\t"));
    out.push('\n');
    for row in data.rows() {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Missing => TSV_MISSING.to_owned(),
                Value::Str(s) => tsv_escape(s),
                Value::Float(x) if x.is_finite() => format!("{x:?}"),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

/// Parses one data cell. `Err` carries the message only — the caller
/// attaches the line number.
fn tsv_cell_to_value(cell: &str, kind: AttributeKind) -> std::result::Result<Value, String> {
    if cell == TSV_MISSING {
        return Ok(Value::Missing);
    }
    Ok(match kind {
        AttributeKind::Continuous => Value::Float(
            cell.parse::<f64>()
                .map_err(|_| format!("bad float `{cell}`"))?,
        ),
        AttributeKind::Integer => Value::Int(
            cell.parse::<i64>()
                .map_err(|_| format!("bad int `{cell}`"))?,
        ),
        AttributeKind::Boolean => match cell {
            "Y" => Value::Bool(true),
            "N" => Value::Bool(false),
            other => return Err(format!("bad bool `{other}` (want Y/N)")),
        },
        AttributeKind::Nominal | AttributeKind::Ordinal => Value::Str(tsv_unescape(cell)?),
    })
}

/// Parses a dataset from the TSV produced by [`dataset_to_tsv`].
///
/// Every failure is a typed [`Error::Tsv`] naming the offending 1-based
/// line (line 1 is the `#schema` line, line 2 the header, data from
/// line 3) — adversarial or truncated input never panics.
pub fn dataset_from_tsv(text: &str) -> Result<Dataset> {
    let tsv_err = |line: usize, message: String| Error::Tsv { line, message };
    let mut lines = text.lines();
    let schema_line = lines
        .next()
        .ok_or_else(|| tsv_err(1, "empty TSV input".into()))?;
    let mut schema_cells = schema_line.split('\t');
    if schema_cells.next() != Some("#schema") {
        return Err(tsv_err(1, "TSV must start with a #schema line".into()));
    }
    let mut attrs = Vec::new();
    for cell in schema_cells {
        let mut parts = cell.rsplitn(3, ':');
        let bad_cell = || tsv_err(1, format!("bad schema cell `{cell}` (want name:kind:role)"));
        let role = parts.next().ok_or_else(bad_cell)?;
        let kind = parts.next().ok_or_else(bad_cell)?;
        let name = parts.next().ok_or_else(bad_cell)?;
        attrs.push(AttributeDef::new(
            tsv_unescape(name).map_err(|m| tsv_err(1, m))?,
            kind_from_tag(kind).map_err(|e| tsv_err(1, e.to_string()))?,
            role_from_tag(role).map_err(|e| tsv_err(1, e.to_string()))?,
        ));
    }
    let schema = Schema::new(attrs).map_err(|e| tsv_err(1, e.to_string()))?;
    let header = lines
        .next()
        .ok_or_else(|| tsv_err(2, "truncated input: TSV needs a header line".into()))?;
    let expected: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| tsv_escape(&a.name))
        .collect();
    if header.split('\t').map(str::to_owned).collect::<Vec<_>>() != expected {
        return Err(tsv_err(2, "TSV header does not match schema".into()));
    }
    let mut data = Dataset::new(schema);
    for (lineno, line) in lines.enumerate() {
        let line_1based = lineno + 3; // schema + header precede the data
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != data.schema().len() {
            return Err(tsv_err(
                line_1based,
                format!(
                    "expected {} cells, found {}",
                    data.schema().len(),
                    cells.len()
                ),
            ));
        }
        let row: Vec<Value> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                tsv_cell_to_value(c, data.schema().attribute(i).kind).map_err(|m| {
                    tsv_err(
                        line_1based,
                        format!("column `{}`: {m}", data.schema().attribute(i).name),
                    )
                })
            })
            .collect::<Result<_>>()?;
        data.push_row(row)
            .map_err(|e| tsv_err(line_1based, e.to_string()))?;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{census, patients, PatientConfig};

    #[test]
    fn json_round_trips_patients() {
        let d = patients(&PatientConfig {
            n: 40,
            ..Default::default()
        });
        let text = dataset_to_json(&d);
        let back = dataset_from_json(&text).unwrap();
        assert_eq!(d, back);
        assert_eq!(d.schema(), back.schema());
    }

    #[test]
    fn json_round_trips_census_with_strings() {
        let d = census(30, 5);
        let back = dataset_from_json(&dataset_to_json(&d)).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn json_round_trips_awkward_cells() {
        let schema = Schema::new(vec![
            AttributeDef::new(
                "note",
                AttributeKind::Nominal,
                AttributeRole::NonConfidential,
            ),
            AttributeDef::new("x", AttributeKind::Continuous, AttributeRole::Confidential),
        ])
        .unwrap();
        let mut d = Dataset::new(schema);
        d.push_row(vec![
            Value::Str("tab\t\"quote\"\nline".into()),
            Value::Float(f64::NAN),
        ])
        .unwrap();
        d.push_row(vec![Value::Missing, Value::Float(f64::NEG_INFINITY)])
            .unwrap();
        let back = dataset_from_json(&dataset_to_json(&d)).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn json_rejects_malformed_documents() {
        assert!(dataset_from_json("").is_err());
        assert!(dataset_from_json("{").is_err());
        assert!(dataset_from_json("{\"schema\":[],\"rows\":[]} garbage").is_err());
        assert!(dataset_from_json("{\"rows\":[]}").is_err());
        assert!(
            dataset_from_json("{\"schema\":[{\"name\":\"a\",\"kind\":\"alien\",\"role\":\"confidential\"}],\"rows\":[]}")
                .is_err()
        );
    }

    #[test]
    fn tsv_round_trips_patients_and_census() {
        for d in [
            patients(&PatientConfig {
                n: 25,
                ..Default::default()
            }),
            census(25, 9),
        ] {
            let text = dataset_to_tsv(&d);
            let back = dataset_from_tsv(&text).unwrap();
            assert_eq!(d, back);
        }
    }

    #[test]
    fn tsv_escapes_awkward_strings_and_missing() {
        let schema = Schema::new(vec![AttributeDef::new(
            "note",
            AttributeKind::Nominal,
            AttributeRole::NonConfidential,
        )])
        .unwrap();
        let mut d = Dataset::new(schema);
        d.push_row(vec![Value::Str("a\tb\\c\nd".into())]).unwrap();
        d.push_row(vec![Value::Missing]).unwrap();
        d.push_row(vec![Value::Str("\\N".into())]).unwrap_or(());
        let text = dataset_to_tsv(&d);
        let back = dataset_from_tsv(&text).unwrap();
        assert_eq!(back.value(0, 0), Value::Str("a\tb\\c\nd".into()));
        assert!(back.value(1, 0).is_missing());
    }

    #[test]
    fn tsv_rejects_bad_input_with_line_numbers() {
        let line_of = |text: &str| match dataset_from_tsv(text).unwrap_err() {
            Error::Tsv { line, .. } => line,
            other => panic!("expected Error::Tsv, got {other:?}"),
        };
        assert_eq!(line_of(""), 1);
        assert_eq!(line_of("no schema line\nx\n"), 1);
        assert_eq!(line_of("#schema\ta:integer:confidential"), 2, "truncated");
        assert_eq!(line_of("#schema\ta:integer:confidential\nwrong\n1\n"), 2);
        let bad_cell = "#schema\ta:integer:confidential\na\n7\nnot_an_int\n";
        let err = dataset_from_tsv(bad_cell).unwrap_err();
        assert_eq!(
            err,
            Error::Tsv {
                line: 4,
                message: "column `a`: bad int `not_an_int`".into()
            }
        );
        assert!(err.to_string().contains("line 4"), "{err}");
    }
}
