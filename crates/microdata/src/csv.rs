//! Minimal CSV serialisation for datasets (no external dependency).
//!
//! The dialect is deliberately simple: comma separator, double-quote
//! quoting with doubled quotes for escapes, `\n` record separator, a header
//! row with attribute names. Types are recovered from the schema on parse.

use crate::attribute::AttributeKind;
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;

/// Serialises a dataset to CSV text with a header row.
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    let names = data.schema().names();
    out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in data.rows() {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Missing => String::new(),
                Value::Str(s) => quote(s),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Parses CSV text against a known schema. The header row must match the
/// schema's attribute names in order.
pub fn from_csv(schema: Schema, text: &str) -> Result<Dataset> {
    let mut lines = split_records(text);
    if lines.is_empty() {
        return Err(Error::Csv {
            line: 0,
            message: "empty input".into(),
        });
    }
    let header = parse_record(&lines.remove(0), 1)?;
    let expected: Vec<&str> = schema.names();
    if header.len() != expected.len() || header.iter().zip(&expected).any(|(a, b)| a != b) {
        return Err(Error::Csv {
            line: 1,
            message: format!("header {:?} does not match schema {:?}", header, expected),
        });
    }
    let mut data = Dataset::new(schema);
    for (lineno, raw) in lines.iter().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let cells = parse_record(raw, lineno + 2)?;
        if cells.len() != data.schema().len() {
            return Err(Error::Csv {
                line: lineno + 2,
                message: format!(
                    "expected {} cells, found {}",
                    data.schema().len(),
                    cells.len()
                ),
            });
        }
        let mut row = Vec::with_capacity(cells.len());
        for (i, cell) in cells.iter().enumerate() {
            row.push(parse_cell(
                cell,
                data.schema().attribute(i).kind,
                lineno + 2,
            )?);
        }
        data.push_row(row).map_err(|e| Error::Csv {
            line: lineno + 2,
            message: e.to_string(),
        })?;
    }
    Ok(data)
}

fn parse_cell(cell: &str, kind: AttributeKind, line: usize) -> Result<Value> {
    if cell.is_empty() || cell == "*" {
        return Ok(Value::Missing);
    }
    let bad = |msg: String| Error::Csv { line, message: msg };
    match kind {
        AttributeKind::Continuous => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| bad(format!("`{cell}` is not a float"))),
        AttributeKind::Integer => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| bad(format!("`{cell}` is not an integer"))),
        AttributeKind::Nominal | AttributeKind::Ordinal => Ok(Value::Str(cell.to_owned())),
        AttributeKind::Boolean => match cell {
            "Y" | "y" | "true" | "1" => Ok(Value::Bool(true)),
            "N" | "n" | "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(bad(format!("`{cell}` is not a Y/N boolean"))),
        },
    }
}

/// Splits text into records, honouring quoted newlines.
fn split_records(text: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for ch in text.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                current.push(ch);
            }
            '\n' if !in_quotes => {
                records.push(std::mem::take(&mut current));
            }
            '\r' if !in_quotes => {}
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        records.push(current);
    }
    records
}

/// Splits one record into cells, handling quoting.
fn parse_record(line: &str, lineno: usize) -> Result<Vec<String>> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        match ch {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => {
                return Err(Error::Csv {
                    line: lineno,
                    message: "quote inside unquoted cell".into(),
                })
            }
            ',' if !in_quotes => cells.push(std::mem::take(&mut cur)),
            _ => cur.push(ch),
        }
    }
    if in_quotes {
        return Err(Error::Csv {
            line: lineno,
            message: "unterminated quote".into(),
        });
    }
    cells.push(cur);
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttributeDef, AttributeKind, AttributeRole};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::continuous_qi("height"),
            AttributeDef::new(
                "city",
                AttributeKind::Nominal,
                AttributeRole::QuasiIdentifier,
            ),
            AttributeDef::boolean_confidential("aids"),
        ])
        .unwrap()
    }

    #[test]
    fn round_trip() {
        let d = Dataset::with_rows(
            schema(),
            vec![
                vec![175.5.into(), "Tarragona".into(), true.into()],
                vec![Value::Missing, "Reus, North".into(), false.into()],
            ],
        )
        .unwrap();
        let text = to_csv(&d);
        let back = from_csv(schema(), &text).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn quoted_cells_with_commas_and_quotes() {
        let d = Dataset::with_rows(
            schema(),
            vec![vec![
                170.0.into(),
                "a \"quoted\", city".into(),
                false.into(),
            ]],
        )
        .unwrap();
        let back = from_csv(schema(), &to_csv(&d)).unwrap();
        assert_eq!(back.value(0, 1).as_str().unwrap(), "a \"quoted\", city");
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let err = from_csv(schema(), "a,b,c\n1,2,Y\n").unwrap_err();
        assert!(matches!(err, Error::Csv { line: 1, .. }));
    }

    #[test]
    fn bad_boolean_reports_line() {
        let err = from_csv(schema(), "height,city,aids\n170,Reus,maybe\n").unwrap_err();
        match err {
            Error::Csv { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("maybe"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn missing_cells_parse_as_missing() {
        let d = from_csv(schema(), "height,city,aids\n,Reus,N\n*,Valls,Y\n").unwrap();
        assert!(d.value(0, 0).is_missing());
        assert!(d.value(1, 0).is_missing());
    }

    #[test]
    fn arity_mismatch_reports_line() {
        let err = from_csv(schema(), "height,city,aids\n170,Reus\n").unwrap_err();
        assert!(matches!(err, Error::Csv { line: 2, .. }));
    }
}
