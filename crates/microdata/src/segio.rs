//! Hermetic binary codec for sealed segments (the spill format).
//!
//! Sits next to the hand-rolled TSV/JSON codecs in [`crate::ser`], but
//! writes the *columnar* buffers directly — `f64`/`i64` payloads, packed
//! bitmap words, dictionary pools and `u32` codes — so a spill/reload
//! round-trip is bit-exact (float cells keep their bits, dictionary order
//! and codes are preserved, missing bitmaps survive verbatim).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     8  b"TDFSEG1\0"
//! ncols     4  u32
//! per col:     name (u32 len + UTF-8 bytes), kind u8, role u8
//! nrows     8  u64
//! per col:     layout u8 (0 float / 1 int / 2 bool / 3 cat) + payload
//!   float:     nrows f64, missing bitmap words
//!   int:       nrows i64, missing bitmap words
//!   bool:      data bitmap words, missing bitmap words
//!   cat:       u32 pool len; per value u8 tag (0 Str / 1 Int) + payload;
//!              nrows u32 codes, missing bitmap words
//! checksum  8  FNV-1a over every preceding byte
//! ```
//!
//! The checksum is verified before any decoding: a torn write, a flipped
//! bit, or an injected `segment.reload` corruption is a typed
//! [`Error::Serial`], never a silently wrong segment. Writes go through a
//! temporary file renamed into place only after the full image (including
//! the checksum) is on disk, so a crash mid-spill — injected through the
//! `segment.spill` fault site — leaves at worst a stale `.tmp` file and
//! never a truncated segment under the final name.

use crate::attribute::{AttributeDef, AttributeKind, AttributeRole};
use crate::bitmap::Bitmap;
use crate::column::{BoolCol, CatCol, Column, FloatCol, IntCol};
use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;
use std::fs;
use std::io::Write as _;
use std::path::Path;

const MAGIC: &[u8; 8] = b"TDFSEG1\0";

/// FNV-1a (64-bit) over `bytes` — the trailer checksum. Public so sibling
/// framed formats (the disguise journal) share one checksum definition.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn kind_tag(kind: AttributeKind) -> u8 {
    match kind {
        AttributeKind::Continuous => 0,
        AttributeKind::Integer => 1,
        AttributeKind::Nominal => 2,
        AttributeKind::Ordinal => 3,
        AttributeKind::Boolean => 4,
    }
}

fn kind_from_tag(tag: u8) -> Result<AttributeKind> {
    Ok(match tag {
        0 => AttributeKind::Continuous,
        1 => AttributeKind::Integer,
        2 => AttributeKind::Nominal,
        3 => AttributeKind::Ordinal,
        4 => AttributeKind::Boolean,
        _ => return Err(Error::Serial(format!("unknown attribute kind tag {tag}"))),
    })
}

fn role_tag(role: AttributeRole) -> u8 {
    match role {
        AttributeRole::Identifier => 0,
        AttributeRole::QuasiIdentifier => 1,
        AttributeRole::Confidential => 2,
        AttributeRole::NonConfidential => 3,
    }
}

fn role_from_tag(tag: u8) -> Result<AttributeRole> {
    Ok(match tag {
        0 => AttributeRole::Identifier,
        1 => AttributeRole::QuasiIdentifier,
        2 => AttributeRole::Confidential,
        3 => AttributeRole::NonConfidential,
        _ => return Err(Error::Serial(format!("unknown attribute role tag {tag}"))),
    })
}

fn put_bitmap(out: &mut Vec<u8>, b: &Bitmap, nrows: usize) {
    debug_assert_eq!(b.len(), nrows, "bitmap length mismatch");
    for &w in b.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes `data` into the segment image (checksum trailer included).
pub fn encode_segment(data: &Dataset) -> Vec<u8> {
    let nrows = data.num_rows();
    let mut out = Vec::with_capacity(64 + data.heap_bytes());
    out.extend_from_slice(MAGIC);
    let schema = data.schema();
    out.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    for a in schema.attributes() {
        put_str(&mut out, &a.name);
        out.push(kind_tag(a.kind));
        out.push(role_tag(a.role));
    }
    out.extend_from_slice(&(nrows as u64).to_le_bytes());
    for col in data.columns() {
        match col {
            Column::Float(c) => {
                out.push(0);
                for &v in c.values() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                put_bitmap(&mut out, c.missing(), nrows);
            }
            Column::Int(c) => {
                out.push(1);
                for &v in c.values() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                put_bitmap(&mut out, c.missing(), nrows);
            }
            Column::Bool(c) => {
                out.push(2);
                put_bitmap(&mut out, c.bits(), nrows);
                put_bitmap(&mut out, c.missing(), nrows);
            }
            Column::Cat(c) => {
                out.push(3);
                out.extend_from_slice(&(c.pool().len() as u32).to_le_bytes());
                for v in c.pool() {
                    match v {
                        Value::Str(s) => {
                            out.push(0);
                            put_str(&mut out, s);
                        }
                        Value::Int(i) => {
                            out.push(1);
                            out.extend_from_slice(&i.to_le_bytes());
                        }
                        other => unreachable!("non-categorical pool value {other:?}"),
                    }
                }
                for &code in c.codes() {
                    out.extend_from_slice(&code.to_le_bytes());
                }
                put_bitmap(&mut out, c.missing(), nrows);
            }
        }
    }
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Byte cursor over a segment image.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(Error::Serial("segment image truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| Error::Serial("segment string not UTF-8".into()))
    }

    fn bitmap(&mut self, nrows: usize) -> Result<Bitmap> {
        let nwords = nrows.div_ceil(64);
        let raw = self.take(nwords * 8)?;
        let words = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Bitmap::from_words(words, nrows))
    }
}

/// Decodes a segment image, verifying the checksum first.
pub fn decode_segment(bytes: &[u8]) -> Result<Dataset> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(Error::Serial("segment image truncated".into()));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(Error::Serial("segment checksum mismatch".into()));
    }
    let mut cur = Cursor {
        bytes: body,
        pos: 0,
    };
    if cur.take(MAGIC.len())? != MAGIC {
        return Err(Error::Serial("bad segment magic".into()));
    }
    let ncols = cur.u32()? as usize;
    let mut attrs = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = cur.str()?;
        let kind = kind_from_tag(cur.u8()?)?;
        let role = role_from_tag(cur.u8()?)?;
        attrs.push(AttributeDef::new(name, kind, role));
    }
    let schema = Schema::new(attrs)?;
    let nrows = cur.u64()? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let layout = cur.u8()?;
        columns.push(match layout {
            0 => {
                let raw = cur.take(nrows * 8)?;
                let data = raw
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                Column::Float(FloatCol::from_parts(data, cur.bitmap(nrows)?))
            }
            1 => {
                let raw = cur.take(nrows * 8)?;
                let data = raw
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                Column::Int(IntCol::from_parts(data, cur.bitmap(nrows)?))
            }
            2 => {
                let data = cur.bitmap(nrows)?;
                Column::Bool(BoolCol::from_parts(data, cur.bitmap(nrows)?))
            }
            3 => {
                let pool_len = cur.u32()? as usize;
                let mut pool = Vec::with_capacity(pool_len);
                for _ in 0..pool_len {
                    pool.push(match cur.u8()? {
                        0 => Value::Str(cur.str()?),
                        1 => Value::Int(cur.u64()? as i64),
                        t => {
                            return Err(Error::Serial(format!("unknown pool value tag {t}")));
                        }
                    });
                }
                let raw = cur.take(nrows * 4)?;
                let codes: Vec<u32> = raw
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                if codes.iter().any(|&c| (c as usize) >= pool_len.max(1)) {
                    return Err(Error::Serial("dictionary code out of range".into()));
                }
                Column::Cat(CatCol::from_parts(pool, codes, cur.bitmap(nrows)?))
            }
            t => return Err(Error::Serial(format!("unknown column layout tag {t}"))),
        });
    }
    if cur.pos != body.len() {
        return Err(Error::Serial("trailing bytes after segment payload".into()));
    }
    Dataset::from_columns(schema, columns)
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Serial(format!("{ctx} {}: {e}", path.display()))
}

/// Spills `data` to `path` atomically: the image is written to
/// `<path>.tmp` and renamed into place only once complete.
///
/// The `segment.spill` fault site simulates a crash mid-write: a
/// truncated `.tmp` is left behind (as a real crash would) and a typed
/// error returned — the final path is never touched, so an existing
/// on-disk copy and the in-memory sealed segment both stay intact.
pub fn write_segment(path: &Path, data: &Dataset) -> Result<()> {
    let image = encode_segment(data);
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    if faultkit::fire("segment.spill") {
        // Crash mid-write: half the image reaches disk, the rename never
        // happens. Recovery is simply re-running the spill.
        let _ = f.write_all(&image[..image.len() / 2]);
        drop(f);
        return Err(Error::Serial(format!(
            "injected spill crash writing {}",
            tmp.display()
        )));
    }
    f.write_all(&image).map_err(|e| io_err("write", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, e))?;
    Ok(())
}

/// Removes stale `*.tmp` files left in `dir` by crashed spill attempts,
/// returning how many were swept (counted as `segment.tmp_swept`).
///
/// A crash between `File::create(tmp)` and the rename leaves the torn
/// `.tmp` behind; it can never shadow a committed segment (readers only
/// open the final name) but it wastes space and, worse, a later clean
/// spill of the same segment would transiently reuse the torn file's
/// name. Sweeping on directory open restores the invariant that every
/// `.tmp` present belongs to an in-flight write.
pub fn sweep_stale_tmp(dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") && fs::remove_file(&path).is_ok() {
            swept += 1;
        }
    }
    if swept > 0 {
        obs::count("segment.tmp_swept", swept as u64);
    }
    swept
}

/// Reloads a spilled segment from `path`, verifying the checksum.
///
/// The `segment.reload` fault site corrupts the in-memory read buffer
/// (one flipped byte); the checksum catches it and the read is retried
/// from the intact file, up to three attempts.
pub fn read_segment(path: &Path) -> Result<Dataset> {
    let mut last = Error::Serial("segment reload failed".into());
    for attempt in 0..3 {
        if attempt > 0 {
            obs::count("segment.reload_retry", 1);
        }
        let mut bytes = fs::read(path).map_err(|e| io_err("read", path, e))?;
        if faultkit::fire("segment.reload") && !bytes.is_empty() {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        match decode_segment(&bytes) {
            Ok(d) => return Ok(d),
            Err(e) => last = e,
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{patients, PatientConfig};

    fn sample() -> Dataset {
        let mut d = patients(&PatientConfig {
            n: 130,
            ..Default::default()
        });
        d.set_value(7, 0, Value::Missing).unwrap();
        d.set_value(64, 2, Value::Missing).unwrap();
        d
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let d = sample();
        let image = encode_segment(&d);
        let back = decode_segment(&image).unwrap();
        assert_eq!(back.schema(), d.schema());
        assert_eq!(back.num_rows(), d.num_rows());
        for c in 0..d.num_columns() {
            for i in 0..d.num_rows() {
                let (a, b) = (d.value(i, c), back.value(i, c));
                match (&a, &b) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "row {i} col {c}")
                    }
                    _ => assert_eq!(a, b, "row {i} col {c}"),
                }
            }
        }
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let image = encode_segment(&sample());
        // Exhaustive over a stride (the image is ~5 KB); every corruption
        // must surface as a typed error, never a silently wrong dataset.
        for pos in (0..image.len()).step_by(97) {
            let mut bad = image.clone();
            bad[pos] ^= 0x01;
            assert!(
                decode_segment(&bad).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncations_are_typed_errors() {
        let image = encode_segment(&sample());
        for keep in [0, 4, 8, 40, image.len() / 2, image.len() - 1] {
            assert!(decode_segment(&image[..keep]).is_err(), "kept {keep}");
        }
    }

    #[test]
    fn crashed_tmp_never_shadows_a_later_clean_write() {
        let dir = std::env::temp_dir().join(format!("tdf_segio_shadow_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg_0.bin");
        let d = sample();
        // Simulate the crash image write_segment leaves behind: a torn
        // .tmp next to the (absent) final path.
        let torn = encode_segment(&d);
        fs::write(path.with_extension("tmp"), &torn[..torn.len() / 2]).unwrap();
        // A later clean write must land the full image under the final
        // name regardless of the stale tmp.
        write_segment(&path, &d).unwrap();
        let back = read_segment(&path).unwrap();
        assert_eq!(back.num_rows(), d.num_rows());
        assert!(
            !path.with_extension("tmp").exists(),
            "clean write consumed the tmp name"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_removes_stale_tmp_and_leaves_segments() {
        let dir = std::env::temp_dir().join(format!("tdf_segio_sweep_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let d = sample();
        write_segment(&dir.join("seg_0.bin"), &d).unwrap();
        fs::write(dir.join("seg_1.tmp"), b"torn").unwrap();
        fs::write(dir.join("seg_2.tmp"), b"").unwrap();
        assert_eq!(sweep_stale_tmp(&dir), 2);
        assert!(dir.join("seg_0.bin").exists(), "real segments survive");
        assert!(!dir.join("seg_1.tmp").exists());
        assert_eq!(sweep_stale_tmp(&dir), 0, "idempotent");
        assert_eq!(
            sweep_stale_tmp(&dir.join("no_such")),
            0,
            "missing dir is a no-op"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn categorical_dictionaries_survive_with_codes_intact() {
        use crate::attribute::{AttributeDef, AttributeKind, AttributeRole};
        let schema = Schema::new(vec![AttributeDef::new(
            "city",
            AttributeKind::Nominal,
            AttributeRole::QuasiIdentifier,
        )])
        .unwrap();
        let mut d = Dataset::new(schema);
        for v in ["b", "a", "b", "c"] {
            d.push_row(vec![v.into()]).unwrap();
        }
        d.push_row(vec![Value::Missing]).unwrap();
        let back = decode_segment(&encode_segment(&d)).unwrap();
        let (orig, got) = (d.col(0), back.col(0));
        let (orig, got) = (orig.as_cat().unwrap(), got.as_cat().unwrap());
        assert_eq!(orig.pool(), got.pool(), "dictionary order preserved");
        assert_eq!(orig.codes(), got.codes(), "codes preserved");
        assert!(got.is_missing(4));
    }
}
