//! Sealed segments + one mutable tail: the out-of-core dataset.
//!
//! [`SegmentedDataset`] stores a growing table as a sequence of
//! *immutable sealed segments* plus one *mutable tail*:
//!
//! * appends go to the tail (an ordinary [`Dataset`]);
//! * [`SegmentedDataset::seal`] freezes the tail into a sealed segment —
//!   an `Arc<Dataset>` whose columns are never written again — and opens
//!   a fresh tail;
//! * sealed segments can **spill to disk** (the [`crate::segio`] binary
//!   codec) and reload on demand, so a dataset larger than RAM streams
//!   through the kernels one segment at a time.
//!
//! Residency is managed by an LRU pin cache with a byte budget, read
//! from `TDF_SEGCACHE` (plain bytes; unset means "never spill").
//! [`SegmentedDataset::pin`] returns a cheap `Arc` clone; a segment whose
//! `Arc` is still held by a caller is never evicted. Eviction writes the
//! segment image atomically (tmp file + rename) before dropping the
//! in-memory copy, so a crash — or the injected `segment.spill` fault —
//! can only ever lose the *disk* copy of a segment that is still
//! resident, never the data itself.
//!
//! Observability: `segment.seal`, `segment.spill`, `segment.spill_failed`,
//! `segment.reload`, `segment.reload_retry`, `segment.cache_hit` and
//! `segment.cache_evict` counters, plus the `segment.resident_bytes` max
//! gauge.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::segio;
use crate::value::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Distinguishes spill directories of concurrent `SegmentedDataset`s in
/// one process.
static INSTANCE: AtomicU64 = AtomicU64::new(0);

/// Immutable facts about one sealed segment.
#[derive(Debug, Clone, Copy)]
pub struct SegMeta {
    /// Stable id, assigned at seal time, unique within this dataset.
    pub id: u64,
    /// Number of rows.
    pub rows: usize,
    /// Global row index of the segment's first row.
    pub start_row: usize,
    /// Heap bytes charged against the cache budget.
    pub bytes: usize,
}

enum SegState {
    Resident {
        data: Arc<Dataset>,
        on_disk: Option<PathBuf>,
    },
    Spilled {
        path: PathBuf,
    },
}

struct Store {
    states: Vec<SegState>,
    /// Segment indices, least-recently-pinned first.
    lru: Vec<usize>,
    resident_bytes: usize,
    budget: usize,
    dir: PathBuf,
    dir_created: bool,
}

impl Store {
    fn touch(&mut self, idx: usize) {
        if let Some(pos) = self.lru.iter().position(|&i| i == idx) {
            self.lru.remove(pos);
        }
        self.lru.push(idx);
    }
}

/// A dataset stored as immutable sealed segments plus one mutable tail.
pub struct SegmentedDataset {
    schema: Schema,
    metas: Vec<SegMeta>,
    tail: Dataset,
    store: Mutex<Store>,
    next_id: u64,
}

impl SegmentedDataset {
    /// Empty segmented dataset; the cache budget comes from
    /// `TDF_SEGCACHE` (bytes; unset or unparsable means "never spill").
    pub fn new(schema: Schema) -> Self {
        let budget = std::env::var("TDF_SEGCACHE")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(usize::MAX);
        Self::with_cache_budget(schema, budget)
    }

    /// Empty segmented dataset with an explicit cache budget in bytes.
    pub fn with_cache_budget(schema: Schema, budget: usize) -> Self {
        let instance = INSTANCE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("tdf-seg-{}-{instance}", std::process::id()));
        Self {
            tail: Dataset::new(schema.clone()),
            schema,
            metas: Vec::new(),
            store: Mutex::new(Store {
                states: Vec::new(),
                lru: Vec::new(),
                resident_bytes: 0,
                budget,
                dir,
                dir_created: false,
            }),
            next_id: 0,
        }
    }

    /// Segments an existing dataset: full chunks of `segment_rows` are
    /// sealed, the remainder (possibly empty) becomes the tail.
    pub fn from_dataset(data: &Dataset, segment_rows: usize) -> Self {
        assert!(segment_rows > 0, "segment_rows must be positive");
        let mut out = Self::new(data.schema().clone());
        let n = data.num_rows();
        let mut start = 0;
        while start + segment_rows <= n {
            let idx: Vec<usize> = (start..start + segment_rows).collect();
            out.tail = data.take(&idx);
            out.seal();
            start += segment_rows;
        }
        if start < n {
            let idx: Vec<usize> = (start..n).collect();
            out.tail = data.take(&idx);
        }
        out
    }

    /// The shared schema of every segment and the tail.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows across sealed segments and the tail.
    pub fn num_rows(&self) -> usize {
        self.sealed_rows() + self.tail.num_rows()
    }

    /// Rows in sealed segments only (the published prefix).
    pub fn sealed_rows(&self) -> usize {
        self.metas.last().map_or(0, |m| m.start_row + m.rows)
    }

    /// Number of sealed segments.
    pub fn num_segments(&self) -> usize {
        self.metas.len()
    }

    /// True when no row has been appended or sealed.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Metadata of sealed segment `idx`.
    pub fn segment_meta(&self, idx: usize) -> SegMeta {
        self.metas[idx]
    }

    /// Ids of the sealed segments, in row order.
    pub fn segment_ids(&self) -> Vec<u64> {
        self.metas.iter().map(|m| m.id).collect()
    }

    /// The mutable tail (rows appended since the last seal).
    pub fn tail(&self) -> &Dataset {
        &self.tail
    }

    /// Appends a record to the tail after arity and type validation.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.tail.push_row(row)
    }

    /// Freezes the tail into a sealed segment and opens a fresh tail.
    /// Returns the new segment's id, or `None` when the tail is empty.
    pub fn seal(&mut self) -> Option<u64> {
        if self.tail.is_empty() {
            return None;
        }
        let sealed = std::mem::replace(&mut self.tail, Dataset::new(self.schema.clone()));
        let id = self.next_id;
        self.next_id += 1;
        let bytes = sealed.heap_bytes();
        let meta = SegMeta {
            id,
            rows: sealed.num_rows(),
            start_row: self.sealed_rows(),
            bytes,
        };
        self.metas.push(meta);
        let idx = self.metas.len() - 1;
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        store.states.push(SegState::Resident {
            data: Arc::new(sealed),
            on_disk: None,
        });
        store.resident_bytes += bytes;
        store.touch(idx);
        obs::count("segment.seal", 1);
        obs::gauge_max("segment.resident_bytes", store.resident_bytes as u64);
        self.enforce_budget(&mut store);
        Some(id)
    }

    /// Number of seals performed so far (the ingest epoch).
    pub fn epoch(&self) -> u64 {
        self.next_id
    }

    /// Changes the cache budget (bytes) and immediately enforces it.
    pub fn set_cache_budget(&self, budget: usize) {
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        store.budget = budget;
        self.enforce_budget(&mut store);
    }

    /// Bytes of sealed segments currently resident in memory.
    pub fn resident_bytes(&self) -> usize {
        self.store
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .resident_bytes
    }

    /// Pins sealed segment `idx` into memory, reloading it from disk if
    /// it was spilled, and returns a shared handle. The segment cannot be
    /// evicted while the handle is alive.
    pub fn pin(&self, idx: usize) -> Result<Arc<Dataset>> {
        let meta = self.metas[idx];
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        match &store.states[idx] {
            SegState::Resident { data, .. } => {
                let data = Arc::clone(data);
                store.touch(idx);
                obs::count("segment.cache_hit", 1);
                Ok(data)
            }
            SegState::Spilled { path } => {
                let loaded = segio::read_segment(path)?;
                if loaded.schema() != &self.schema || loaded.num_rows() != meta.rows {
                    return Err(Error::Serial(format!(
                        "reloaded segment {} does not match its metadata",
                        meta.id
                    )));
                }
                let path = path.clone();
                let data = Arc::new(loaded);
                store.states[idx] = SegState::Resident {
                    data: Arc::clone(&data),
                    on_disk: Some(path),
                };
                store.resident_bytes += meta.bytes;
                store.touch(idx);
                obs::count("segment.reload", 1);
                obs::gauge_max("segment.resident_bytes", store.resident_bytes as u64);
                self.enforce_budget(&mut store);
                Ok(data)
            }
        }
    }

    /// Spills every evictable resident segment regardless of the budget
    /// (tests and shutdown). Returns the number of segments spilled.
    pub fn spill_all(&self) -> usize {
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let before = store.lru.len();
        let candidates: Vec<usize> = store.lru.clone();
        for idx in candidates {
            let _ = self.try_evict(&mut store, idx);
        }
        before - store.lru.len()
    }

    /// Evicts resident segments (least-recently-pinned first) until the
    /// resident bytes fit the budget. Pinned segments are skipped; a
    /// failed spill (e.g. the injected `segment.spill` crash) leaves the
    /// segment resident and stops eviction for this round.
    fn enforce_budget(&self, store: &mut Store) {
        while store.resident_bytes > store.budget {
            let candidates: Vec<usize> = store.lru.clone();
            let mut evicted = false;
            for idx in candidates {
                if store.resident_bytes <= store.budget {
                    return;
                }
                match self.try_evict(store, idx) {
                    Ok(true) => evicted = true,
                    Ok(false) => {}   // pinned: skip
                    Err(_) => return, // spill failed: data stays resident
                }
            }
            if !evicted {
                return; // everything left is pinned
            }
        }
    }

    /// Attempts to evict one segment. `Ok(true)` = evicted, `Ok(false)` =
    /// skipped because a caller still holds its pin, `Err` = spill write
    /// failed (segment stays resident, counted as `segment.spill_failed`).
    fn try_evict(&self, store: &mut Store, idx: usize) -> Result<bool> {
        let meta = self.metas[idx];
        let (data, on_disk) = match &store.states[idx] {
            SegState::Resident { data, on_disk } => (Arc::clone(data), on_disk.clone()),
            SegState::Spilled { .. } => return Ok(false),
        };
        // Two handles exist right now: the state's and ours. More means a
        // caller still reads through this segment — not evictable.
        if Arc::strong_count(&data) > 2 {
            return Ok(false);
        }
        let path = match on_disk {
            Some(p) => p,
            None => {
                if !store.dir_created {
                    std::fs::create_dir_all(&store.dir).map_err(|e| {
                        Error::Serial(format!("create {}: {e}", store.dir.display()))
                    })?;
                    store.dir_created = true;
                }
                let p = store.dir.join(format!("seg-{}.tdfseg", meta.id));
                if let Err(e) = segio::write_segment(&p, &data) {
                    obs::count("segment.spill_failed", 1);
                    return Err(e);
                }
                obs::count("segment.spill", 1);
                p
            }
        };
        store.states[idx] = SegState::Spilled { path };
        store.resident_bytes -= meta.bytes;
        if let Some(pos) = store.lru.iter().position(|&i| i == idx) {
            store.lru.remove(pos);
        }
        obs::count("segment.cache_evict", 1);
        Ok(true)
    }

    /// Streams every part — sealed segments in row order, then the
    /// non-empty tail — through `f`, pinning one segment at a time. The
    /// second argument is the part's global start row.
    pub fn for_each_part<F>(&self, mut f: F) -> Result<()>
    where
        F: FnMut(&Dataset, usize) -> Result<()>,
    {
        for idx in 0..self.metas.len() {
            let part = self.pin(idx)?;
            f(&part, self.metas[idx].start_row)?;
        }
        if !self.tail.is_empty() {
            f(&self.tail, self.sealed_rows())?;
        }
        Ok(())
    }

    /// Materializes the whole table into one in-memory [`Dataset`]
    /// (compatibility shim — defeats the out-of-core purpose; kernels
    /// should stream through [`SegmentedDataset::for_each_part`]).
    pub fn materialize(&self) -> Result<Dataset> {
        let mut out = Dataset::new(self.schema.clone());
        self.for_each_part(|part, _| {
            out = out.union(part)?;
            Ok(())
        })?;
        Ok(out)
    }

    /// Pins every sealed segment and returns a random-access view over
    /// the full row space (sealed + tail). All segments stay resident for
    /// the view's lifetime — this is the compat path for row-oriented
    /// callers, not the streaming path.
    pub fn view(&self) -> Result<SegmentedView<'_>> {
        let mut parts = Vec::with_capacity(self.metas.len());
        for idx in 0..self.metas.len() {
            parts.push(self.pin(idx)?);
        }
        Ok(SegmentedView {
            parts,
            bases: self.metas.iter().map(|m| m.start_row).collect(),
            tail_base: self.sealed_rows(),
            tail: &self.tail,
            num_rows: self.num_rows(),
        })
    }
}

impl Drop for SegmentedDataset {
    fn drop(&mut self) {
        let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        if store.dir_created {
            let _ = std::fs::remove_dir_all(&store.dir);
        }
    }
}

impl std::fmt::Debug for SegmentedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedDataset")
            .field("segments", &self.metas.len())
            .field("sealed_rows", &self.sealed_rows())
            .field("tail_rows", &self.tail.num_rows())
            .finish()
    }
}

/// Random-access view chaining the per-segment datasets and the tail.
///
/// Row indices are global: `value(r, c)` resolves `r` to the owning part
/// with a binary search over the segment start rows.
pub struct SegmentedView<'a> {
    parts: Vec<Arc<Dataset>>,
    bases: Vec<usize>,
    tail_base: usize,
    tail: &'a Dataset,
    num_rows: usize,
}

impl SegmentedView<'_> {
    /// Total rows across all parts.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The part owning global row `row`, and the row's local index.
    pub fn locate(&self, row: usize) -> (&Dataset, usize) {
        assert!(row < self.num_rows, "row {row} out of bounds");
        if row >= self.tail_base {
            return (self.tail, row - self.tail_base);
        }
        let part = self.bases.partition_point(|&b| b <= row) - 1;
        (&self.parts[part], row - self.bases[part])
    }

    /// Materializes the cell at global (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        let (part, local) = self.locate(row);
        part.value(local, col)
    }

    /// Numeric view of the cell at global (`row`, `col`).
    pub fn f64(&self, row: usize, col: usize) -> Option<f64> {
        let (part, local) = self.locate(row);
        part.col(col).f64(local)
    }

    /// The parts in row order — sealed segments, then the non-empty tail
    /// — each with its global start row.
    pub fn parts(&self) -> impl Iterator<Item = (&Dataset, usize)> {
        self.parts
            .iter()
            .map(|p| p.as_ref())
            .zip(self.bases.iter().copied())
            .chain(
                (!self.tail.is_empty())
                    .then_some(self.tail)
                    .map(|t| (t, self.tail_base)),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{patients, PatientConfig};

    fn sample(n: usize) -> Dataset {
        patients(&PatientConfig {
            n,
            ..Default::default()
        })
    }

    fn assert_bit_identical(a: &Dataset, b: &Dataset) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        for c in 0..a.num_columns() {
            for i in 0..a.num_rows() {
                match (a.value(i, c), b.value(i, c)) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "row {i} col {c}")
                    }
                    (x, y) => assert_eq!(x, y, "row {i} col {c}"),
                }
            }
        }
    }

    #[test]
    fn append_seal_preserves_row_order() {
        let d = sample(100);
        let mut seg = SegmentedDataset::new(d.schema().clone());
        for i in 0..d.num_rows() {
            seg.push_row(d.row(i)).unwrap();
            if (i + 1) % 32 == 0 {
                seg.seal().unwrap();
            }
        }
        assert_eq!(seg.num_segments(), 3);
        assert_eq!(seg.tail().num_rows(), 4);
        assert_eq!(seg.num_rows(), 100);
        assert_bit_identical(&seg.materialize().unwrap(), &d);
    }

    #[test]
    fn from_dataset_round_trips_through_view() {
        let d = sample(75);
        let seg = SegmentedDataset::from_dataset(&d, 30);
        assert_eq!(seg.num_segments(), 2);
        assert_eq!(seg.tail().num_rows(), 15);
        let view = seg.view().unwrap();
        assert_eq!(view.num_rows(), 75);
        for i in 0..75 {
            for c in 0..d.num_columns() {
                match (d.value(i, c), view.value(i, c)) {
                    (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn tiny_budget_spills_and_reloads_exactly() {
        let d = sample(200);
        let seg = SegmentedDataset::from_dataset(&d, 40);
        assert_eq!(seg.num_segments(), 5);
        // A budget below one segment's footprint forces every unpinned
        // segment out; reads then stream through spill files.
        seg.set_cache_budget(seg.segment_meta(0).bytes / 2);
        assert_eq!(seg.resident_bytes(), 0);
        assert_bit_identical(&seg.materialize().unwrap(), &d);
    }

    #[test]
    fn pinned_segments_are_never_evicted() {
        let d = sample(120);
        let seg = SegmentedDataset::from_dataset(&d, 40);
        let pinned = seg.pin(0).unwrap();
        seg.set_cache_budget(0);
        // Segment 0 is pinned: it must stay resident and readable even
        // though the budget is zero.
        assert!(seg.resident_bytes() >= seg.segment_meta(0).bytes);
        assert_eq!(pinned.num_rows(), 40);
        drop(pinned);
        // Once released, the budget applies.
        seg.set_cache_budget(0);
        assert_eq!(seg.resident_bytes(), 0);
    }

    #[test]
    fn spill_all_then_stream_matches() {
        let d = sample(90);
        let seg = SegmentedDataset::from_dataset(&d, 30);
        assert_eq!(seg.spill_all(), 3);
        let mut rows = 0;
        seg.for_each_part(|part, base| {
            assert_eq!(base, rows);
            rows += part.num_rows();
            Ok(())
        })
        .unwrap();
        assert_eq!(rows, 90);
    }

    #[test]
    fn seal_of_empty_tail_is_none() {
        let d = sample(10);
        let mut seg = SegmentedDataset::from_dataset(&d, 10);
        assert_eq!(seg.epoch(), 1);
        assert_eq!(seg.seal(), None);
        assert_eq!(seg.epoch(), 1);
    }
}
