//! Sealed segments + one mutable tail: the out-of-core dataset.
//!
//! [`SegmentedDataset`] stores a growing table as a sequence of
//! *immutable sealed segments* plus one *mutable tail*:
//!
//! * appends go to the tail (an ordinary [`Dataset`]);
//! * [`SegmentedDataset::seal`] freezes the tail into a sealed segment —
//!   an `Arc<Dataset>` whose columns are never written again — and opens
//!   a fresh tail;
//! * sealed segments can **spill to disk** (the [`crate::segio`] binary
//!   codec) and reload on demand, so a dataset larger than RAM streams
//!   through the kernels one segment at a time;
//! * small sealed segments can be **compacted**
//!   ([`SegmentedDataset::compact`]): adjacent segments under a row floor
//!   merge into one sealed segment with a fresh stable id, so downstream
//!   per-segment anonymization forms batch-quality groups instead of
//!   fragment-sized ones.
//!
//! Residency is managed by an LRU pin cache with a byte budget, read
//! from `TDF_SEGCACHE` (plain bytes; unset means "never spill").
//! [`SegmentedDataset::pin`] returns a cheap `Arc` clone; a segment whose
//! `Arc` is still held by a caller is never evicted. Eviction writes the
//! segment image atomically (tmp file + rename) before dropping the
//! in-memory copy, so a crash — or the injected `segment.spill` fault —
//! can only ever lose the *disk* copy of a segment that is still
//! resident, never the data itself. By default the budget is enforced
//! synchronously on the ingest/pin path;
//! [`SegmentedDataset::enable_background_eviction`] moves enforcement to
//! a janitor thread so spills happen off the query path.
//!
//! Compaction is **atomic**: the merged images are built (and the
//! injected `segment.compact` crash is drawn) *before* any bookkeeping
//! changes, so a failed compaction leaves every old segment resident and
//! queryable. Eviction rounds draw the injected `segment.evict` fault
//! before touching anything, so a crashed round likewise leaves all
//! residents in place.
//!
//! Observability: `segment.seal`, `segment.spill`, `segment.spill_failed`,
//! `segment.reload`, `segment.reload_retry`, `segment.cache_hit`,
//! `segment.cache_evict`, `segment.compactions`, `segment.compact_merged`,
//! `segment.compact_failed`, `segment.evict_aborted` and
//! `segment.janitor_runs` counters, plus the `segment.resident_bytes` max
//! gauge.

use crate::dataset::Dataset;
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::segio;
use crate::value::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

/// Distinguishes spill directories of concurrent `SegmentedDataset`s in
/// one process.
static INSTANCE: AtomicU64 = AtomicU64::new(0);

/// Immutable facts about one sealed segment.
#[derive(Debug, Clone, Copy)]
pub struct SegMeta {
    /// Stable id, assigned at seal time, unique within this dataset.
    pub id: u64,
    /// Number of rows.
    pub rows: usize,
    /// Global row index of the segment's first row.
    pub start_row: usize,
    /// Heap bytes charged against the cache budget.
    pub bytes: usize,
}

enum SegState {
    Resident {
        data: Arc<Dataset>,
        on_disk: Option<PathBuf>,
    },
    Spilled {
        path: PathBuf,
    },
}

/// One sealed segment's cache entry. Carries the id and byte charge so
/// eviction can run from the janitor thread without reaching back into
/// the dataset's metadata.
struct SegEntry {
    id: u64,
    bytes: usize,
    state: SegState,
}

struct Store {
    entries: Vec<SegEntry>,
    /// Segment indices, least-recently-pinned first. Invariant: exactly
    /// the resident entries, so the LRU list doubles as the resident set.
    lru: Vec<usize>,
    resident_bytes: usize,
    budget: usize,
    dir: PathBuf,
    dir_created: bool,
    /// When true, seal/pin update the gauge but leave budget enforcement
    /// to the janitor thread — spills happen off the query path.
    background: bool,
}

impl Store {
    fn touch(&mut self, idx: usize) {
        if let Some(pos) = self.lru.iter().position(|&i| i == idx) {
            self.lru.remove(pos);
        }
        self.lru.push(idx);
    }

    /// Evicts resident segments (least-recently-pinned first) until the
    /// resident bytes fit the budget. Pinned segments are skipped; a
    /// failed spill (e.g. the injected `segment.spill` crash) leaves the
    /// segment resident and stops eviction for this round, and the
    /// injected `segment.evict` crash aborts a round before it touches
    /// anything — either way no resident data is ever dropped.
    fn enforce_budget(&mut self) {
        while self.resident_bytes > self.budget {
            if faultkit::fire("segment.evict") {
                obs::count("segment.evict_aborted", 1);
                return; // injected janitor crash: everything stays resident
            }
            let candidates: Vec<usize> = self.lru.clone();
            let mut evicted = false;
            for idx in candidates {
                if self.resident_bytes <= self.budget {
                    return;
                }
                match self.try_evict(idx) {
                    Ok(true) => evicted = true,
                    Ok(false) => {}   // pinned: skip
                    Err(_) => return, // spill failed: data stays resident
                }
            }
            if !evicted {
                return; // everything left is pinned
            }
        }
    }

    /// Attempts to evict one segment. `Ok(true)` = evicted, `Ok(false)` =
    /// skipped because a caller still holds its pin, `Err` = spill write
    /// failed (segment stays resident, counted as `segment.spill_failed`).
    fn try_evict(&mut self, idx: usize) -> Result<bool> {
        let (data, on_disk) = match &self.entries[idx].state {
            SegState::Resident { data, on_disk } => (Arc::clone(data), on_disk.clone()),
            SegState::Spilled { .. } => return Ok(false),
        };
        // Two handles exist right now: the state's and ours. More means a
        // caller still reads through this segment — not evictable.
        if Arc::strong_count(&data) > 2 {
            return Ok(false);
        }
        let path = match on_disk {
            Some(p) => p,
            None => {
                if !self.dir_created {
                    std::fs::create_dir_all(&self.dir).map_err(|e| {
                        Error::Serial(format!("create {}: {e}", self.dir.display()))
                    })?;
                    // A previous process may have crashed mid-spill into
                    // this directory; drop its torn `.tmp` files before
                    // the first write of this incarnation.
                    segio::sweep_stale_tmp(&self.dir);
                    self.dir_created = true;
                }
                let p = self
                    .dir
                    .join(format!("seg-{}.tdfseg", self.entries[idx].id));
                if let Err(e) = segio::write_segment(&p, &data) {
                    obs::count("segment.spill_failed", 1);
                    return Err(e);
                }
                obs::count("segment.spill", 1);
                p
            }
        };
        let bytes = self.entries[idx].bytes;
        self.entries[idx].state = SegState::Spilled { path };
        self.resident_bytes -= bytes;
        if let Some(pos) = self.lru.iter().position(|&i| i == idx) {
            self.lru.remove(pos);
        }
        obs::count("segment.cache_evict", 1);
        Ok(true)
    }
}

/// Handle on the background-eviction thread; joined on drop or disable.
struct Janitor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Janitor {
    fn shutdown(mut self) {
        {
            let (lock, cv) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One compaction merge: which old sealed segments became which new one.
#[derive(Debug, Clone)]
pub struct CompactedRun {
    /// Stable id of the merged segment.
    pub new_id: u64,
    /// Ids of the consumed segments, in row order.
    pub old_ids: Vec<u64>,
    /// Rows in the merged segment (the sum over `old_ids`).
    pub rows: usize,
}

/// What one [`SegmentedDataset::compact`] call changed.
#[derive(Debug, Clone, Default)]
pub struct CompactionReport {
    /// The merges performed, in row order. Empty when nothing qualified.
    pub runs: Vec<CompactedRun>,
    /// Sealed segment count before the call.
    pub segments_before: usize,
    /// Sealed segment count after the call.
    pub segments_after: usize,
}

impl CompactionReport {
    /// True when at least one merge happened.
    pub fn merged_any(&self) -> bool {
        !self.runs.is_empty()
    }

    /// Ids of every consumed segment, across all runs.
    pub fn consumed_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|r| r.old_ids.iter().copied())
    }
}

/// A dataset stored as immutable sealed segments plus one mutable tail.
pub struct SegmentedDataset {
    schema: Schema,
    metas: Vec<SegMeta>,
    tail: Dataset,
    store: Arc<Mutex<Store>>,
    next_id: u64,
    janitor: Option<Janitor>,
}

impl SegmentedDataset {
    /// Empty segmented dataset; the cache budget comes from
    /// `TDF_SEGCACHE` (bytes; unset or unparsable means "never spill").
    pub fn new(schema: Schema) -> Self {
        let budget = std::env::var("TDF_SEGCACHE")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(usize::MAX);
        Self::with_cache_budget(schema, budget)
    }

    /// Empty segmented dataset with an explicit cache budget in bytes.
    pub fn with_cache_budget(schema: Schema, budget: usize) -> Self {
        let instance = INSTANCE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("tdf-seg-{}-{instance}", std::process::id()));
        Self {
            tail: Dataset::new(schema.clone()),
            schema,
            metas: Vec::new(),
            store: Arc::new(Mutex::new(Store {
                entries: Vec::new(),
                lru: Vec::new(),
                resident_bytes: 0,
                budget,
                dir,
                dir_created: false,
                background: false,
            })),
            next_id: 0,
            janitor: None,
        }
    }

    /// Segments an existing dataset: full chunks of `segment_rows` are
    /// sealed, the remainder (possibly empty) becomes the tail.
    pub fn from_dataset(data: &Dataset, segment_rows: usize) -> Self {
        assert!(segment_rows > 0, "segment_rows must be positive");
        let mut out = Self::new(data.schema().clone());
        let n = data.num_rows();
        let mut start = 0;
        while start + segment_rows <= n {
            let idx: Vec<usize> = (start..start + segment_rows).collect();
            out.tail = data.take(&idx);
            out.seal();
            start += segment_rows;
        }
        if start < n {
            let idx: Vec<usize> = (start..n).collect();
            out.tail = data.take(&idx);
        }
        out
    }

    /// The shared schema of every segment and the tail.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows across sealed segments and the tail.
    pub fn num_rows(&self) -> usize {
        self.sealed_rows() + self.tail.num_rows()
    }

    /// Rows in sealed segments only (the published prefix).
    pub fn sealed_rows(&self) -> usize {
        self.metas.last().map_or(0, |m| m.start_row + m.rows)
    }

    /// Number of sealed segments.
    pub fn num_segments(&self) -> usize {
        self.metas.len()
    }

    /// True when no row has been appended or sealed.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Metadata of sealed segment `idx`.
    pub fn segment_meta(&self, idx: usize) -> SegMeta {
        self.metas[idx]
    }

    /// Ids of the sealed segments, in row order.
    pub fn segment_ids(&self) -> Vec<u64> {
        self.metas.iter().map(|m| m.id).collect()
    }

    /// The mutable tail (rows appended since the last seal).
    pub fn tail(&self) -> &Dataset {
        &self.tail
    }

    /// Appends a record to the tail after arity and type validation.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.tail.push_row(row)
    }

    /// Freezes the tail into a sealed segment and opens a fresh tail.
    /// Returns the new segment's id, or `None` when the tail is empty.
    pub fn seal(&mut self) -> Option<u64> {
        if self.tail.is_empty() {
            return None;
        }
        let sealed = std::mem::replace(&mut self.tail, Dataset::new(self.schema.clone()));
        let id = self.next_id;
        self.next_id += 1;
        let bytes = sealed.heap_bytes();
        let meta = SegMeta {
            id,
            rows: sealed.num_rows(),
            start_row: self.sealed_rows(),
            bytes,
        };
        self.metas.push(meta);
        let idx = self.metas.len() - 1;
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        store.entries.push(SegEntry {
            id,
            bytes,
            state: SegState::Resident {
                data: Arc::new(sealed),
                on_disk: None,
            },
        });
        store.resident_bytes += bytes;
        store.touch(idx);
        obs::count("segment.seal", 1);
        obs::gauge_max("segment.resident_bytes", store.resident_bytes as u64);
        if !store.background {
            store.enforce_budget();
        }
        Some(id)
    }

    /// Number of stable segment ids handed out so far (seals plus
    /// compaction merges — the ingest epoch). Ids are never reused.
    pub fn epoch(&self) -> u64 {
        self.next_id
    }

    /// Changes the cache budget (bytes) and immediately enforces it —
    /// unless background eviction is enabled, in which case the janitor
    /// picks the new budget up on its next pass.
    pub fn set_cache_budget(&self, budget: usize) {
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        store.budget = budget;
        if !store.background {
            store.enforce_budget();
        }
    }

    /// Bytes of sealed segments currently resident in memory.
    pub fn resident_bytes(&self) -> usize {
        self.store
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .resident_bytes
    }

    /// Moves budget enforcement off the seal/pin path onto a janitor
    /// thread that wakes every `poll` to spill cold segments down to the
    /// budget. Ingest and queries then never block on a spill write; the
    /// cache may transiently overshoot the budget by the rows pinned
    /// between two janitor passes. Idempotent.
    pub fn enable_background_eviction(&mut self, poll: Duration) {
        if self.janitor.is_some() {
            return;
        }
        {
            let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
            store.background = true;
        }
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_thread = Arc::clone(&stop);
        let weak: Weak<Mutex<Store>> = Arc::downgrade(&self.store);
        let handle = std::thread::Builder::new()
            .name("tdf-seg-janitor".to_owned())
            .spawn(move || loop {
                {
                    let (lock, cv) = &*stop_thread;
                    let stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    if *stopped {
                        return;
                    }
                    let (stopped, _) = cv
                        .wait_timeout(stopped, poll)
                        .unwrap_or_else(|e| e.into_inner());
                    if *stopped {
                        return;
                    }
                }
                let Some(store) = weak.upgrade() else { return };
                let mut store = store.lock().unwrap_or_else(|e| e.into_inner());
                if store.resident_bytes > store.budget {
                    obs::count("segment.janitor_runs", 1);
                    store.enforce_budget();
                }
            })
            .expect("spawn tdf-seg-janitor");
        self.janitor = Some(Janitor {
            stop,
            handle: Some(handle),
        });
    }

    /// Stops the janitor thread and restores synchronous budget
    /// enforcement, enforcing the budget once before returning.
    pub fn disable_background_eviction(&mut self) {
        if let Some(j) = self.janitor.take() {
            j.shutdown();
        }
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        store.background = false;
        store.enforce_budget();
    }

    /// Merges runs of adjacent small sealed segments (size-tiered: each
    /// run of segments under the `min_rows` floor closes once it has
    /// accumulated `min_rows` rows) into single sealed segments with
    /// fresh stable ids. Returns what changed; a report with no runs
    /// means nothing qualified.
    ///
    /// Global row order and indices are untouched — merged runs are
    /// adjacent, so every retained segment keeps its `start_row`. Old ids
    /// disappear from [`segment_ids`](Self::segment_ids), which is what
    /// signals downstream image caches (e.g. the epoch publisher) to
    /// re-mask the merged rows as one batch-quality group pool.
    ///
    /// The cutover is atomic with respect to failure: every merged image
    /// is materialized — and the injected `segment.compact` crash drawn —
    /// before any bookkeeping changes, so on `Err` the dataset is exactly
    /// as it was, every old segment still resident and queryable.
    pub fn compact(&mut self, min_rows: usize) -> Result<CompactionReport> {
        let before = self.metas.len();
        let mut report = CompactionReport {
            runs: Vec::new(),
            segments_before: before,
            segments_after: before,
        };
        if min_rows == 0 || before < 2 {
            return Ok(report);
        }
        // Plan: runs of >= 2 adjacent under-floor segments, each run
        // closed once it has accumulated the floor.
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < before {
            if self.metas[i].rows >= min_rows {
                i += 1;
                continue;
            }
            let start = i;
            let mut sum = 0;
            while i < before && self.metas[i].rows < min_rows && sum < min_rows {
                sum += self.metas[i].rows;
                i += 1;
            }
            if i - start >= 2 {
                runs.push((start, i));
            }
        }
        if runs.is_empty() {
            return Ok(report);
        }
        // Build every merged image first; nothing is mutated yet, so any
        // reload error (or the injected crash below) aborts cleanly.
        let mut merged: Vec<Dataset> = Vec::with_capacity(runs.len());
        for &(s, e) in &runs {
            let mut out = Dataset::new(self.schema.clone());
            for idx in s..e {
                let part = self.pin(idx)?;
                out = out.union(&part)?;
            }
            merged.push(out);
        }
        if faultkit::fire("segment.compact") {
            obs::count("segment.compact_failed", 1);
            return Err(Error::Serial(
                "injected crash before compaction cutover (segment.compact)".into(),
            ));
        }
        // Cutover: rebuild metas and cache entries in one pass under the
        // store lock. Retained entries keep their LRU recency; merged
        // segments enter resident as the most recently touched.
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let old_metas = std::mem::take(&mut self.metas);
        let mut old_entries: Vec<Option<SegEntry>> = std::mem::take(&mut store.entries)
            .into_iter()
            .map(Some)
            .collect();
        let old_lru = std::mem::take(&mut store.lru);
        let mut old_to_new: Vec<Option<usize>> = vec![None; before];
        let mut merged_indices: Vec<usize> = Vec::with_capacity(runs.len());
        let mut stale_files: Vec<PathBuf> = Vec::new();
        let mut consumed = 0u64;
        let mut runs_iter = runs.iter().peekable();
        let mut merged_iter = merged.into_iter();
        let mut idx = 0;
        while idx < before {
            if let Some(&&(s, e)) = runs_iter.peek() {
                if idx == s {
                    let data = merged_iter.next().expect("one image per run");
                    let id = self.next_id;
                    self.next_id += 1;
                    let rows = data.num_rows();
                    let bytes = data.heap_bytes();
                    report.runs.push(CompactedRun {
                        new_id: id,
                        old_ids: old_metas[s..e].iter().map(|m| m.id).collect(),
                        rows,
                    });
                    self.metas.push(SegMeta {
                        id,
                        rows,
                        start_row: old_metas[s].start_row,
                        bytes,
                    });
                    for slot in &mut old_entries[s..e] {
                        let entry = slot.take().expect("consumed once");
                        match entry.state {
                            SegState::Resident { on_disk, .. } => {
                                if let Some(p) = on_disk {
                                    stale_files.push(p);
                                }
                            }
                            SegState::Spilled { path } => stale_files.push(path),
                        }
                        consumed += 1;
                    }
                    merged_indices.push(store.entries.len());
                    store.entries.push(SegEntry {
                        id,
                        bytes,
                        state: SegState::Resident {
                            data: Arc::new(data),
                            on_disk: None,
                        },
                    });
                    runs_iter.next();
                    idx = e;
                    continue;
                }
            }
            old_to_new[idx] = Some(store.entries.len());
            self.metas.push(old_metas[idx]);
            store
                .entries
                .push(old_entries[idx].take().expect("retained once"));
            idx += 1;
        }
        store.lru = old_lru.iter().filter_map(|&i| old_to_new[i]).collect();
        store.lru.extend(merged_indices);
        store.resident_bytes = store
            .entries
            .iter()
            .filter(|e| matches!(e.state, SegState::Resident { .. }))
            .map(|e| e.bytes)
            .sum();
        report.segments_after = self.metas.len();
        obs::count("segment.compactions", report.runs.len() as u64);
        obs::count("segment.compact_merged", consumed);
        obs::gauge_max("segment.resident_bytes", store.resident_bytes as u64);
        if !store.background {
            store.enforce_budget();
        }
        drop(store);
        // Consumed spill files are garbage now; removal failures only
        // leave orphans in the per-instance dir, cleaned up on drop.
        for path in stale_files {
            let _ = std::fs::remove_file(path);
        }
        Ok(report)
    }

    /// Pins sealed segment `idx` into memory, reloading it from disk if
    /// it was spilled, and returns a shared handle. The segment cannot be
    /// evicted while the handle is alive.
    pub fn pin(&self, idx: usize) -> Result<Arc<Dataset>> {
        let meta = self.metas[idx];
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        match &store.entries[idx].state {
            SegState::Resident { data, .. } => {
                let data = Arc::clone(data);
                store.touch(idx);
                obs::count("segment.cache_hit", 1);
                Ok(data)
            }
            SegState::Spilled { path } => {
                let loaded = segio::read_segment(path)?;
                if loaded.schema() != &self.schema || loaded.num_rows() != meta.rows {
                    return Err(Error::Serial(format!(
                        "reloaded segment {} does not match its metadata",
                        meta.id
                    )));
                }
                let path = path.clone();
                let data = Arc::new(loaded);
                store.entries[idx].state = SegState::Resident {
                    data: Arc::clone(&data),
                    on_disk: Some(path),
                };
                store.resident_bytes += meta.bytes;
                store.touch(idx);
                obs::count("segment.reload", 1);
                obs::gauge_max("segment.resident_bytes", store.resident_bytes as u64);
                if !store.background {
                    store.enforce_budget();
                }
                Ok(data)
            }
        }
    }

    /// Spills every evictable resident segment regardless of the budget
    /// (tests and shutdown). Returns the number of segments spilled.
    pub fn spill_all(&self) -> usize {
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let before = store.lru.len();
        let candidates: Vec<usize> = store.lru.clone();
        for idx in candidates {
            let _ = store.try_evict(idx);
        }
        before - store.lru.len()
    }

    /// Streams every part — sealed segments in row order, then the
    /// non-empty tail — through `f`, pinning one segment at a time. The
    /// second argument is the part's global start row.
    pub fn for_each_part<F>(&self, mut f: F) -> Result<()>
    where
        F: FnMut(&Dataset, usize) -> Result<()>,
    {
        for idx in 0..self.metas.len() {
            let part = self.pin(idx)?;
            f(&part, self.metas[idx].start_row)?;
        }
        if !self.tail.is_empty() {
            f(&self.tail, self.sealed_rows())?;
        }
        Ok(())
    }

    /// Materializes the whole table into one in-memory [`Dataset`]
    /// (compatibility shim — defeats the out-of-core purpose; kernels
    /// should stream through [`SegmentedDataset::for_each_part`]).
    pub fn materialize(&self) -> Result<Dataset> {
        let mut out = Dataset::new(self.schema.clone());
        self.for_each_part(|part, _| {
            out = out.union(part)?;
            Ok(())
        })?;
        Ok(out)
    }

    /// Pins every sealed segment and returns a random-access view over
    /// the full row space (sealed + tail). All segments stay resident for
    /// the view's lifetime — this is the compat path for row-oriented
    /// callers, not the streaming path.
    pub fn view(&self) -> Result<SegmentedView<'_>> {
        let mut parts = Vec::with_capacity(self.metas.len());
        for idx in 0..self.metas.len() {
            parts.push(self.pin(idx)?);
        }
        Ok(SegmentedView {
            parts,
            bases: self.metas.iter().map(|m| m.start_row).collect(),
            tail_base: self.sealed_rows(),
            tail: &self.tail,
            num_rows: self.num_rows(),
        })
    }
}

impl Drop for SegmentedDataset {
    fn drop(&mut self) {
        if let Some(j) = self.janitor.take() {
            j.shutdown();
        }
        let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        if store.dir_created {
            let _ = std::fs::remove_dir_all(&store.dir);
        }
    }
}

impl std::fmt::Debug for SegmentedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedDataset")
            .field("segments", &self.metas.len())
            .field("sealed_rows", &self.sealed_rows())
            .field("tail_rows", &self.tail.num_rows())
            .finish()
    }
}

/// Random-access view chaining the per-segment datasets and the tail.
///
/// Row indices are global: `value(r, c)` resolves `r` to the owning part
/// with a binary search over the segment start rows.
pub struct SegmentedView<'a> {
    parts: Vec<Arc<Dataset>>,
    bases: Vec<usize>,
    tail_base: usize,
    tail: &'a Dataset,
    num_rows: usize,
}

impl SegmentedView<'_> {
    /// Total rows across all parts.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The part owning global row `row`, and the row's local index.
    pub fn locate(&self, row: usize) -> (&Dataset, usize) {
        assert!(row < self.num_rows, "row {row} out of bounds");
        if row >= self.tail_base {
            return (self.tail, row - self.tail_base);
        }
        let part = self.bases.partition_point(|&b| b <= row) - 1;
        (&self.parts[part], row - self.bases[part])
    }

    /// Materializes the cell at global (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        let (part, local) = self.locate(row);
        part.value(local, col)
    }

    /// Numeric view of the cell at global (`row`, `col`).
    pub fn f64(&self, row: usize, col: usize) -> Option<f64> {
        let (part, local) = self.locate(row);
        part.col(col).f64(local)
    }

    /// The parts in row order — sealed segments, then the non-empty tail
    /// — each with its global start row.
    pub fn parts(&self) -> impl Iterator<Item = (&Dataset, usize)> {
        self.parts
            .iter()
            .map(|p| p.as_ref())
            .zip(self.bases.iter().copied())
            .chain(
                (!self.tail.is_empty())
                    .then_some(self.tail)
                    .map(|t| (t, self.tail_base)),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{patients, PatientConfig};

    fn sample(n: usize) -> Dataset {
        patients(&PatientConfig {
            n,
            ..Default::default()
        })
    }

    fn assert_bit_identical(a: &Dataset, b: &Dataset) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        for c in 0..a.num_columns() {
            for i in 0..a.num_rows() {
                match (a.value(i, c), b.value(i, c)) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "row {i} col {c}")
                    }
                    (x, y) => assert_eq!(x, y, "row {i} col {c}"),
                }
            }
        }
    }

    #[test]
    fn append_seal_preserves_row_order() {
        let d = sample(100);
        let mut seg = SegmentedDataset::new(d.schema().clone());
        for i in 0..d.num_rows() {
            seg.push_row(d.row(i)).unwrap();
            if (i + 1) % 32 == 0 {
                seg.seal().unwrap();
            }
        }
        assert_eq!(seg.num_segments(), 3);
        assert_eq!(seg.tail().num_rows(), 4);
        assert_eq!(seg.num_rows(), 100);
        assert_bit_identical(&seg.materialize().unwrap(), &d);
    }

    #[test]
    fn from_dataset_round_trips_through_view() {
        let d = sample(75);
        let seg = SegmentedDataset::from_dataset(&d, 30);
        assert_eq!(seg.num_segments(), 2);
        assert_eq!(seg.tail().num_rows(), 15);
        let view = seg.view().unwrap();
        assert_eq!(view.num_rows(), 75);
        for i in 0..75 {
            for c in 0..d.num_columns() {
                match (d.value(i, c), view.value(i, c)) {
                    (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    (x, y) => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn tiny_budget_spills_and_reloads_exactly() {
        let d = sample(200);
        let seg = SegmentedDataset::from_dataset(&d, 40);
        assert_eq!(seg.num_segments(), 5);
        // A budget below one segment's footprint forces every unpinned
        // segment out; reads then stream through spill files.
        seg.set_cache_budget(seg.segment_meta(0).bytes / 2);
        assert_eq!(seg.resident_bytes(), 0);
        assert_bit_identical(&seg.materialize().unwrap(), &d);
    }

    #[test]
    fn pinned_segments_are_never_evicted() {
        let d = sample(120);
        let seg = SegmentedDataset::from_dataset(&d, 40);
        let pinned = seg.pin(0).unwrap();
        seg.set_cache_budget(0);
        // Segment 0 is pinned: it must stay resident and readable even
        // though the budget is zero.
        assert!(seg.resident_bytes() >= seg.segment_meta(0).bytes);
        assert_eq!(pinned.num_rows(), 40);
        drop(pinned);
        // Once released, the budget applies.
        seg.set_cache_budget(0);
        assert_eq!(seg.resident_bytes(), 0);
    }

    #[test]
    fn spill_all_then_stream_matches() {
        let d = sample(90);
        let seg = SegmentedDataset::from_dataset(&d, 30);
        assert_eq!(seg.spill_all(), 3);
        let mut rows = 0;
        seg.for_each_part(|part, base| {
            assert_eq!(base, rows);
            rows += part.num_rows();
            Ok(())
        })
        .unwrap();
        assert_eq!(rows, 90);
    }

    #[test]
    fn seal_of_empty_tail_is_none() {
        let d = sample(10);
        let mut seg = SegmentedDataset::from_dataset(&d, 10);
        assert_eq!(seg.epoch(), 1);
        assert_eq!(seg.seal(), None);
        assert_eq!(seg.epoch(), 1);
    }

    #[test]
    fn compaction_merges_small_runs_and_preserves_everything() {
        let d = sample(165);
        // 16 sealed segments of 10 rows + a 5-row tail.
        let mut seg = SegmentedDataset::from_dataset(&d, 10);
        seg.push_row(d.row(0)).unwrap(); // distinct tail content
        let ids_before = seg.segment_ids();
        assert_eq!(seg.num_segments(), 16);

        // Floor 40: runs close at 40 accumulated rows → four merges of
        // four segments each.
        let report = seg.compact(40).unwrap();
        assert_eq!(report.segments_before, 16);
        assert_eq!(report.segments_after, 4);
        assert_eq!(report.runs.len(), 4);
        assert!(report.merged_any());
        for run in &report.runs {
            assert_eq!(run.old_ids.len(), 4);
            assert_eq!(run.rows, 40);
            // Fresh ids, never one of the consumed.
            assert!(!ids_before.contains(&run.new_id));
        }
        assert_eq!(report.consumed_ids().count(), 16);

        // Rows, order and global indices unchanged; tail untouched.
        assert_eq!(seg.num_rows(), 166);
        assert_eq!(seg.tail().num_rows(), 6);
        for (idx, expect_start) in [(0usize, 0usize), (1, 40), (2, 80), (3, 120)] {
            assert_eq!(seg.segment_meta(idx).start_row, expect_start);
        }
        let materialized = seg.materialize().unwrap();
        let mut expect = d.clone();
        expect.push_row(d.row(0)).unwrap();
        assert_bit_identical(&materialized, &expect);

        // Idempotent: everything is at the floor now.
        let again = seg.compact(40).unwrap();
        assert!(!again.merged_any());
    }

    #[test]
    fn compaction_skips_large_segments_and_singleton_runs() {
        let d = sample(100);
        let mut seg = SegmentedDataset::new(d.schema().clone());
        // Layout: 40-row, 10-row, 40-row, 10-row — the small segments are
        // not adjacent, so no run has two members.
        for (start, len) in [(0usize, 40usize), (40, 10), (50, 40), (90, 10)] {
            for i in start..start + len {
                seg.push_row(d.row(i)).unwrap();
            }
            seg.seal().unwrap();
        }
        let ids = seg.segment_ids();
        let report = seg.compact(20).unwrap();
        assert!(!report.merged_any());
        assert_eq!(seg.segment_ids(), ids);
        assert_bit_identical(&seg.materialize().unwrap(), &d);
    }

    #[test]
    fn compaction_works_on_spilled_segments_and_drops_their_files() {
        let d = sample(120);
        let mut seg = SegmentedDataset::from_dataset(&d, 10);
        assert_eq!(seg.spill_all(), 12);
        let report = seg.compact(60).unwrap();
        assert_eq!(report.segments_after, 2);
        assert_bit_identical(&seg.materialize().unwrap(), &d);
        // Merged images are resident; spilling again round-trips.
        seg.spill_all();
        assert_bit_identical(&seg.materialize().unwrap(), &d);
    }

    #[test]
    fn background_janitor_spills_cold_segments_off_the_query_path() {
        let d = sample(200);
        let mut seg = SegmentedDataset::from_dataset(&d, 40);
        seg.enable_background_eviction(Duration::from_millis(2));
        seg.set_cache_budget(0);
        // The janitor owns enforcement now; the budget is reached without
        // any further call on the query path.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while seg.resident_bytes() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "janitor never drained the cache"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_bit_identical(&seg.materialize().unwrap(), &d);
        seg.disable_background_eviction();
        // Synchronous enforcement is back.
        assert_eq!(seg.resident_bytes(), 0);
    }
}
