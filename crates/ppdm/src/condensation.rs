//! Condensation-based PPDM (Aggarwal–Yu [1]).
//!
//! Records are grouped into clusters of at least `k` (via MDAV
//! microaggregation — the two methods coincide, as the paper notes in §2),
//! per-cluster first and second moments are retained, and a *synthetic*
//! dataset is emitted by sampling each cluster's Gaussian. Released data
//! preserve the covariance structure ("a variety of analyses can be validly
//! carried out") while no released record is a real respondent.

use rngkit::Rng;
use tdf_microdata::column::F64Cells;
use tdf_microdata::rng::standard_normal;
use tdf_microdata::{Dataset, Error, Result};
use tdf_sdc::microaggregation::mdav_microaggregate;

/// Condenses the numeric columns `cols` of `data` with group size `k`,
/// emitting one synthetic record per original record.
pub fn condense<R: Rng + ?Sized>(
    data: &Dataset,
    cols: &[usize],
    k: usize,
    rng: &mut R,
) -> Result<Dataset> {
    if k < 2 {
        return Err(Error::InvalidParameter("condensation needs k >= 2".into()));
    }
    let grouping = mdav_microaggregate(data, cols, k)?;
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); grouping.num_groups];
    for (i, &g) in grouping.group_of.iter().enumerate() {
        groups[g].push(i);
    }

    // Synthetic row for original position i is drawn from i's group, so the
    // release stays row-aligned with the original (for risk measurement)
    // while containing no real record. Moments are read through contiguous
    // column cells; the release is assembled by a columnar donor gather
    // plus per-column overwrites of the aggregated attributes.
    let d = cols.len();
    let cells: Vec<F64Cells> = cols
        .iter()
        .map(|&c| data.f64_cells(c).expect("numeric column"))
        .collect();
    let mut donors: Vec<usize> = vec![0; data.num_rows()];
    let mut synth: Vec<Vec<f64>> = vec![vec![0.0; data.num_rows()]; d];
    for members in &groups {
        // Per-group mean and covariance (raw space; missing reads as 0.0,
        // as in the row-major version).
        let mut mean = vec![0.0; d];
        for &i in members {
            for (j, col_cells) in cells.iter().enumerate() {
                mean[j] += col_cells.get(i).unwrap_or(0.0);
            }
        }
        for m in &mut mean {
            *m /= members.len() as f64;
        }
        let mut cov = vec![vec![0.0; d]; d];
        if members.len() > 1 {
            for &i in members {
                for a in 0..d {
                    for b in 0..d {
                        let xa = cells[a].get(i).unwrap_or(0.0) - mean[a];
                        let xb = cells[b].get(i).unwrap_or(0.0) - mean[b];
                        cov[a][b] += xa * xb;
                    }
                }
            }
            for row in &mut cov {
                for v in row.iter_mut() {
                    *v /= (members.len() - 1) as f64;
                }
            }
        }
        let chol = cholesky_psd(&cov);

        // One synthetic record per member; non-aggregated columns are
        // copied from a random *member of the same group* so that
        // (quasi-identifier, confidential) pairings survive only at group
        // granularity.
        let mut z = vec![0.0f64; d];
        for &i in members {
            donors[i] = members[rng.gen_range(0..members.len())];
            for slot in z.iter_mut() {
                *slot = standard_normal(rng);
            }
            for j in 0..d {
                let noise: f64 = (0..=j).map(|t| chol[j][t] * z[t]).sum();
                synth[j][i] = mean[j] + noise;
            }
        }
    }
    let mut out = data.take(&donors);
    for (j, &c) in cols.iter().enumerate() {
        let dst = out.float_col_mut(c)?;
        for (i, &v) in synth[j].iter().enumerate() {
            dst.set(i, Some(v));
        }
    }
    Ok(out)
}

/// Cholesky for positive *semi*-definite matrices: zero-variance directions
/// get zero factors instead of failing.
fn cholesky_psd(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = m.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let s: f64 = (0..j).map(|t| l[i][t] * l[j][t]).sum();
            if i == j {
                let v = m[i][i] - s;
                l[i][j] = if v > 0.0 { v.sqrt() } else { 0.0 };
            } else if l[j][j] > 0.0 {
                l[i][j] = (m[i][j] - s) / l[j][j];
            }
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::rng::seeded;
    use tdf_microdata::stats;
    use tdf_microdata::synth::{patients, PatientConfig};

    fn data() -> Dataset {
        patients(&PatientConfig {
            n: 800,
            ..Default::default()
        })
    }

    #[test]
    fn synthetic_data_preserves_means() {
        let d = data();
        let s = condense(&d, &[0, 1, 2], 10, &mut seeded(1)).unwrap();
        assert_eq!(s.num_rows(), d.num_rows());
        for c in [0usize, 1, 2] {
            let m0 = stats::mean(&d.numeric_column(c)).unwrap();
            let m1 = stats::mean(&s.numeric_column(c)).unwrap();
            assert!((m0 - m1).abs() / m0.abs() < 0.02, "col {c}: {m0} vs {m1}");
        }
    }

    #[test]
    fn synthetic_data_preserves_correlations() {
        // The paper's §2 claim for [1]: "the covariance structure of the
        // original attributes is preserved".
        let d = data();
        let s = condense(&d, &[0, 1, 2], 20, &mut seeded(2)).unwrap();
        let rho0 = stats::correlation(&d.numeric_column(0), &d.numeric_column(1)).unwrap();
        let rho1 = stats::correlation(&s.numeric_column(0), &s.numeric_column(1)).unwrap();
        assert!((rho0 - rho1).abs() < 0.1, "rho {rho0} vs {rho1}");
    }

    #[test]
    fn no_original_record_is_released_verbatim() {
        let d = data();
        let s = condense(&d, &[0, 1, 2], 5, &mut seeded(3)).unwrap();
        let mut exact = 0usize;
        for i in 0..d.num_rows() {
            for j in 0..s.num_rows() {
                if (0..3).all(|c| {
                    (d.value(i, c).as_f64().unwrap() - s.value(j, c).as_f64().unwrap()).abs()
                        < 1e-12
                }) {
                    exact += 1;
                }
            }
        }
        assert_eq!(exact, 0, "synthetic records must not replicate originals");
    }

    #[test]
    fn linkage_risk_drops() {
        let d = data();
        let s = condense(&d, &[0, 1], 10, &mut seeded(4)).unwrap();
        let rate = tdf_sdc::risk::record_linkage_rate(&d, &s, &[0, 1]).unwrap();
        assert!(rate < 0.2, "linkage {rate}");
    }

    #[test]
    fn rejects_k_below_two() {
        let d = data();
        assert!(condense(&d, &[0, 1], 1, &mut seeded(5)).is_err());
    }

    #[test]
    fn psd_cholesky_handles_zero_variance() {
        let l = cholesky_psd(&[vec![0.0, 0.0], vec![0.0, 4.0]]);
        assert_eq!(l[0][0], 0.0);
        assert_eq!(l[1][1], 2.0);
    }
}
