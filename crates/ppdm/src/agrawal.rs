//! Agrawal–Srikant value distortion and Bayesian distribution
//! reconstruction [5].
//!
//! The owner publishes `w_i = x_i + r_i` with `r_i` drawn from a known
//! noise distribution. A miner cannot see the `x_i`, but can recover the
//! *distribution* of X by iterating Bayes' rule over a discretized domain:
//!
//! `f^{t+1}(a) ∝ Σ_i  φ(w_i − a) · f^t(a) / Σ_{a'} φ(w_i − a') · f^t(a')`
//!
//! where `φ` is the noise density. The paper's §2 uses exactly this method
//! as its respondent+owner example — and its §2 "owner without respondent"
//! example cites [11]'s attack against it (see [`crate::sparsity`]).

use rngkit::Rng;
use tdf_microdata::rng::standard_normal;
use tdf_microdata::stats;

/// Gaussian density with standard deviation `sigma`.
fn phi(x: f64, sigma: f64) -> f64 {
    let z = x / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

/// Distorts a column of values with Gaussian noise of standard deviation
/// `sigma`, returning the noisy values.
pub fn distort_column<R: Rng + ?Sized>(xs: &[f64], sigma: f64, rng: &mut R) -> Vec<f64> {
    xs.iter()
        .map(|&x| x + sigma * standard_normal(rng))
        .collect()
}

/// Result of a reconstruction run.
#[derive(Debug, Clone)]
pub struct ReconstructionReport {
    /// Bin midpoints of the discretized domain.
    pub bin_centers: Vec<f64>,
    /// Reconstructed probability per bin (sums to 1).
    pub density: Vec<f64>,
    /// Number of EM iterations performed.
    pub iterations: usize,
}

impl ReconstructionReport {
    /// Total-variation distance to another distribution over the same bins.
    pub fn tv_distance(&self, other: &[f64]) -> f64 {
        stats::total_variation(&self.density, other)
    }
}

/// Reconstructs the distribution of the original values from noisy values
/// `ws`, given the noise standard deviation, over `bins` equal-width bins
/// spanning `[lo, hi)`. Stops after `max_iter` iterations or when the
/// update moves by < 1e-6 in total variation.
pub fn reconstruct_distribution(
    ws: &[f64],
    sigma: f64,
    lo: f64,
    hi: f64,
    bins: usize,
    max_iter: usize,
) -> ReconstructionReport {
    assert!(
        bins > 0 && hi > lo && sigma > 0.0,
        "invalid reconstruction domain"
    );
    let width = (hi - lo) / bins as f64;
    let centers: Vec<f64> = (0..bins).map(|b| lo + (b as f64 + 0.5) * width).collect();
    // Uniform prior.
    let mut f = vec![1.0 / bins as f64; bins];

    // Precompute φ(w_i − a_b) for all (i, b).
    let kernel: Vec<Vec<f64>> = ws
        .iter()
        .map(|&w| centers.iter().map(|&a| phi(w - a, sigma)).collect())
        .collect();

    let mut iterations = 0;
    for _ in 0..max_iter {
        iterations += 1;
        let mut next = vec![0.0; bins];
        for k in &kernel {
            let denom: f64 = k.iter().zip(&f).map(|(p, q)| p * q).sum();
            if denom <= 0.0 {
                continue;
            }
            for b in 0..bins {
                next[b] += k[b] * f[b] / denom;
            }
        }
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for v in &mut next {
                *v /= total;
            }
        }
        let delta = stats::total_variation(&next, &f);
        f = next;
        if delta < 1e-6 {
            break;
        }
    }
    ReconstructionReport {
        bin_centers: centers,
        density: f,
        iterations,
    }
}

/// Convenience: the true (empirical) distribution of `xs` over the same
/// binning, for comparing against a reconstruction.
pub fn empirical_distribution(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    stats::to_distribution(&stats::histogram(xs, lo, hi, bins))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::rng::seeded;

    /// Bimodal sample: the shape reconstruction must recover.
    fn bimodal(n: usize, seed: u64) -> Vec<f64> {
        let mut r = seeded(seed);
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { -3.0 } else { 3.0 };
                c + standard_normal(&mut r) * 0.5
            })
            .collect()
    }

    #[test]
    fn reconstruction_beats_naive_noisy_histogram() {
        let xs = bimodal(4000, 1);
        let sigma = 2.0;
        let ws = distort_column(&xs, sigma, &mut seeded(2));
        let (lo, hi, bins) = (-8.0, 8.0, 32);
        let truth = empirical_distribution(&xs, lo, hi, bins);
        let noisy = empirical_distribution(&ws, lo, hi, bins);
        let recon = reconstruct_distribution(&ws, sigma, lo, hi, bins, 200);
        let tv_noisy = stats::total_variation(&noisy, &truth);
        let tv_recon = recon.tv_distance(&truth);
        assert!(
            tv_recon < tv_noisy * 0.55,
            "reconstruction {tv_recon} should beat raw noisy {tv_noisy}"
        );
    }

    #[test]
    fn reconstruction_recovers_bimodality() {
        let xs = bimodal(4000, 3);
        let sigma = 1.5;
        let ws = distort_column(&xs, sigma, &mut seeded(4));
        let recon = reconstruct_distribution(&ws, sigma, -8.0, 8.0, 16, 200);
        // Mass near ±3 must dominate mass near 0.
        let near = |target: f64| -> f64 {
            recon
                .bin_centers
                .iter()
                .zip(&recon.density)
                .filter(|(&c, _)| (c - target).abs() < 1.0)
                .map(|(_, &d)| d)
                .sum()
        };
        assert!(
            near(-3.0) > 2.0 * near(0.0),
            "left mode {} vs middle {}",
            near(-3.0),
            near(0.0)
        );
        assert!(near(3.0) > 2.0 * near(0.0));
    }

    #[test]
    fn density_is_normalized() {
        let xs = bimodal(500, 5);
        let ws = distort_column(&xs, 1.0, &mut seeded(6));
        let recon = reconstruct_distribution(&ws, 1.0, -8.0, 8.0, 20, 50);
        let total: f64 = recon.density.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(recon.density.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn distortion_has_requested_spread() {
        let xs = vec![0.0; 20_000];
        let ws = distort_column(&xs, 3.0, &mut seeded(7));
        let sd = stats::std_dev(&ws).unwrap();
        assert!((sd - 3.0).abs() < 0.1, "sd {sd}");
    }

    #[test]
    fn converges_before_max_iterations_on_easy_input() {
        let xs = bimodal(1000, 8);
        let ws = distort_column(&xs, 0.5, &mut seeded(9));
        let recon = reconstruct_distribution(&ws, 0.5, -8.0, 8.0, 16, 500);
        assert!(recon.iterations < 500, "iterations {}", recon.iterations);
    }

    #[test]
    #[should_panic(expected = "invalid reconstruction domain")]
    fn invalid_domain_panics() {
        let _ = reconstruct_distribution(&[1.0], 1.0, 5.0, 1.0, 4, 10);
    }
}
