//! The high-dimensional sparsity attack on noise addition
//! (Domingo-Ferrer, Sebé & Castellà [11]) — the paper's §2 example of
//! *owner privacy without respondent privacy*.
//!
//! As dimensionality grows, data become sparse: records drift apart while
//! per-attribute noise stays bounded, so nearest-neighbour linkage between
//! the noisy release and the intruder's external data succeeds almost
//! surely. The owner's aggregate secrets stay protected (the distribution
//! is reconstructible only approximately) while respondents become
//! re-identifiable — a *non-trivial* failure of respondent privacy.

use tdf_microdata::rng::seeded;
use tdf_microdata::{AttributeDef, Dataset, Schema, Value};
use tdf_sdc::noise::{add_noise, NoiseConfig};
use tdf_sdc::risk::record_linkage_rate;

/// Generates an i.i.d. standard-Gaussian cloud of `n` records in `dims`
/// dimensions, all columns quasi-identifiers.
pub fn gaussian_cloud(n: usize, dims: usize, seed: u64) -> Dataset {
    let schema = Schema::new(
        (0..dims)
            .map(|d| AttributeDef::continuous_qi(format!("x{d}")))
            .collect(),
    )
    .expect("generated names are unique");
    let mut rng = seeded(seed);
    let mut data = Dataset::new(schema);
    for _ in 0..n {
        let row: Vec<Value> = (0..dims)
            .map(|_| Value::Float(tdf_microdata::rng::standard_normal(&mut rng)))
            .collect();
        data.push_row(row).expect("row fits");
    }
    data
}

/// One point of the sparsity curve: masks a `dims`-dimensional cloud with
/// relative noise `alpha` and returns the record-linkage success rate.
pub fn linkage_rate_at_dimension(n: usize, dims: usize, alpha: f64, seed: u64) -> f64 {
    let data = gaussian_cloud(n, dims, seed);
    let cols: Vec<usize> = (0..dims).collect();
    let masked = add_noise(
        &data,
        &NoiseConfig::new(alpha, cols.clone()),
        &mut seeded(seed ^ 0xA5),
    )
    .expect("numeric columns");
    record_linkage_rate(&data, &masked, &cols).expect("aligned datasets")
}

/// The full sweep used by the `fig_sparsity` experiment: linkage rate per
/// dimensionality.
pub fn sparsity_sweep(n: usize, dims: &[usize], alpha: f64, seed: u64) -> Vec<(usize, f64)> {
    dims.iter()
        .map(|&d| (d, linkage_rate_at_dimension(n, d, alpha, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_shape() {
        let d = gaussian_cloud(50, 7, 1);
        assert_eq!(d.num_rows(), 50);
        assert_eq!(d.num_columns(), 7);
        assert_eq!(d.schema().quasi_identifier_indices().len(), 7);
    }

    #[test]
    fn linkage_grows_with_dimensionality() {
        // The headline effect of [11]: same noise level, rising dimension,
        // rising re-identification.
        let low = linkage_rate_at_dimension(200, 2, 1.0, 42);
        let high = linkage_rate_at_dimension(200, 40, 1.0, 42);
        assert!(
            high > low + 0.2,
            "linkage must rise with dimension: d=2 → {low}, d=40 → {high}"
        );
        assert!(
            high > 0.5,
            "high-dimensional linkage should be strong: {high}"
        );
    }

    #[test]
    fn linkage_falls_with_noise_amplitude() {
        let quiet = linkage_rate_at_dimension(200, 10, 0.2, 7);
        let loud = linkage_rate_at_dimension(200, 10, 3.0, 7);
        assert!(quiet > loud, "quiet {quiet} vs loud {loud}");
    }

    #[test]
    fn sweep_is_ordered_and_complete() {
        let sweep = sparsity_sweep(100, &[2, 8, 32], 1.0, 3);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].0, 2);
        assert_eq!(sweep[2].0, 32);
        for (_, rate) in &sweep {
            assert!((0.0..=1.0).contains(rate));
        }
    }
}
