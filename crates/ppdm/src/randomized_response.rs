//! Randomized response (Warner 1965; Du–Zhan PPDM use [13]).
//!
//! The respondent (or, per the paper's footnote 1, more realistically the
//! *data owner* acting on the respondents' behalf) answers the sensitive
//! question truthfully with probability `p` and answers the *opposite*
//! question with probability `1 − p`. Individual answers are deniable, yet
//! population frequencies are recoverable:
//!
//! `λ = P(yes) = π·p + (1 − π)(1 − p)  ⇒  π̂ = (λ − (1 − p)) / (2p − 1)`.

use rngkit::Rng;

/// Applies Warner's randomized response to a vector of true booleans.
/// `p` is the probability of answering the direct question (`p ≠ 0.5`).
pub fn warner_mask<R: Rng + ?Sized>(truth: &[bool], p: f64, rng: &mut R) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    truth
        .iter()
        .map(|&t| if rng.gen::<f64>() < p { t } else { !t })
        .collect()
}

/// Unbiased estimator of the true proportion from masked answers.
/// Returns `None` when `p = 0.5` (the channel destroys all information).
pub fn warner_estimate(masked: &[bool], p: f64) -> Option<f64> {
    if (p - 0.5).abs() < 1e-9 || masked.is_empty() {
        return None;
    }
    let lambda = masked.iter().filter(|&&b| b).count() as f64 / masked.len() as f64;
    Some((lambda - (1.0 - p)) / (2.0 * p - 1.0))
}

/// Standard error of the Warner estimator for sample size `n`.
pub fn warner_std_error(pi: f64, p: f64, n: usize) -> f64 {
    assert!(n > 0 && (p - 0.5).abs() > 1e-9);
    let lambda = pi * p + (1.0 - pi) * (1.0 - p);
    (lambda * (1.0 - lambda) / n as f64).sqrt() / (2.0 * p - 1.0).abs()
}

/// Multi-attribute randomized response (Du–Zhan style): each boolean
/// attribute of each record is masked independently; joint frequencies of
/// attribute patterns can be unbiased via the tensor channel inverse.
/// Here we provide the one- and two-attribute estimators the experiments
/// need.
pub fn joint_estimate_2(masked: &[(bool, bool)], p: f64) -> Option<[f64; 4]> {
    if (p - 0.5).abs() < 1e-9 || masked.is_empty() {
        return None;
    }
    let n = masked.len() as f64;
    // Observed pattern frequencies, order: (F,F), (F,T), (T,F), (T,T).
    let mut obs = [0.0f64; 4];
    for &(a, b) in masked {
        obs[(a as usize) * 2 + (b as usize)] += 1.0 / n;
    }
    // Per-bit channel: P(observed o | true t) = p if o==t else 1−p;
    // invert the 2×2 kernel per attribute: M⁻¹ = 1/(2p−1) · [[p, −(1−p)], [−(1−p), p]].
    let inv = |o0: f64, o1: f64| -> (f64, f64) {
        let d = 2.0 * p - 1.0;
        ((p * o0 - (1.0 - p) * o1) / d, (p * o1 - (1.0 - p) * o0) / d)
    };
    // Apply the inverse on the first bit, then the second.
    let (a0b0, a1b0) = inv(obs[0], obs[2]);
    let (a0b1, a1b1) = inv(obs[1], obs[3]);
    let (t00, t01) = inv(a0b0, a0b1);
    let (t10, t11) = inv(a1b0, a1b1);
    Some([t00, t01, t10, t11])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::rng::seeded;

    fn truth(n: usize, pi: f64, seed: u64) -> Vec<bool> {
        let mut r = seeded(seed);
        (0..n)
            .map(|_| rngkit::Rng::gen::<f64>(&mut r) < pi)
            .collect()
    }

    #[test]
    fn estimator_recovers_prevalence() {
        let t = truth(40_000, 0.23, 1);
        let masked = warner_mask(&t, 0.75, &mut seeded(2));
        let est = warner_estimate(&masked, 0.75).unwrap();
        assert!((est - 0.23).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn raw_masked_frequency_is_biased() {
        let t = truth(40_000, 0.1, 3);
        let masked = warner_mask(&t, 0.7, &mut seeded(4));
        let raw = masked.iter().filter(|&&b| b).count() as f64 / masked.len() as f64;
        // λ = 0.1·0.7 + 0.9·0.3 = 0.34: far from the truth.
        assert!((raw - 0.34).abs() < 0.02, "raw {raw}");
        let est = warner_estimate(&masked, 0.7).unwrap();
        assert!((est - 0.1).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn p_half_destroys_information() {
        let t = truth(100, 0.4, 5);
        let masked = warner_mask(&t, 0.5, &mut seeded(6));
        assert!(warner_estimate(&masked, 0.5).is_none());
    }

    #[test]
    fn individual_answers_are_deniable() {
        // With p = 0.7, ~30% of answers differ from the truth.
        let t = truth(20_000, 0.5, 7);
        let masked = warner_mask(&t, 0.7, &mut seeded(8));
        let flipped = t.iter().zip(&masked).filter(|(a, b)| a != b).count() as f64 / t.len() as f64;
        assert!((flipped - 0.3).abs() < 0.02, "flipped {flipped}");
    }

    #[test]
    fn std_error_shrinks_with_n_and_grows_near_half() {
        let se_small = warner_std_error(0.2, 0.8, 100);
        let se_big = warner_std_error(0.2, 0.8, 10_000);
        assert!(se_big < se_small / 5.0);
        let se_sharp = warner_std_error(0.2, 0.95, 1000);
        let se_noisy = warner_std_error(0.2, 0.55, 1000);
        assert!(se_noisy > se_sharp * 3.0);
    }

    #[test]
    fn joint_estimator_recovers_2d_pattern() {
        let mut r = seeded(9);
        let n = 60_000;
        // True joint: P(A)=0.3, P(B|A)=0.8, P(B|¬A)=0.1 — correlated bits.
        let data: Vec<(bool, bool)> = (0..n)
            .map(|_| {
                let a = rngkit::Rng::gen::<f64>(&mut r) < 0.3;
                let b = rngkit::Rng::gen::<f64>(&mut r) < if a { 0.8 } else { 0.1 };
                (a, b)
            })
            .collect();
        let p = 0.8;
        let masked: Vec<(bool, bool)> = data
            .iter()
            .map(|&(a, b)| {
                let ma = if rngkit::Rng::gen::<f64>(&mut r) < p {
                    a
                } else {
                    !a
                };
                let mb = if rngkit::Rng::gen::<f64>(&mut r) < p {
                    b
                } else {
                    !b
                };
                (ma, mb)
            })
            .collect();
        let est = joint_estimate_2(&masked, p).unwrap();
        // Truth: t11 = P(A∧B) = 0.3·0.8 = 0.24; t00 = 0.7·0.9 = 0.63.
        assert!((est[3] - 0.24).abs() < 0.03, "t11 {}", est[3]);
        assert!((est[0] - 0.63).abs() < 0.03, "t00 {}", est[0]);
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 0.02);
    }
}
