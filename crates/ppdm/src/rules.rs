//! Association-rule mining (Apriori) and rule hiding (Verykios et al. [25]).
//!
//! Rule hiding is *use-specific* non-crypto PPDM in the paper's taxonomy
//! (§5): the owner sanitizes the transaction database so that designated
//! sensitive rules can no longer be mined at the agreed thresholds, while
//! trying to keep the remaining rules intact. The inevitable collateral —
//! *lost* rules (legitimate rules destroyed) and *ghost* rules (spurious
//! rules created) — is what the `fig_rule_hiding` experiment charts.

use std::collections::{BTreeMap, BTreeSet};
use tdf_microdata::synth::Transaction;

/// An itemset (sorted, deduplicated item ids).
pub type Itemset = Vec<u32>;

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rule {
    /// Left-hand side.
    pub antecedent: Itemset,
    /// Right-hand side.
    pub consequent: Itemset,
    /// Support of antecedent ∪ consequent (fraction of transactions),
    /// scaled by 1e6 and stored as integer for exact ordering.
    pub support_ppm: u64,
    /// Confidence, scaled by 1e6.
    pub confidence_ppm: u64,
}

impl Rule {
    /// Support as a fraction.
    pub fn support(&self) -> f64 {
        self.support_ppm as f64 / 1e6
    }

    /// Confidence as a fraction.
    pub fn confidence(&self) -> f64 {
        self.confidence_ppm as f64 / 1e6
    }
}

fn support_count(txs: &[Transaction], items: &[u32]) -> usize {
    txs.iter()
        .filter(|t| items.iter().all(|i| t.binary_search(i).is_ok()))
        .count()
}

/// Apriori: all itemsets with support ≥ `min_support`, with their
/// absolute support counts.
pub fn apriori(txs: &[Transaction], min_support: f64) -> BTreeMap<Itemset, usize> {
    assert!((0.0..=1.0).contains(&min_support), "support is a fraction");
    let n = txs.len();
    if n == 0 {
        return BTreeMap::new();
    }
    let min_count = (min_support * n as f64).ceil().max(1.0) as usize;

    let mut frequent: BTreeMap<Itemset, usize> = BTreeMap::new();
    // 1-itemsets.
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for t in txs {
        for &i in t {
            *counts.entry(i).or_default() += 1;
        }
    }
    let mut current: Vec<Itemset> = counts
        .iter()
        .filter(|(_, &c)| c >= min_count)
        .map(|(&i, _)| vec![i])
        .collect();
    for items in &current {
        frequent.insert(items.clone(), counts[&items[0]]);
    }

    // Level-wise join + prune.
    while !current.is_empty() {
        let mut next: BTreeSet<Itemset> = BTreeSet::new();
        for (a_idx, a) in current.iter().enumerate() {
            for b in current.iter().skip(a_idx + 1) {
                // Join candidates sharing all but the last item.
                if a[..a.len() - 1] == b[..b.len() - 1] {
                    let mut cand = a.clone();
                    cand.push(*b.last().expect("non-empty"));
                    cand.sort_unstable();
                    // Prune: all (k−1)-subsets must be frequent.
                    let all_subsets_frequent = (0..cand.len()).all(|skip| {
                        let sub: Itemset = cand
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != skip)
                            .map(|(_, &v)| v)
                            .collect();
                        frequent.contains_key(&sub)
                    });
                    if all_subsets_frequent {
                        next.insert(cand);
                    }
                }
            }
        }
        current = Vec::new();
        for cand in next {
            let c = support_count(txs, &cand);
            if c >= min_count {
                frequent.insert(cand.clone(), c);
                current.push(cand);
            }
        }
    }
    frequent
}

/// Generates all rules with confidence ≥ `min_confidence` from the
/// frequent itemsets of `txs` at `min_support`.
pub fn generate_rules(txs: &[Transaction], min_support: f64, min_confidence: f64) -> Vec<Rule> {
    let frequent = apriori(txs, min_support);
    let n = txs.len() as f64;
    let mut rules = Vec::new();
    for (items, &count) in &frequent {
        if items.len() < 2 {
            continue;
        }
        // Every non-empty proper subset as antecedent.
        let masks = 1u32..(1 << items.len()) - 1;
        for mask in masks {
            let antecedent: Itemset = items
                .iter()
                .enumerate()
                .filter(|(j, _)| mask >> j & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            let consequent: Itemset = items
                .iter()
                .enumerate()
                .filter(|(j, _)| mask >> j & 1 == 0)
                .map(|(_, &v)| v)
                .collect();
            if antecedent.is_empty() || consequent.is_empty() {
                continue;
            }
            let ant_count = frequent
                .get(&antecedent)
                .copied()
                .unwrap_or_else(|| support_count(txs, &antecedent));
            if ant_count == 0 {
                continue;
            }
            let confidence = count as f64 / ant_count as f64;
            if confidence >= min_confidence {
                rules.push(Rule {
                    antecedent,
                    consequent,
                    support_ppm: (count as f64 / n * 1e6).round() as u64,
                    confidence_ppm: (confidence * 1e6).round() as u64,
                });
            }
        }
    }
    rules.sort();
    rules
}

/// Outcome of a hiding run.
#[derive(Debug, Clone)]
pub struct HidingReport {
    /// Sanitized transactions.
    pub transactions: Vec<Transaction>,
    /// Sensitive rules still minable after sanitization (ideally empty).
    pub still_visible: Vec<Rule>,
    /// Non-sensitive rules that were lost (side effect).
    pub lost_rules: Vec<Rule>,
    /// Rules that appeared only after sanitization (ghosts).
    pub ghost_rules: Vec<Rule>,
    /// Number of item deletions performed.
    pub deletions: usize,
}

fn rule_key(r: &Rule) -> (Itemset, Itemset) {
    (r.antecedent.clone(), r.consequent.clone())
}

/// Hides the rules whose (antecedent, consequent) pairs appear in
/// `sensitive` by deleting consequent items from supporting transactions
/// until each rule drops below `min_support` or `min_confidence`
/// (support-reduction strategy of [25]).
pub fn hide_rules(
    txs: &[Transaction],
    sensitive: &[(Itemset, Itemset)],
    min_support: f64,
    min_confidence: f64,
) -> HidingReport {
    let before = generate_rules(txs, min_support, min_confidence);
    let mut sanitized: Vec<Transaction> = txs.to_vec();
    let n = txs.len() as f64;
    let mut deletions = 0usize;

    for (ant, cons) in sensitive {
        let full: Itemset = {
            let mut f = ant.clone();
            f.extend(cons.iter().copied());
            f.sort_unstable();
            f.dedup();
            f
        };
        loop {
            let full_count = support_count(&sanitized, &full);
            let ant_count = support_count(&sanitized, ant);
            let support = full_count as f64 / n;
            let confidence = if ant_count > 0 {
                full_count as f64 / ant_count as f64
            } else {
                0.0
            };
            if support < min_support || confidence < min_confidence {
                break;
            }
            // Delete one consequent item from one supporting transaction:
            // pick the supporting transaction with most items (heuristic:
            // richer baskets absorb the edit with less collateral).
            let victim = sanitized
                .iter()
                .enumerate()
                .filter(|(_, t)| full.iter().all(|i| t.binary_search(i).is_ok()))
                .max_by_key(|(_, t)| t.len())
                .map(|(i, _)| i);
            match victim {
                Some(vi) => {
                    let item = cons[0];
                    sanitized[vi].retain(|&x| x != item);
                    deletions += 1;
                }
                None => break,
            }
        }
    }

    let after = generate_rules(&sanitized, min_support, min_confidence);
    let before_keys: BTreeSet<_> = before.iter().map(rule_key).collect();
    let after_keys: BTreeSet<_> = after.iter().map(rule_key).collect();
    let sensitive_keys: BTreeSet<_> = sensitive
        .iter()
        .map(|(a, c)| (a.clone(), c.clone()))
        .collect();

    let still_visible = after
        .iter()
        .filter(|r| sensitive_keys.contains(&rule_key(r)))
        .cloned()
        .collect();
    let lost_rules = before
        .iter()
        .filter(|r| !sensitive_keys.contains(&rule_key(r)) && !after_keys.contains(&rule_key(r)))
        .cloned()
        .collect();
    let ghost_rules = after
        .iter()
        .filter(|r| !before_keys.contains(&rule_key(r)))
        .cloned()
        .collect();
    HidingReport {
        transactions: sanitized,
        still_visible,
        lost_rules,
        ghost_rules,
        deletions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::synth::{transactions, TransactionConfig};

    fn txs() -> Vec<Transaction> {
        transactions(&TransactionConfig::default())
    }

    #[test]
    fn apriori_finds_planted_itemsets() {
        let frequent = apriori(&txs(), 0.15);
        assert!(
            frequent.contains_key(&vec![1, 2]),
            "planted {{1,2}} at 0.35"
        );
        assert!(
            frequent.contains_key(&vec![3, 4, 5]),
            "planted {{3,4,5}} at 0.25"
        );
        assert!(frequent.contains_key(&vec![1]));
        // Noise-only pairs must be absent.
        assert!(!frequent.contains_key(&vec![20, 30]));
    }

    #[test]
    fn support_counts_are_exact() {
        let data: Vec<Transaction> = vec![vec![1, 2, 3], vec![1, 2], vec![2, 3], vec![1, 2, 3]];
        let frequent = apriori(&data, 0.5);
        assert_eq!(frequent.get(&vec![1, 2]), Some(&3));
        assert_eq!(frequent.get(&vec![2, 3]), Some(&3));
        assert_eq!(frequent.get(&vec![1, 2, 3]), Some(&2));
        assert_eq!(frequent.get(&vec![1, 3]), Some(&2));
    }

    #[test]
    fn rules_have_correct_confidence() {
        let data: Vec<Transaction> = vec![vec![1, 2], vec![1, 2], vec![1, 2], vec![1], vec![2]];
        let rules = generate_rules(&data, 0.5, 0.7);
        let r12 = rules
            .iter()
            .find(|r| r.antecedent == vec![1] && r.consequent == vec![2])
            .expect("1 => 2 minable");
        assert!((r12.confidence() - 0.75).abs() < 1e-6);
        assert!((r12.support() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn hiding_removes_sensitive_rule() {
        let data = txs();
        let sensitive = vec![(vec![1], vec![2])];
        let report = hide_rules(&data, &sensitive, 0.1, 0.5);
        assert!(
            report.still_visible.is_empty(),
            "{:?}",
            report.still_visible
        );
        assert!(report.deletions > 0);
    }

    #[test]
    fn hiding_keeps_transaction_count() {
        let data = txs();
        let report = hide_rules(&data, &[(vec![3], vec![4])], 0.1, 0.5);
        assert_eq!(report.transactions.len(), data.len());
    }

    #[test]
    fn hiding_nothing_is_free() {
        let data = txs();
        let report = hide_rules(&data, &[], 0.1, 0.5);
        assert_eq!(report.deletions, 0);
        assert!(report.lost_rules.is_empty());
        assert!(report.ghost_rules.is_empty());
        assert_eq!(report.transactions, data);
    }

    #[test]
    fn aggressive_hiding_causes_side_effects() {
        let data = txs();
        // Hiding {3} => {4} at a high threshold forces many deletions of
        // item 4, which degrades sibling rules like {3} => {4,5}.
        let report = hide_rules(&data, &[(vec![3], vec![4]), (vec![1], vec![2])], 0.05, 0.3);
        assert!(report.still_visible.is_empty());
        assert!(
            !report.lost_rules.is_empty(),
            "support-reduction hiding always costs collateral rules"
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(apriori(&[], 0.5).is_empty());
        assert!(generate_rules(&[], 0.5, 0.5).is_empty());
    }
}
