//! A binary decision tree (CART-style, Gini impurity, threshold splits)
//! for numeric data.
//!
//! Agrawal–Srikant's evaluation [5] is about decision trees: "decision-tree
//! classifiers properly run on the masked data". [`crate::classifier`]
//! covers the distribution-level route; this module provides the literal
//! tree, so the `fig_release_utility` family of experiments can train the
//! exact model family the paper's reference evaluates — on original,
//! masked, or condensed releases alike.

/// A trained binary decision tree.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionTree {
    /// Leaf predicting a class.
    Leaf(usize),
    /// Internal threshold split: `attribute < threshold` goes left.
    Node {
        /// Attribute index tested.
        attribute: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for `x[attribute] < threshold`.
        left: Box<DecisionTree>,
        /// Subtree for `x[attribute] >= threshold`.
        right: Box<DecisionTree>,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_split: 10,
        }
    }
}

fn gini(labels: &[usize], members: &[usize], num_classes: usize) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; num_classes];
    for &i in members {
        counts[labels[i]] += 1;
    }
    let n = members.len() as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
}

fn majority(labels: &[usize], members: &[usize], num_classes: usize) -> usize {
    let mut counts = vec![0usize; num_classes];
    for &i in members {
        counts[labels[i]] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl DecisionTree {
    /// Trains a tree on numeric rows and class labels.
    pub fn train(
        rows: &[Vec<f64>],
        labels: &[usize],
        num_classes: usize,
        config: &TreeConfig,
    ) -> DecisionTree {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        assert!(!rows.is_empty(), "need training data");
        let members: Vec<usize> = (0..rows.len()).collect();
        grow(
            rows,
            labels,
            num_classes,
            &members,
            config.max_depth,
            config,
        )
    }

    /// Predicts the class of one row.
    pub fn classify(&self, row: &[f64]) -> usize {
        match self {
            DecisionTree::Leaf(c) => *c,
            DecisionTree::Node {
                attribute,
                threshold,
                left,
                right,
            } => {
                if row[*attribute] < *threshold {
                    left.classify(row)
                } else {
                    right.classify(row)
                }
            }
        }
    }

    /// Accuracy on a labelled test set.
    pub fn accuracy(&self, rows: &[Vec<f64>], labels: &[usize]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows
            .iter()
            .zip(labels)
            .filter(|(r, &l)| self.classify(r) == l)
            .count();
        hits as f64 / rows.len() as f64
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        match self {
            DecisionTree::Leaf(_) => 1,
            DecisionTree::Node { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    /// Depth of the tree (leaf = 0).
    pub fn depth(&self) -> usize {
        match self {
            DecisionTree::Leaf(_) => 0,
            DecisionTree::Node { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

fn grow(
    rows: &[Vec<f64>],
    labels: &[usize],
    num_classes: usize,
    members: &[usize],
    depth_left: usize,
    config: &TreeConfig,
) -> DecisionTree {
    let node_gini = gini(labels, members, num_classes);
    if depth_left == 0 || members.len() < config.min_split || node_gini == 0.0 {
        return DecisionTree::Leaf(majority(labels, members, num_classes));
    }

    // Best (attribute, threshold) by weighted Gini, scanning midpoints of
    // consecutive distinct values.
    let num_attrs = rows[members[0]].len();
    let mut best: Option<(usize, f64, f64)> = None; // (attr, threshold, score)
                                                    // `a` indexes into every row, not one slice: a range loop is clearest.
    #[allow(clippy::needless_range_loop)]
    for a in 0..num_attrs {
        let mut sorted: Vec<usize> = members.to_vec();
        sorted.sort_by(|&i, &j| rows[i][a].total_cmp(&rows[j][a]));
        for w in sorted.windows(2) {
            let (lo, hi) = (rows[w[0]][a], rows[w[1]][a]);
            if lo == hi {
                continue;
            }
            let threshold = (lo + hi) / 2.0;
            let (left, right): (Vec<usize>, Vec<usize>) =
                members.iter().partition(|&&i| rows[i][a] < threshold);
            let n = members.len() as f64;
            let score = left.len() as f64 / n * gini(labels, &left, num_classes)
                + right.len() as f64 / n * gini(labels, &right, num_classes);
            if best.is_none_or(|(_, _, s)| score < s) {
                best = Some((a, threshold, score));
            }
        }
    }
    let (attribute, threshold, score) = match best {
        Some(b) => b,
        None => return DecisionTree::Leaf(majority(labels, members, num_classes)),
    };
    if score >= node_gini - 1e-12 {
        // No split improves purity.
        return DecisionTree::Leaf(majority(labels, members, num_classes));
    }
    let (left_m, right_m): (Vec<usize>, Vec<usize>) = members
        .iter()
        .partition(|&&i| rows[i][attribute] < threshold);
    DecisionTree::Node {
        attribute,
        threshold,
        left: Box::new(grow(
            rows,
            labels,
            num_classes,
            &left_m,
            depth_left - 1,
            config,
        )),
        right: Box::new(grow(
            rows,
            labels,
            num_classes,
            &right_m,
            depth_left - 1,
            config,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agrawal::distort_column;
    use tdf_microdata::rng::{seeded, standard_normal};

    fn xor_like(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        // A distribution naive Bayes cannot learn but a depth-2 tree can:
        // label = (x > 0) XOR (y > 0).
        let mut r = seeded(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x = standard_normal(&mut r) * 2.0;
            let y = standard_normal(&mut r) * 2.0;
            rows.push(vec![x, y]);
            labels.push(usize::from((x > 0.0) != (y > 0.0)));
        }
        (rows, labels)
    }

    #[test]
    fn learns_xor_which_naive_bayes_cannot() {
        let (rows, labels) = xor_like(1500, 1);
        let tree = DecisionTree::train(&rows, &labels, 2, &TreeConfig::default());
        let (test_rows, test_labels) = xor_like(500, 2);
        let acc = tree.accuracy(&test_rows, &test_labels);
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(tree.depth() >= 2, "XOR needs at least two levels");
    }

    #[test]
    fn pure_nodes_stop_growing() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![0, 0, 0, 0];
        let tree = DecisionTree::train(&rows, &labels, 2, &TreeConfig::default());
        assert_eq!(tree, DecisionTree::Leaf(0));
    }

    #[test]
    fn depth_limit_is_respected() {
        let (rows, labels) = xor_like(800, 3);
        let tree = DecisionTree::train(
            &rows,
            &labels,
            2,
            &TreeConfig {
                max_depth: 1,
                min_split: 2,
            },
        );
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn constant_features_yield_a_leaf() {
        let rows = vec![vec![5.0]; 20];
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let tree = DecisionTree::train(&rows, &labels, 2, &TreeConfig::default());
        assert!(matches!(tree, DecisionTree::Leaf(_)));
    }

    #[test]
    fn the_agrawal_srikant_claim_with_a_real_tree() {
        // Trees trained on noisy data degrade gracefully at moderate noise
        // when the class structure is axis-aligned (the [5] setting).
        let mut r = seeded(9);
        let n = 2000;
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let x = if c == 0 { -2.0 } else { 2.0 } + standard_normal(&mut r);
            rows.push(vec![x]);
            labels.push(c);
        }
        let clean_tree = DecisionTree::train(&rows, &labels, 2, &TreeConfig::default());
        let col: Vec<f64> = rows.iter().map(|row| row[0]).collect();
        let noisy: Vec<Vec<f64>> = distort_column(&col, 1.0, &mut r)
            .into_iter()
            .map(|x| vec![x])
            .collect();
        let noisy_tree = DecisionTree::train(&noisy, &labels, 2, &TreeConfig::default());
        let acc_clean = clean_tree.accuracy(&rows, &labels);
        let acc_noisy_model = noisy_tree.accuracy(&rows, &labels);
        assert!(acc_clean > 0.95, "{acc_clean}");
        assert!(acc_noisy_model > 0.85, "{acc_noisy_model}");
    }

    #[test]
    #[should_panic(expected = "need training data")]
    fn empty_training_panics() {
        let _ = DecisionTree::train(&[], &[], 2, &TreeConfig::default());
    }
}
