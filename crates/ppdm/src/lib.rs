//! # tdf-ppdm
//!
//! Non-cryptographic privacy-preserving data mining — the *owner privacy*
//! technologies the paper calls "non-crypto PPDM" (§2, §4, §5).
//!
//! The owner masks its data once and then answers (or publishes) freely;
//! crucially, it "does not need to know the exact query being computed on
//! his protected data" (§4), which is what makes these methods composable
//! with PIR — the composition `tdf-core::pipeline` exploits.
//!
//! * [`agrawal`] — the seminal Agrawal–Srikant scheme [5]: additive value
//!   distortion plus Bayesian reconstruction of the original *distribution*
//!   (not the values), enabling distribution-level mining;
//! * [`classifier`] — a histogram Bayes classifier that trains on original,
//!   distorted, or reconstructed distributions — the utility yardstick of
//!   the `fig_reconstruction` experiment;
//! * [`decision_tree`] — a CART-style tree with threshold splits, the
//!   literal model family [5] evaluates;
//! * [`condensation`] — Aggarwal–Yu condensation [1]: microaggregation
//!   groups re-emitted as synthetic records with preserved moments; the
//!   centroid-releasing variant of the same grouping yields k-anonymity
//!   ([12]), while the synthetic variant bounds linkage at ~1/k;
//! * [`randomized_response`] — Warner's randomized response and the
//!   Du–Zhan PPDM use of it [13] (see the paper's footnote 1: in practice
//!   the *owner*, not the respondent, runs the randomizing device);
//! * [`rules`] — an Apriori miner plus Verykios-style association-rule
//!   hiding [25], with lost/ghost side-effect accounting;
//! * [`sparsity`] — the Domingo-Ferrer–Sebé–Castellà attack [11] showing
//!   owner privacy *without* respondent privacy: in high dimension,
//!   noise-masked records become re-identifiable.

pub mod agrawal;
pub mod classifier;
pub mod condensation;
pub mod decision_tree;
pub mod randomized_response;
pub mod rules;
pub mod sparsity;

pub use agrawal::{distort_column, reconstruct_distribution, ReconstructionReport};
pub use condensation::condense;
pub use rules::{apriori, generate_rules, hide_rules, Itemset, Rule};
