//! Histogram (naive) Bayes classification on per-class distributions.
//!
//! Agrawal–Srikant's point [5] is that a classifier trained on
//! *reconstructed* per-class distributions matches one trained on the
//! original data. This module provides exactly that yardstick: a naive
//! Bayes classifier whose class-conditional densities are histograms that
//! can come from (a) original values, (b) raw noisy values, or (c) the
//! Bayesian reconstruction of [`crate::agrawal`].

/// A trained histogram Bayes classifier.
#[derive(Debug, Clone)]
pub struct HistogramBayes {
    lo: f64,
    hi: f64,
    bins: usize,
    /// `class_priors[c]` = P(class c).
    class_priors: Vec<f64>,
    /// `densities[c][a][b]` = P(attribute a in bin b | class c).
    densities: Vec<Vec<Vec<f64>>>,
}

impl HistogramBayes {
    /// Trains from per-class per-attribute bin distributions.
    ///
    /// `densities[c][a]` must each sum to ~1 over `bins` bins spanning
    /// `[lo, hi)`; `class_priors` to ~1 over classes.
    pub fn from_distributions(
        lo: f64,
        hi: f64,
        bins: usize,
        class_priors: Vec<f64>,
        densities: Vec<Vec<Vec<f64>>>,
    ) -> Self {
        assert!(!class_priors.is_empty(), "need at least one class");
        assert_eq!(class_priors.len(), densities.len());
        Self {
            lo,
            hi,
            bins,
            class_priors,
            densities,
        }
    }

    /// Trains directly from labelled numeric rows.
    pub fn train(
        rows: &[Vec<f64>],
        labels: &[usize],
        num_classes: usize,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Self {
        assert_eq!(rows.len(), labels.len());
        assert!(!rows.is_empty(), "need training data");
        let num_attrs = rows[0].len();
        let mut priors = vec![0.0; num_classes];
        let mut counts = vec![vec![vec![1.0f64; bins]; num_attrs]; num_classes]; // Laplace
        let width = (hi - lo) / bins as f64;
        for (row, &c) in rows.iter().zip(labels) {
            priors[c] += 1.0;
            for (a, &x) in row.iter().enumerate() {
                let b = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
                counts[c][a][b] += 1.0;
            }
        }
        let total: f64 = priors.iter().sum();
        for p in &mut priors {
            *p /= total;
        }
        let densities = counts
            .into_iter()
            .map(|per_attr| {
                per_attr
                    .into_iter()
                    .map(|bins_c| {
                        let s: f64 = bins_c.iter().sum();
                        bins_c.into_iter().map(|v| v / s).collect()
                    })
                    .collect()
            })
            .collect();
        Self {
            lo,
            hi,
            bins,
            class_priors: priors,
            densities,
        }
    }

    /// Predicts the class of a numeric row.
    pub fn classify(&self, row: &[f64]) -> usize {
        let width = (self.hi - self.lo) / self.bins as f64;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (c, &prior) in self.class_priors.iter().enumerate() {
            let mut score = prior.max(1e-12).ln();
            for (a, &x) in row.iter().enumerate() {
                let b = (((x - self.lo) / width).floor() as i64).clamp(0, self.bins as i64 - 1)
                    as usize;
                score += self.densities[c][a][b].max(1e-12).ln();
            }
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    /// Accuracy over a labelled test set.
    pub fn accuracy(&self, rows: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert_eq!(rows.len(), labels.len());
        if rows.is_empty() {
            return 0.0;
        }
        let hits = rows
            .iter()
            .zip(labels)
            .filter(|(row, &l)| self.classify(row) == l)
            .count();
        hits as f64 / rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::rng::{seeded, standard_normal};

    /// Two Gaussian classes separated along both attributes.
    fn two_class(n: usize, sep: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut r = seeded(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let center = if c == 0 { -sep / 2.0 } else { sep / 2.0 };
            rows.push(vec![
                center + standard_normal(&mut r),
                center + standard_normal(&mut r),
            ]);
            labels.push(c);
        }
        (rows, labels)
    }

    #[test]
    fn separable_classes_are_learned() {
        let (rows, labels) = two_class(2000, 4.0, 1);
        let model = HistogramBayes::train(&rows, &labels, 2, -8.0, 8.0, 24);
        let (test_rows, test_labels) = two_class(500, 4.0, 2);
        let acc = model.accuracy(&test_rows, &test_labels);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn overlapping_classes_bound_accuracy() {
        let (rows, labels) = two_class(2000, 0.5, 3);
        let model = HistogramBayes::train(&rows, &labels, 2, -8.0, 8.0, 24);
        let (test_rows, test_labels) = two_class(500, 0.5, 4);
        let acc = model.accuracy(&test_rows, &test_labels);
        assert!(acc > 0.5 && acc < 0.8, "accuracy {acc}");
    }

    #[test]
    fn from_distributions_matches_train() {
        // A hand-built model: class 0 concentrated low, class 1 high.
        let densities = vec![vec![vec![0.9, 0.1]], vec![vec![0.1, 0.9]]];
        let model = HistogramBayes::from_distributions(0.0, 2.0, 2, vec![0.5, 0.5], densities);
        assert_eq!(model.classify(&[0.5]), 0);
        assert_eq!(model.classify(&[1.5]), 1);
    }

    #[test]
    fn priors_break_ties() {
        let densities = vec![vec![vec![0.5, 0.5]], vec![vec![0.5, 0.5]]];
        let model = HistogramBayes::from_distributions(0.0, 2.0, 2, vec![0.9, 0.1], densities);
        assert_eq!(model.classify(&[0.5]), 0);
    }

    #[test]
    fn accuracy_of_empty_test_set_is_zero() {
        let (rows, labels) = two_class(100, 2.0, 5);
        let model = HistogramBayes::train(&rows, &labels, 2, -8.0, 8.0, 8);
        assert_eq!(model.accuracy(&[], &[]), 0.0);
    }
}
