//! Primality testing and prime generation.
//!
//! Used by the computational-PIR key generation (Blum primes for
//! Goldwasser–Micali) and the commutative encryption of secure set
//! intersection (safe primes).

use crate::biguint::BigUint;
use crate::modular::{pow_mod, random_bits};
use rngkit::Rng;

/// Small primes used for trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// For the deterministic small range (< 3,317,044,064,679,887,385,961,981)
/// the fixed witness set would suffice, but random bases keep the code
/// simple and the error probability is ≤ 4^−rounds.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: u32, rng: &mut R) -> bool {
    if n.cmp_magnitude(&BigUint::from_u64(2)) == std::cmp::Ordering::Less {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from_u64(p);
        match n.cmp_magnitude(&pb) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => {
                if n.rem_ref(&pb).is_zero() {
                    return false;
                }
            }
        }
    }
    // Write n − 1 = d · 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub_ref(&one);
    let s = {
        let mut s = 0usize;
        let mut d = n_minus_1.clone();
        while d.is_even() {
            d = d.shr_bits(1);
            s += 1;
        }
        s
    };
    let d = n_minus_1.shr_bits(s);

    'witness: for _ in 0..rounds {
        // Random base in [2, n − 2].
        let a = loop {
            let candidate = random_bits(rng, n.bit_length());
            if candidate.cmp_magnitude(&BigUint::from_u64(2)) != std::cmp::Ordering::Less
                && candidate.cmp_magnitude(&n_minus_1) == std::cmp::Ordering::Less
            {
                break candidate;
            }
        };
        let mut x = pow_mod(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = pow_mod(&x, &BigUint::from_u64(2), n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 8, "prime size must be at least 8 bits");
    let top = BigUint::one().shl_bits(bits - 1);
    loop {
        // Force the top bit (exact size) and the bottom bit (odd).
        let mut candidate = random_bits(rng, bits - 1).add_ref(&top);
        if candidate.is_even() {
            candidate = candidate.add_ref(&BigUint::one());
        }
        if is_probable_prime(&candidate, 20, rng) {
            return candidate;
        }
    }
}

/// Generates a Blum prime (`p ≡ 3 mod 4`) with exactly `bits` bits —
/// the kind Goldwasser–Micali moduli are built from.
pub fn random_blum_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    let four = BigUint::from_u64(4);
    let three = BigUint::from_u64(3);
    loop {
        let p = random_prime(rng, bits);
        if p.rem_ref(&four) == three {
            return p;
        }
    }
}

/// Generates a safe prime `p = 2q + 1` (with `q` also prime) of `bits` bits.
/// Slow for large sizes; used with modest parameters by secure set
/// intersection tests.
pub fn random_safe_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    loop {
        let q = random_prime(rng, bits - 1);
        let p = q.shl_bits(1).add_ref(&BigUint::one());
        if is_probable_prime(&p, 20, rng) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngkit::SeedableRng;

    fn rng() -> rngkit::rngs::StdRng {
        rngkit::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn small_primes_recognised() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 97, 101, 7919, 1_000_000_007] {
            assert!(is_probable_prime(&BigUint::from_u64(p), 10, &mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 91, 561, 41041, 825_265] {
            // 561, 41041, 825265 are Carmichael numbers.
            assert!(!is_probable_prime(&BigUint::from_u64(c), 10, &mut r), "{c}");
        }
    }

    #[test]
    fn large_known_prime() {
        let mut r = rng();
        // 2^89 − 1 is a Mersenne prime.
        let p = BigUint::one().shl_bits(89).sub_ref(&BigUint::one());
        assert!(is_probable_prime(&p, 15, &mut r));
        // 2^67 − 1 = 193707721 × 761838257287 is composite.
        let c = BigUint::one().shl_bits(67).sub_ref(&BigUint::one());
        assert!(!is_probable_prime(&c, 15, &mut r));
    }

    #[test]
    fn random_prime_has_requested_size() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 96] {
            let p = random_prime(&mut r, bits);
            assert_eq!(p.bit_length(), bits, "bits = {bits}");
            assert!(!p.is_even());
        }
    }

    #[test]
    fn blum_prime_is_3_mod_4() {
        let mut r = rng();
        let p = random_blum_prime(&mut r, 48);
        assert_eq!(p.rem_ref(&BigUint::from_u64(4)).to_u64(), Some(3));
    }

    #[test]
    fn safe_prime_structure() {
        let mut r = rng();
        let p = random_safe_prime(&mut r, 24);
        let q = p.sub_ref(&BigUint::one()).shr_bits(1);
        assert!(is_probable_prime(&q, 10, &mut r));
        assert!(is_probable_prime(&p, 10, &mut r));
    }
}
