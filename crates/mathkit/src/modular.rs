//! Modular arithmetic on [`BigUint`]: the toolbox behind the
//! Goldwasser–Micali encryption used by computational PIR and the
//! commutative encryption used by secure set intersection.

use crate::bigint::BigInt;
use crate::biguint::BigUint;
use rngkit::Rng;

/// `(a + b) mod m`.
pub fn add_mod(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    a.add_ref(b).rem_ref(m)
}

/// `(a * b) mod m`.
pub fn mul_mod(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    a.mul_ref(b).rem_ref(m)
}

/// `base^exp mod m` by square-and-multiply; `m` must be nonzero.
///
/// Long exponents amortize a Barrett precomputation
/// ([`crate::barrett::Barrett`]), replacing per-step divisions with
/// multiplications; short exponents take the direct path.
pub fn pow_mod(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "modulus must be nonzero");
    if m.is_one() {
        return BigUint::zero();
    }
    if exp.bit_length() > 16 {
        return crate::barrett::Barrett::new(m.clone()).pow_mod(base, exp);
    }
    let mut result = BigUint::one();
    let mut b = base.rem_ref(m);
    for i in 0..exp.bit_length() {
        if exp.bit(i) {
            result = mul_mod(&result, &b, m);
        }
        b = mul_mod(&b, &b, m);
    }
    result
}

/// Extended Euclid on signed integers: returns `(g, x, y)` with
/// `a·x + b·y = g = gcd(a, b)`.
pub fn extended_gcd(a: &BigInt, b: &BigInt) -> (BigInt, BigInt, BigInt) {
    if b.is_zero() {
        let sign_fix = if a.is_negative() {
            BigInt::from_i64(-1)
        } else {
            BigInt::one()
        };
        return (a.abs(), sign_fix, BigInt::zero());
    }
    let (q, r) = a.div_rem(b);
    let (g, x, y) = extended_gcd(b, &r);
    // g = b·x + r·y = b·x + (a − q·b)·y = a·y + b·(x − q·y)
    let new_y = x.sub_ref(&q.mul_ref(&y));
    (g, y, new_y)
}

/// Multiplicative inverse of `a` modulo `m`, when `gcd(a, m) = 1`.
pub fn inv_mod(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let ab = BigInt::from_biguint(false, a.rem_ref(m));
    let mb = BigInt::from_biguint(false, m.clone());
    let (g, x, _) = extended_gcd(&ab, &mb);
    if !g.magnitude().is_one() {
        return None;
    }
    // Bring x into [0, m).
    let mut xi = x;
    while xi.is_negative() {
        xi = xi.add_ref(&mb);
    }
    Some(xi.magnitude().rem_ref(m))
}

/// Jacobi symbol `(a/n)` for odd positive `n`; returns −1, 0 or 1.
pub fn jacobi(a: &BigUint, n: &BigUint) -> i32 {
    assert!(
        !n.is_even() && !n.is_zero(),
        "Jacobi symbol needs odd positive n"
    );
    let mut a = a.rem_ref(n);
    let mut n = n.clone();
    let mut t = 1i32;
    let three = BigUint::from_u64(3);
    let four = BigUint::from_u64(4);
    let five = BigUint::from_u64(5);
    let eight = BigUint::from_u64(8);
    while !a.is_zero() {
        while a.is_even() {
            a = a.shr_bits(1);
            let r = n.rem_ref(&eight);
            if r == three || r == five {
                t = -t;
            }
        }
        std::mem::swap(&mut a, &mut n);
        if a.rem_ref(&four) == three && n.rem_ref(&four) == three {
            t = -t;
        }
        a = a.rem_ref(&n);
    }
    if n.is_one() {
        t
    } else {
        0
    }
}

/// Uniform random value in `[0, bound)`; `bound` must be nonzero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bit_length();
    loop {
        let candidate = random_bits(rng, bits);
        if candidate.cmp_magnitude(bound) == std::cmp::Ordering::Less {
            return candidate;
        }
    }
}

/// Random value with at most `bits` bits.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    let limbs = bits.div_ceil(64);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
    let extra = limbs * 64 - bits;
    if extra > 0 {
        if let Some(top) = v.last_mut() {
            *top >>= extra;
        }
    }
    BigUint::from_limbs(v)
}

/// Uniform random unit modulo `m` (coprime with `m`).
pub fn random_unit<R: Rng + ?Sized>(rng: &mut R, m: &BigUint) -> BigUint {
    loop {
        let candidate = random_below(rng, m);
        if !candidate.is_zero() && candidate.gcd(m).is_one() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::prelude::*;
    use rngkit::SeedableRng;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(&big(2), &big(10), &big(1000)).to_u64(), Some(24));
        assert_eq!(pow_mod(&big(5), &big(0), &big(7)).to_u64(), Some(1));
        assert_eq!(pow_mod(&big(5), &big(3), &BigUint::one()).to_u64(), Some(0));
    }

    #[test]
    fn fermat_little_theorem() {
        // 2^(p-1) ≡ 1 mod p for prime p.
        let p = big(1_000_000_007);
        let r = pow_mod(&big(2), &big(1_000_000_006), &p);
        assert!(r.is_one());
    }

    #[test]
    fn inverse_works_and_detects_non_units() {
        let m = big(101);
        for a in 1..101u64 {
            let inv = inv_mod(&big(a), &m).unwrap();
            assert!(mul_mod(&big(a), &inv, &m).is_one(), "a = {a}");
        }
        assert!(inv_mod(&big(6), &big(9)).is_none());
        assert!(inv_mod(&big(5), &BigUint::one()).is_none());
    }

    #[test]
    fn jacobi_matches_legendre_for_small_prime() {
        // For p = 11: squares are 1,3,4,5,9.
        let p = big(11);
        let squares = [1u64, 3, 4, 5, 9];
        for a in 1..11u64 {
            let expected = if squares.contains(&a) { 1 } else { -1 };
            assert_eq!(jacobi(&big(a), &p), expected, "a = {a}");
        }
        assert_eq!(jacobi(&big(0), &p), 0);
        assert_eq!(jacobi(&big(22), &p), 0);
    }

    #[test]
    fn jacobi_is_multiplicative() {
        let n = big(9907); // odd prime
        for (a, b) in [(2u64, 3u64), (5, 7), (10, 13)] {
            let lhs = jacobi(&big(a * b), &n);
            let rhs = jacobi(&big(a), &n) * jacobi(&big(b), &n);
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(1);
        let bound = BigUint::from_u128(1u128 << 90);
        for _ in 0..100 {
            let v = random_below(&mut rng, &bound);
            assert!(v.cmp_magnitude(&bound) == std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn random_unit_is_coprime() {
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(2);
        let m = big(100);
        for _ in 0..50 {
            let u = random_unit(&mut rng, &m);
            assert!(u.gcd(&m).is_one());
        }
    }

    props! {
        #[test]
        fn pow_mod_matches_u128(b in any::<u32>(), e in 0u32..64, m in 2u64..) {
            let expected = {
                let mut acc: u128 = 1;
                for _ in 0..e {
                    acc = acc * (b as u128 % m as u128) % m as u128;
                }
                acc
            };
            let got = pow_mod(&big(b as u64), &big(e as u64), &big(m));
            prop_assert_eq!(got.to_u128(), Some(expected));
        }

        #[test]
        fn extended_gcd_bezout(a in any::<i64>(), b in any::<i64>()) {
            let ab = BigInt::from_i64(a);
            let bb = BigInt::from_i64(b);
            let (g, x, y) = extended_gcd(&ab, &bb);
            let lhs = ab.mul_ref(&x).add_ref(&bb.mul_ref(&y));
            prop_assert_eq!(lhs, g.clone());
            if a != 0 || b != 0 {
                prop_assert!(!g.is_zero());
            }
        }
    }
}
