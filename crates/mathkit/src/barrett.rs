//! Barrett reduction: division-free modular reduction for a fixed modulus.
//!
//! For modulus `m` of `k` bits, precompute `μ = ⌊2^(2k) / m⌋`; then for any
//! `x < m²`, `q = ⌊(x·μ) / 2^(2k)⌋` satisfies `x − q·m < 3m`, so at most two
//! subtractions finish the reduction. This turns the inner loop of modular
//! exponentiation from a Knuth division into two multiplications and a
//! shift — the standard speed-up computational PIR key sizes need.

use crate::biguint::BigUint;

/// Precomputed reduction context for one modulus.
#[derive(Debug, Clone)]
pub struct Barrett {
    modulus: BigUint,
    mu: BigUint,
    shift: usize,
}

impl Barrett {
    /// Builds a context; panics on zero modulus.
    pub fn new(modulus: BigUint) -> Self {
        assert!(!modulus.is_zero(), "modulus must be nonzero");
        let shift = 2 * modulus.bit_length();
        let mu = BigUint::one().shl_bits(shift).div_rem(&modulus).0;
        Self { modulus, mu, shift }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Reduces `x` modulo the modulus; `x` must be `< modulus²`
    /// (guaranteed for products of reduced operands).
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        debug_assert!(
            x.bit_length() <= 2 * self.modulus.bit_length(),
            "Barrett input out of range"
        );
        let q = x.mul_ref(&self.mu).shr_bits(self.shift);
        let mut r = x.sub_ref(&q.mul_ref(&self.modulus));
        while r.cmp_magnitude(&self.modulus) != std::cmp::Ordering::Less {
            r = r.sub_ref(&self.modulus);
        }
        r
    }

    /// `(a · b) mod m` with both operands already reduced.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.reduce(&a.mul_ref(b))
    }

    /// `base^exp mod m` by square-and-multiply over Barrett reductions.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if self.modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut b = base.rem_ref(&self.modulus);
        for i in 0..exp.bit_length() {
            if exp.bit(i) {
                result = self.mul_mod(&result, &b);
            }
            b = self.mul_mod(&b, &b);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{pow_mod, random_bits};
    use check::prelude::*;
    use rngkit::SeedableRng;

    #[test]
    fn reduce_matches_rem_small() {
        let m = BigUint::from_u64(1_000_003);
        let b = Barrett::new(m.clone());
        for x in [0u64, 1, 999_999, 1_000_003, 123_456_789] {
            let xb = BigUint::from_u64(x).mul_ref(&BigUint::from_u64(7919));
            assert_eq!(b.reduce(&xb), xb.rem_ref(&m), "x = {x}");
        }
    }

    #[test]
    fn pow_matches_generic_pow_mod_on_big_moduli() {
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(0xBA77);
        for bits in [64usize, 128, 257] {
            let mut m = random_bits(&mut rng, bits);
            if m.is_zero() {
                m = BigUint::from_u64(97);
            }
            let barrett = Barrett::new(m.clone());
            let base = random_bits(&mut rng, bits / 2 + 3);
            let exp = random_bits(&mut rng, 48);
            assert_eq!(
                barrett.pow_mod(&base, &exp),
                pow_mod(&base, &exp, &m),
                "bits = {bits}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_modulus_panics() {
        let _ = Barrett::new(BigUint::zero());
    }

    props! {
        #[test]
        fn reduce_matches_rem(x in any::<u128>(), m in 2u64..) {
            let mb = BigUint::from_u64(m);
            let barrett = Barrett::new(mb.clone());
            // Keep x < m² as the contract requires.
            let x = BigUint::from_u128(x % (m as u128 * m as u128));
            prop_assert_eq!(barrett.reduce(&x), x.rem_ref(&mb));
        }

        #[test]
        fn mul_mod_matches_u128(a in any::<u64>(), b in any::<u64>(), m in 2u64..) {
            let mb = BigUint::from_u64(m);
            let barrett = Barrett::new(mb.clone());
            let ar = BigUint::from_u64(a % m);
            let br = BigUint::from_u64(b % m);
            let expected = (a % m) as u128 * (b % m) as u128 % m as u128;
            prop_assert_eq!(barrett.mul_mod(&ar, &br).to_u128(), Some(expected));
        }
    }
}
