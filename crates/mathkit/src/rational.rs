//! Exact rational numbers over [`BigInt`].
//!
//! The Chin–Ozsoyoglu query auditor solves linear systems exactly — floating
//! point would let rounding hide a disclosure — so it runs over these.

use crate::bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational; invariant: denominator positive, fraction reduced,
/// zero is `0/1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt, // always positive
}

impl Rational {
    /// Zero.
    pub fn zero() -> Self {
        Self {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// One.
    pub fn one() -> Self {
        Self {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Builds `num/den`; panics when `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut r = Self { num, den };
        r.reduce();
        r
    }

    /// Builds from an integer.
    pub fn from_int(v: i64) -> Self {
        Self {
            num: BigInt::from_i64(v),
            den: BigInt::one(),
        }
    }

    /// Builds `p/q` from machine integers; panics when `q` is zero.
    pub fn from_ratio(p: i64, q: i64) -> Self {
        Self::new(BigInt::from_i64(p), BigInt::from_i64(q))
    }

    fn reduce(&mut self) {
        if self.den.is_negative() {
            self.num = self.num.neg_ref();
            self.den = self.den.neg_ref();
        }
        if self.num.is_zero() {
            self.den = BigInt::one();
            return;
        }
        let g = self.num.gcd(&self.den);
        if !g.magnitude().is_one() {
            self.num = self.num.div_rem(&g).0;
            self.den = self.den.div_rem(&g).0;
        }
    }

    /// Numerator (sign-carrying).
    pub fn numerator(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denominator(&self) -> &BigInt {
        &self.den
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True when the value is a whole number.
    pub fn is_integer(&self) -> bool {
        self.den.magnitude().is_one()
    }

    /// Sum.
    pub fn add_ref(&self, other: &Self) -> Self {
        Self::new(
            self.num
                .mul_ref(&other.den)
                .add_ref(&other.num.mul_ref(&self.den)),
            self.den.mul_ref(&other.den),
        )
    }

    /// Difference.
    pub fn sub_ref(&self, other: &Self) -> Self {
        self.add_ref(&other.neg_ref())
    }

    /// Product.
    pub fn mul_ref(&self, other: &Self) -> Self {
        Self::new(self.num.mul_ref(&other.num), self.den.mul_ref(&other.den))
    }

    /// Quotient; panics when `other` is zero.
    pub fn div_ref(&self, other: &Self) -> Self {
        assert!(!other.is_zero(), "division by zero rational");
        Self::new(self.num.mul_ref(&other.den), self.den.mul_ref(&other.num))
    }

    /// Negation.
    pub fn neg_ref(&self) -> Self {
        Self {
            num: self.num.neg_ref(),
            den: self.den.clone(),
        }
    }

    /// Approximate `f64` value (for reporting only, never for auditing).
    pub fn to_f64(&self) -> f64 {
        // Good enough for reporting: go through decimal strings to avoid
        // limb-level float assembly.
        let n: f64 = self.num.to_string().parse().unwrap_or(f64::NAN);
        let d: f64 = self.den.to_string().parse().unwrap_or(f64::NAN);
        n / d
    }

    /// Comparison.
    pub fn cmp_value(&self, other: &Self) -> Ordering {
        self.num
            .mul_ref(&other.den)
            .cmp_value(&other.num.mul_ref(&self.den))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
}
impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        self.add_ref(rhs)
    }
}
impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self.sub_ref(rhs)
    }
}
impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        self.mul_ref(rhs)
    }
}
impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        self.div_ref(rhs)
    }
}
impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.neg_ref()
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}
impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::prelude::*;

    #[test]
    fn reduction_and_sign_normalisation() {
        let r = Rational::from_ratio(6, -4);
        assert_eq!(r.to_string(), "-3/2");
        assert_eq!(Rational::from_ratio(0, -7), Rational::zero());
        assert!(Rational::from_ratio(10, 5).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::from_ratio(1, 0);
    }

    #[test]
    fn arithmetic_hand_cases() {
        let a = Rational::from_ratio(1, 2);
        let b = Rational::from_ratio(1, 3);
        assert_eq!(a.add_ref(&b), Rational::from_ratio(5, 6));
        assert_eq!(a.sub_ref(&b), Rational::from_ratio(1, 6));
        assert_eq!(a.mul_ref(&b), Rational::from_ratio(1, 6));
        assert_eq!(a.div_ref(&b), Rational::from_ratio(3, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::from_ratio(1, 3) < Rational::from_ratio(1, 2));
        assert!(Rational::from_ratio(-1, 2) < Rational::zero());
        assert_eq!(Rational::from_ratio(2, 4), Rational::from_ratio(1, 2));
    }

    #[test]
    fn to_f64_approximates() {
        assert!((Rational::from_ratio(1, 4).to_f64() - 0.25).abs() < 1e-12);
        assert!((Rational::from_ratio(-7, 2).to_f64() + 3.5).abs() < 1e-12);
    }

    props! {
        #[test]
        fn field_ops_match_f64(a in -1000i64..1000, b in 1i64..1000,
                               c in -1000i64..1000, d in 1i64..1000) {
            let x = Rational::from_ratio(a, b);
            let y = Rational::from_ratio(c, d);
            let sum = x.add_ref(&y).to_f64();
            prop_assert!((sum - (a as f64 / b as f64 + c as f64 / d as f64)).abs() < 1e-9);
        }

        #[test]
        fn add_sub_round_trip(a in -1000i64..1000, b in 1i64..1000,
                              c in -1000i64..1000, d in 1i64..1000) {
            let x = Rational::from_ratio(a, b);
            let y = Rational::from_ratio(c, d);
            prop_assert_eq!(x.add_ref(&y).sub_ref(&y), x);
        }

        #[test]
        fn mul_div_round_trip(a in -1000i64..1000, b in 1i64..1000,
                              c in 1i64..1000, d in 1i64..1000) {
            let x = Rational::from_ratio(a, b);
            let y = Rational::from_ratio(c, d);
            prop_assert_eq!(x.mul_ref(&y).div_ref(&y), x);
        }
    }
}
