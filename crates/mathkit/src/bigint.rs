//! Signed arbitrary-precision integers (sign + magnitude wrapper).

use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]; zero is always [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// A signed arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    negative: bool, // never true for zero
    magnitude: BigUint,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        Self {
            negative: false,
            magnitude: BigUint::zero(),
        }
    }

    /// One.
    pub fn one() -> Self {
        Self {
            negative: false,
            magnitude: BigUint::one(),
        }
    }

    /// Builds from a sign and magnitude.
    pub fn from_biguint(negative: bool, magnitude: BigUint) -> Self {
        let negative = negative && !magnitude.is_zero();
        Self {
            negative,
            magnitude,
        }
    }

    /// Builds from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        Self::from_biguint(v < 0, BigUint::from_u64(v.unsigned_abs()))
    }

    /// Builds from an `i128`.
    pub fn from_i128(v: i128) -> Self {
        Self::from_biguint(v < 0, BigUint::from_u128(v.unsigned_abs()))
    }

    /// The value as `i128`, if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.magnitude.to_u128()?;
        if self.negative {
            if m <= i128::MAX as u128 + 1 {
                Some((m as i128).wrapping_neg())
            } else {
                None
            }
        } else if m <= i128::MAX as u128 {
            Some(m as i128)
        } else {
            None
        }
    }

    /// Magnitude (absolute value).
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        if self.magnitude.is_zero() {
            Sign::Zero
        } else if self.negative {
            Sign::Negative
        } else {
            Sign::Positive
        }
    }

    /// True when zero.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// True when strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Self {
            negative: false,
            magnitude: self.magnitude.clone(),
        }
    }

    /// Sum.
    pub fn add_ref(&self, other: &Self) -> Self {
        if self.negative == other.negative {
            Self::from_biguint(self.negative, self.magnitude.add_ref(&other.magnitude))
        } else {
            match self.magnitude.cmp_magnitude(&other.magnitude) {
                Ordering::Equal => Self::zero(),
                Ordering::Greater => {
                    Self::from_biguint(self.negative, self.magnitude.sub_ref(&other.magnitude))
                }
                Ordering::Less => {
                    Self::from_biguint(other.negative, other.magnitude.sub_ref(&self.magnitude))
                }
            }
        }
    }

    /// Difference.
    pub fn sub_ref(&self, other: &Self) -> Self {
        self.add_ref(&other.neg_ref())
    }

    /// Product.
    pub fn mul_ref(&self, other: &Self) -> Self {
        Self::from_biguint(
            self.negative != other.negative,
            self.magnitude.mul_ref(&other.magnitude),
        )
    }

    /// Negation.
    pub fn neg_ref(&self) -> Self {
        Self::from_biguint(!self.negative, self.magnitude.clone())
    }

    /// Truncated division (quotient rounds toward zero) with remainder of
    /// the dividend's sign, like Rust's `/` and `%` on primitives.
    pub fn div_rem(&self, other: &Self) -> (Self, Self) {
        let (q, r) = self.magnitude.div_rem(&other.magnitude);
        (
            Self::from_biguint(self.negative != other.negative, q),
            Self::from_biguint(self.negative, r),
        )
    }

    /// Greatest common divisor (non-negative).
    pub fn gcd(&self, other: &Self) -> Self {
        Self::from_biguint(false, self.magnitude.gcd(&other.magnitude))
    }

    /// Comparison.
    pub fn cmp_value(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.magnitude.cmp_magnitude(&other.magnitude),
            (true, true) => other.magnitude.cmp_magnitude(&self.magnitude),
        }
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
}
impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        self.add_ref(rhs)
    }
}
impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self.sub_ref(rhs)
    }
}
impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        self.mul_ref(rhs)
    }
}
impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        self.neg_ref()
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        Self::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::prelude::*;

    #[test]
    fn signs() {
        assert_eq!(BigInt::from_i64(-5).sign(), Sign::Negative);
        assert_eq!(BigInt::zero().sign(), Sign::Zero);
        assert_eq!(BigInt::from_i64(5).sign(), Sign::Positive);
        // Negative zero must normalize to zero.
        assert_eq!(
            BigInt::from_biguint(true, BigUint::zero()).sign(),
            Sign::Zero
        );
    }

    #[test]
    fn display() {
        assert_eq!(BigInt::from_i64(-42).to_string(), "-42");
        assert_eq!(BigInt::zero().to_string(), "0");
    }

    props! {
        #[test]
        fn add_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            let s = BigInt::from_i128(a).add_ref(&BigInt::from_i128(b));
            prop_assert_eq!(s.to_i128(), Some(a + b));
        }

        #[test]
        fn sub_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            let d = BigInt::from_i128(a).sub_ref(&BigInt::from_i128(b));
            prop_assert_eq!(d.to_i128(), Some(a - b));
        }

        #[test]
        fn mul_matches_i128(a in -(1i128<<60)..(1i128<<60), b in -(1i128<<60)..(1i128<<60)) {
            let p = BigInt::from_i128(a).mul_ref(&BigInt::from_i128(b));
            prop_assert_eq!(p.to_i128(), Some(a * b));
        }

        #[test]
        fn div_rem_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            prop_assume!(b != 0);
            let (q, r) = BigInt::from_i128(a).div_rem(&BigInt::from_i128(b));
            prop_assert_eq!(q.to_i128(), Some(a / b));
            prop_assert_eq!(r.to_i128(), Some(a % b));
        }

        #[test]
        fn ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(
                BigInt::from_i64(a).cmp(&BigInt::from_i64(b)),
                a.cmp(&b)
            );
        }
    }
}
