//! Exact linear algebra over the rationals, plus GF(2) vector helpers.
//!
//! The rational Gaussian elimination is the core of the Chin–Ozsoyoglu
//! query auditor (`tdf-querydb`): a SUM query over a set of records is a
//! 0/1 row; a respondent's value is *compromised* exactly when its unit
//! vector lies in the row space of the answered queries. The GF(2) helpers
//! back XOR-based multi-server PIR (`tdf-pir`).

// Index loops below walk several parallel arrays; iterators would obscure them.
#![allow(clippy::needless_range_loop)]

use crate::rational::Rational;

/// A dense matrix of rationals in reduced row-echelon form maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QMatrix {
    cols: usize,
    /// Rows kept in reduced row-echelon form; parallel `rhs` values.
    rows: Vec<Vec<Rational>>,
    rhs: Vec<Rational>,
    /// `pivots[i]` = pivot column of row `i`, strictly increasing.
    pivots: Vec<usize>,
}

impl QMatrix {
    /// An empty system over `cols` unknowns.
    pub fn new(cols: usize) -> Self {
        Self {
            cols,
            rows: Vec::new(),
            rhs: Vec::new(),
            pivots: Vec::new(),
        }
    }

    /// Number of unknowns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Current rank (number of independent rows absorbed).
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Reduces `row` against the current basis, returning the residual row
    /// and residual right-hand side.
    fn reduce(&self, mut row: Vec<Rational>, mut b: Rational) -> (Vec<Rational>, Rational) {
        for (i, &p) in self.pivots.iter().enumerate() {
            if !row[p].is_zero() {
                let factor = row[p].clone();
                for c in 0..self.cols {
                    row[c] = row[c].sub_ref(&factor.mul_ref(&self.rows[i][c]));
                }
                b = b.sub_ref(&factor.mul_ref(&self.rhs[i]));
            }
        }
        (row, b)
    }

    /// Absorbs the equation `row · x = b`.
    ///
    /// Returns `true` when the row was independent (rank grew), `false`
    /// when it was linearly dependent on what is already known. Panics if
    /// the equation is *inconsistent* with the current system — the auditor
    /// never feeds inconsistent true answers.
    pub fn absorb(&mut self, row: &[Rational], b: &Rational) -> bool {
        self.absorb_inner(row, b, true)
    }

    /// Like [`QMatrix::absorb`] but ignores the right-hand side of
    /// dependent rows instead of checking consistency. Used for pure
    /// row-space reasoning where values are unknown or irrelevant.
    pub fn absorb_row_space(&mut self, row: &[Rational]) -> bool {
        self.absorb_inner(row, &Rational::zero(), false)
    }

    fn absorb_inner(&mut self, row: &[Rational], b: &Rational, check: bool) -> bool {
        assert_eq!(row.len(), self.cols, "row arity mismatch");
        let (mut row, b) = self.reduce(row.to_vec(), b.clone());
        let pivot = match row.iter().position(|v| !v.is_zero()) {
            Some(p) => p,
            None => {
                if check {
                    assert!(
                        b.is_zero(),
                        "inconsistent equation absorbed into audit system"
                    );
                }
                return false;
            }
        };
        // Normalize so the pivot is 1.
        let inv = row[pivot].clone();
        for c in 0..self.cols {
            row[c] = row[c].div_ref(&inv);
        }
        let b = b.div_ref(&inv);
        // Back-substitute into existing rows to stay fully reduced.
        for i in 0..self.rows.len() {
            if !self.rows[i][pivot].is_zero() {
                let factor = self.rows[i][pivot].clone();
                for c in 0..self.cols {
                    let delta = factor.mul_ref(&row[c]);
                    self.rows[i][c] = self.rows[i][c].sub_ref(&delta);
                }
                self.rhs[i] = self.rhs[i].sub_ref(&factor.mul_ref(&b));
            }
        }
        // Insert keeping pivot order.
        let at = self
            .pivots
            .iter()
            .position(|&p| p > pivot)
            .unwrap_or(self.pivots.len());
        self.rows.insert(at, row);
        self.rhs.insert(at, b);
        self.pivots.insert(at, pivot);
        true
    }

    /// Would absorbing `row` make unknown `target` uniquely determined?
    ///
    /// Non-destructive: used by the auditor to *refuse* a query before
    /// answering it.
    pub fn would_determine(&self, row: &[Rational], target: usize) -> bool {
        // Determinacy depends only on the row space, so the probe can use a
        // dummy right-hand side.
        let mut probe = self.clone();
        probe.absorb_row_space(row);
        probe.determined(target).is_some()
    }

    /// If unknown `target` is uniquely determined, returns its value.
    pub fn determined(&self, target: usize) -> Option<Rational> {
        for (i, &p) in self.pivots.iter().enumerate() {
            if p == target {
                // Determined iff the row is exactly the unit vector e_target.
                let unit = self.rows[i].iter().enumerate().all(|(c, v)| {
                    if c == target {
                        !v.is_zero()
                    } else {
                        v.is_zero()
                    }
                });
                if unit {
                    return Some(self.rhs[i].clone());
                }
                return None;
            }
        }
        None
    }

    /// All unknowns currently determined, as `(index, value)` pairs.
    pub fn all_determined(&self) -> Vec<(usize, Rational)> {
        (0..self.cols)
            .filter_map(|t| self.determined(t).map(|v| (t, v)))
            .collect()
    }

    /// True when `row` lies in the span of the absorbed rows.
    pub fn spans(&self, row: &[Rational]) -> bool {
        let (residual, _) = self.reduce(row.to_vec(), Rational::zero());
        residual.iter().all(Rational::is_zero)
    }
}

/// Solves the square system `a · x = b` exactly; `None` when singular.
pub fn solve(a: &[Vec<Rational>], b: &[Rational]) -> Option<Vec<Rational>> {
    let n = a.len();
    assert!(
        a.iter().all(|r| r.len() == n) && b.len() == n,
        "square system expected"
    );
    let mut m = QMatrix::new(n);
    for (row, rhs) in a.iter().zip(b) {
        m.absorb(row, rhs);
    }
    if m.rank() != n {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        out.push(m.determined(t)?);
    }
    Some(out)
}

/// XOR of two equal-length bit vectors (GF(2) addition), used by PIR.
pub fn xor_bits(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "xor of unequal lengths");
    a.iter().zip(b).map(|(x, y)| x ^ y).collect()
}

/// In-place XOR accumulate: `acc ^= v`.
pub fn xor_into(acc: &mut [u8], v: &[u8]) {
    assert_eq!(acc.len(), v.len(), "xor of unequal lengths");
    for (a, b) in acc.iter_mut().zip(v) {
        *a ^= b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: i64) -> Rational {
        Rational::from_int(v)
    }

    fn row(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| q(v)).collect()
    }

    #[test]
    fn single_equation_determines_single_unknown() {
        let mut m = QMatrix::new(3);
        assert!(m.absorb(&row(&[0, 1, 0]), &q(42)));
        assert_eq!(m.determined(1), Some(q(42)));
        assert_eq!(m.determined(0), None);
    }

    #[test]
    fn sum_queries_combine_into_disclosure() {
        // x0+x1+x2 = 10, x1+x2 = 6  =>  x0 = 4 (a classic tracker pattern).
        let mut m = QMatrix::new(3);
        m.absorb(&row(&[1, 1, 1]), &q(10));
        assert_eq!(m.determined(0), None);
        m.absorb(&row(&[0, 1, 1]), &q(6));
        assert_eq!(m.determined(0), Some(q(4)));
        assert_eq!(m.determined(1), None);
    }

    #[test]
    fn dependent_rows_do_not_grow_rank() {
        let mut m = QMatrix::new(2);
        assert!(m.absorb(&row(&[1, 1]), &q(5)));
        assert!(!m.absorb(&row(&[2, 2]), &q(10)));
        assert_eq!(m.rank(), 1);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn inconsistent_equation_panics() {
        let mut m = QMatrix::new(2);
        m.absorb(&row(&[1, 1]), &q(5));
        m.absorb(&row(&[2, 2]), &q(11));
    }

    #[test]
    fn would_determine_is_non_destructive() {
        let mut m = QMatrix::new(3);
        m.absorb(&row(&[1, 1, 1]), &q(10));
        let rank_before = m.rank();
        assert!(m.would_determine(&row(&[0, 1, 1]), 0));
        assert_eq!(m.rank(), rank_before);
        assert_eq!(m.determined(0), None);
    }

    #[test]
    fn spans_detects_row_space_membership() {
        let mut m = QMatrix::new(3);
        m.absorb(&row(&[1, 1, 0]), &q(3));
        m.absorb(&row(&[0, 1, 1]), &q(4));
        assert!(m.spans(&row(&[1, 0, -1])));
        assert!(!m.spans(&row(&[1, 0, 0])));
    }

    #[test]
    fn solve_3x3() {
        // x=1, y=2, z=3 from a full-rank system.
        let a = vec![row(&[2, 1, 1]), row(&[1, 3, 2]), row(&[1, 0, 0])];
        let b = vec![q(7), q(13), q(1)];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, vec![q(1), q(2), q(3)]);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![row(&[1, 1]), row(&[2, 2])];
        let b = vec![q(3), q(6)];
        assert!(solve(&a, &b).is_none());
    }

    #[test]
    fn solve_with_fractional_result() {
        // 2x = 1 → x = 1/2.
        let a = vec![row(&[2])];
        let b = vec![q(1)];
        assert_eq!(solve(&a, &b).unwrap(), vec![Rational::from_ratio(1, 2)]);
    }

    #[test]
    fn xor_helpers() {
        assert_eq!(xor_bits(&[0b1010], &[0b0110]), vec![0b1100]);
        let mut acc = vec![0xFF, 0x00];
        xor_into(&mut acc, &[0x0F, 0xF0]);
        assert_eq!(acc, vec![0xF0, 0xF0]);
    }

    #[test]
    #[should_panic(expected = "unequal")]
    fn xor_length_mismatch_panics() {
        let _ = xor_bits(&[1], &[1, 2]);
    }

    #[test]
    fn all_determined_lists_unit_rows() {
        let mut m = QMatrix::new(3);
        m.absorb(&row(&[1, 0, 0]), &q(1));
        m.absorb(&row(&[0, 0, 1]), &q(9));
        let det = m.all_determined();
        assert_eq!(det, vec![(0, q(1)), (2, q(9))]);
    }
}
