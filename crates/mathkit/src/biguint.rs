//! Arbitrary-precision unsigned integers.
//!
//! Little-endian `u64` limbs, always normalized (no trailing zero limbs;
//! zero is the empty limb vector). Division is Knuth's Algorithm D, which
//! keeps modular exponentiation with 512-bit moduli fast enough for the
//! computational-PIR experiments.

// Index loops below walk several parallel arrays; iterators would obscure them.
#![allow(clippy::needless_range_loop)]

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Rem, Shl, Shr, Sub};

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: no trailing zeros.
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut s = Self {
            limbs: vec![lo, hi],
        };
        s.normalize();
        s
    }

    /// Builds from little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut s = Self { limbs };
        s.normalize();
        s
    }

    /// The value as `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// The value as `u128`, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Big-endian byte encoding (no leading zero bytes; zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        while out.first() == Some(&0) {
            out.remove(0);
        }
        out
    }

    /// Parses big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut i = bytes.len();
        while i > 0 {
            let start = i.saturating_sub(8);
            let len = i - start;
            let mut chunk = [0u8; 8];
            chunk[8 - len..].copy_from_slice(&bytes[start..i]);
            limbs.push(u64::from_be_bytes(chunk));
            i = start;
        }
        Self::from_limbs(limbs)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True when the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True when the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (zero → 0).
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Bit `i` (little-endian position).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// `self` compared to `other`.
    pub fn cmp_magnitude(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Sum of `self` and `other`.
    pub fn add_ref(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u128;
        for i in 0..long.len() {
            let s = long[i] as u128 + *short.get(i).unwrap_or(&0) as u128 + carry;
            out.push(s as u64);
            carry = s >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Self::from_limbs(out)
    }

    /// Difference `self − other`; panics when `other > self`.
    pub fn sub_ref(&self, other: &Self) -> Self {
        assert!(
            self.cmp_magnitude(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i128 - *other.limbs.get(i).unwrap_or(&0) as i128 - borrow;
            if d < 0 {
                out.push((d + (1i128 << 64)) as u64);
                borrow = 1;
            } else {
                out.push(d as u64);
                borrow = 0;
            }
        }
        Self::from_limbs(out)
    }

    /// Limb count above which multiplication switches to Karatsuba.
    const KARATSUBA_THRESHOLD: usize = 24;

    /// Product of `self` and `other` (schoolbook below
    /// [`Self::KARATSUBA_THRESHOLD`] limbs, Karatsuba above).
    pub fn mul_ref(&self, other: &Self) -> Self {
        if self.limbs.len().min(other.limbs.len()) >= Self::KARATSUBA_THRESHOLD {
            return self.mul_karatsuba(other);
        }
        self.mul_schoolbook(other)
    }

    /// Karatsuba multiplication: split both operands at `m` limbs and
    /// recurse with three half-size products instead of four.
    fn mul_karatsuba(&self, other: &Self) -> Self {
        let m = self.limbs.len().max(other.limbs.len()) / 2;
        let split = |v: &Self| -> (Self, Self) {
            if v.limbs.len() <= m {
                (Self::zero(), v.clone())
            } else {
                (
                    Self::from_limbs(v.limbs[m..].to_vec()),
                    Self::from_limbs(v.limbs[..m].to_vec()),
                )
            }
        };
        let (a1, a0) = split(self);
        let (b1, b0) = split(other);
        let z0 = a0.mul_ref(&b0);
        let z2 = a1.mul_ref(&b1);
        let z1 = a0
            .add_ref(&a1)
            .mul_ref(&b0.add_ref(&b1))
            .sub_ref(&z0)
            .sub_ref(&z2);
        z2.shl_bits(2 * m * 64)
            .add_ref(&z1.shl_bits(m * 64))
            .add_ref(&z0)
    }

    fn mul_schoolbook(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> Self {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Self::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> Self {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        Self::from_limbs(out)
    }

    /// Quotient and remainder of `self / divisor`; panics on division by zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_magnitude(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            return self.div_rem_u64(divisor.limbs[0]);
        }
        self.div_rem_knuth(divisor)
    }

    fn div_rem_u64(&self, d: u64) -> (Self, Self) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Self::from_limbs(q), Self::from_u64(rem as u64))
    }

    /// Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
    fn div_rem_knuth(&self, divisor: &Self) -> (Self, Self) {
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;

        // Normalized copies: v has its top bit set; u gains one extra limb.
        let v = divisor.shl_bits(shift).limbs;
        let mut u = self.shl_bits(shift).limbs;
        u.resize(self.limbs.len() + 1, 0);

        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;

        for j in (0..=m).rev() {
            // Estimate qhat from the top two limbs of the current remainder.
            let top = (u[j + n] as u128) << 64 | u[j + n - 1] as u128;
            let mut qhat = top / v[n - 1] as u128;
            let mut rhat = top % v[n - 1] as u128;
            while qhat >= b || qhat * v[n - 2] as u128 > (rhat << 64 | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }

            // Multiply-subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let d = u[j + i] as i128 - (p as u64) as i128 - borrow;
                if d < 0 {
                    u[j + i] = (d + b as i128) as u64;
                    borrow = 1;
                } else {
                    u[j + i] = d as u64;
                    borrow = 0;
                }
            }
            let d = u[j + n] as i128 - carry as i128 - borrow;
            if d < 0 {
                // qhat was one too large: add back.
                u[j + n] = (d + b as i128) as u64;
                qhat -= 1;
                let mut carry2 = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v[i] as u128 + carry2;
                    u[j + i] = s as u64;
                    carry2 = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u64);
            } else {
                u[j + n] = d as u64;
            }
            q[j] = qhat as u64;
        }

        let quotient = Self::from_limbs(q);
        let remainder = Self::from_limbs(u[..n].to_vec()).shr_bits(shift);
        (quotient, remainder)
    }

    /// `self mod m`.
    pub fn rem_ref(&self, m: &Self) -> Self {
        self.div_rem(m).1
    }

    /// Greatest common divisor (binary-friendly Euclid).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem_ref(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = Self::zero();
        let ten = Self::from_u64(10);
        for b in s.bytes() {
            acc = acc
                .mul_ref(&ten)
                .add_ref(&Self::from_u64((b - b'0') as u64));
        }
        Some(acc)
    }

    /// Decimal rendering.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10);
            digits.push(b'0' + r.to_u64().unwrap() as u8);
            cur = q;
        }
        digits.reverse();
        String::from_utf8(digits).expect("digits are ASCII")
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_magnitude(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_decimal())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}
impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_ref(rhs);
    }
}
impl Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.sub_ref(rhs)
    }
}
impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}
impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.rem_ref(rhs)
    }
}
impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}
impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}
impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::prelude::*;

    #[test]
    fn construction_and_views() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u128(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!(BigUint::from_u64(0).bit_length(), 0);
        assert_eq!(BigUint::from_u64(1).bit_length(), 1);
        assert_eq!(BigUint::from_u64(255).bit_length(), 8);
        assert_eq!(BigUint::from_u128(1u128 << 100).bit_length(), 101);
    }

    #[test]
    fn bytes_round_trip() {
        let v = BigUint::from_u128(0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        let bytes = v.to_bytes_be();
        assert_eq!(bytes[0], 0x01);
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        assert!(BigUint::zero().to_bytes_be().is_empty());
    }

    #[test]
    fn decimal_round_trip() {
        let s = "123456789012345678901234567890123456789";
        let v = BigUint::from_decimal(s).unwrap();
        assert_eq!(v.to_decimal(), s);
        assert_eq!(BigUint::from_decimal("0").unwrap(), BigUint::zero());
        assert!(BigUint::from_decimal("12a").is_none());
        assert!(BigUint::from_decimal("").is_none());
    }

    #[test]
    fn knuth_division_multi_limb() {
        // 2^200 / (2^100 + 1): exercises the add-back path candidates.
        let a = BigUint::one().shl_bits(200);
        let b = BigUint::one().shl_bits(100).add_ref(&BigUint::one());
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul_ref(&b).add_ref(&r), a);
        assert!(r.cmp_magnitude(&b) == Ordering::Less);
    }

    #[test]
    fn division_edge_cases() {
        let a = BigUint::from_u64(7);
        let b = BigUint::from_u64(7);
        assert_eq!(a.div_rem(&b), (BigUint::one(), BigUint::zero()));
        let (q, r) = BigUint::from_u64(3).div_rem(&BigUint::from_u64(8));
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(3));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = BigUint::one().sub_ref(&BigUint::from_u64(2));
    }

    #[test]
    fn shifts() {
        let v = BigUint::from_u64(0b1011);
        assert_eq!(v.shl_bits(130).shr_bits(130), v);
        assert_eq!(v.shl_bits(0), v);
        assert!(v.shr_bits(64).is_zero());
        assert!(BigUint::zero().shl_bits(100).is_zero());
    }

    #[test]
    fn gcd_matches_hand_cases() {
        let g = BigUint::from_u64(48).gcd(&BigUint::from_u64(18));
        assert_eq!(g.to_u64(), Some(6));
        assert_eq!(BigUint::zero().gcd(&BigUint::from_u64(5)).to_u64(), Some(5));
    }

    props! {
        #[test]
        fn add_matches_u128(a in any::<u64>() , b in any::<u64>()) {
            let s = BigUint::from_u64(a).add_ref(&BigUint::from_u64(b));
            prop_assert_eq!(s.to_u128(), Some(a as u128 + b as u128));
        }

        #[test]
        fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let p = BigUint::from_u64(a).mul_ref(&BigUint::from_u64(b));
            prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
        }

        #[test]
        fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
            let (q, r) = BigUint::from_u128(a).div_rem(&BigUint::from_u128(b));
            prop_assert_eq!(q.to_u128(), Some(a / b));
            prop_assert_eq!(r.to_u128(), Some(a % b));
        }

        #[test]
        fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            let d = BigUint::from_u128(hi).sub_ref(&BigUint::from_u128(lo));
            prop_assert_eq!(d.to_u128(), Some(hi - lo));
        }

        #[test]
        fn multi_limb_div_identity(a in vec(any::<u64>(), 1..8),
                                   b in vec(any::<u64>(), 1..5)) {
            let a = BigUint::from_limbs(a);
            let b = BigUint::from_limbs(b);
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(q.mul_ref(&b).add_ref(&r), a);
            prop_assert!(r.cmp_magnitude(&b) == Ordering::Less);
        }

        #[test]
        fn karatsuba_matches_schoolbook(a in vec(any::<u64>(), 20..60),
                                        b in vec(any::<u64>(), 20..60)) {
            let x = BigUint::from_limbs(a);
            let y = BigUint::from_limbs(b);
            prop_assert_eq!(x.mul_karatsuba(&y), x.mul_schoolbook(&y));
        }

        #[test]
        fn decimal_round_trips(a in vec(any::<u64>(), 0..5)) {
            let v = BigUint::from_limbs(a);
            prop_assert_eq!(BigUint::from_decimal(&v.to_decimal()).unwrap(), v);
        }

        #[test]
        fn bytes_round_trips(a in vec(any::<u64>(), 0..5)) {
            let v = BigUint::from_limbs(a);
            prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        }

        #[test]
        fn shift_round_trips(a in vec(any::<u64>(), 0..4),
                             s in 0usize..200) {
            let v = BigUint::from_limbs(a);
            prop_assert_eq!(v.shl_bits(s).shr_bits(s), v);
        }
    }
}
