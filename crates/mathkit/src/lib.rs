//! # tdf-mathkit
//!
//! Numeric substrate for the cryptographic parts of the toolkit.
//!
//! The paper's *user privacy* dimension rests on private information
//! retrieval [8] and its *owner privacy* dimension on cryptographic
//! privacy-preserving data mining [18, 19]; both need number theory that the
//! sanctioned dependency set does not provide. This crate implements it from
//! scratch:
//!
//! * [`biguint`] — arbitrary-precision unsigned integers (schoolbook and
//!   Knuth Algorithm D division), the base of everything else;
//! * [`bigint`] — signed wrapper;
//! * [`modular`] — modular exponentiation, inverses, Jacobi symbols;
//! * [`barrett`] — division-free fixed-modulus reduction for hot loops;
//! * [`primes`] — Miller–Rabin and random/Blum prime generation;
//! * [`field`] — the fast 61-bit Mersenne prime field used by secret
//!   sharing in `tdf-smc`;
//! * [`rational`] — exact arbitrary-precision rationals;
//! * [`linalg`] — Gaussian elimination over the rationals (the engine of
//!   the Chin–Ozsoyoglu query auditor in `tdf-querydb`) and GF(2) vector
//!   helpers for XOR-based PIR.

pub mod barrett;
pub mod bigint;
pub mod biguint;
pub mod field;
pub mod linalg;
pub mod modular;
pub mod primes;
pub mod rational;

pub use bigint::BigInt;
pub use biguint::BigUint;
pub use field::Fp61;
pub use rational::Rational;
