//! The prime field `F_p` with `p = 2^61 − 1` (a Mersenne prime).
//!
//! Secret sharing in `tdf-smc` works over this field: it is large enough to
//! hold any aggregate the PPDM protocols compute (sums of millions of
//! 32-bit values) and small enough that multiplication fits in `u128`.

use rngkit::Rng;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus `2^61 − 1`.
pub const P: u64 = (1u64 << 61) - 1;

/// An element of `F_{2^61−1}`, always kept reduced in `[0, P)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp61(u64);

impl Fp61 {
    /// Additive identity.
    pub const ZERO: Fp61 = Fp61(0);
    /// Multiplicative identity.
    pub const ONE: Fp61 = Fp61(1);

    /// Builds an element, reducing modulo `P`.
    pub fn new(v: u64) -> Self {
        Fp61(v % P)
    }

    /// Encodes a signed integer (two's-complement-style wraparound).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Fp61::new(v as u64)
        } else {
            -Fp61::new(v.unsigned_abs())
        }
    }

    /// Decodes an element into a signed integer, interpreting values above
    /// `P/2` as negative (inverse of [`Fp61::from_i64`] for |v| < P/2).
    pub fn to_i64(self) -> i64 {
        if self.0 > P / 2 {
            -((P - self.0) as i64)
        } else {
            self.0 as i64
        }
    }

    /// Raw representative in `[0, P)`.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// `self^exp` by square-and-multiply.
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Fp61::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse; `None` for zero.
    pub fn inverse(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            // Fermat: a^(p−2) = a^(−1).
            Some(self.pow(P - 2))
        }
    }

    /// Uniformly random field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling over 61 bits keeps the distribution uniform.
        loop {
            let v = rng.gen::<u64>() >> 3;
            if v < P {
                return Fp61(v);
            }
        }
    }

    /// True when the element is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// Fast reduction of a 122-bit product modulo the Mersenne prime.
fn reduce128(x: u128) -> u64 {
    let lo = (x & P as u128) as u64;
    let hi = (x >> 61) as u64;
    let mut s = lo + hi;
    if s >= P {
        s -= P;
    }
    // One more carry can appear when hi itself exceeded P.
    if s >= P {
        s -= P;
    }
    s
}

impl Add for Fp61 {
    type Output = Fp61;
    fn add(self, rhs: Fp61) -> Fp61 {
        let s = self.0 + rhs.0;
        Fp61(if s >= P { s - P } else { s })
    }
}
impl AddAssign for Fp61 {
    fn add_assign(&mut self, rhs: Fp61) {
        *self = *self + rhs;
    }
}
impl Sub for Fp61 {
    type Output = Fp61;
    fn sub(self, rhs: Fp61) -> Fp61 {
        Fp61(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P - rhs.0
        })
    }
}
impl SubAssign for Fp61 {
    fn sub_assign(&mut self, rhs: Fp61) {
        *self = *self - rhs;
    }
}
impl Mul for Fp61 {
    type Output = Fp61;
    fn mul(self, rhs: Fp61) -> Fp61 {
        Fp61(reduce128(self.0 as u128 * rhs.0 as u128))
    }
}
impl MulAssign for Fp61 {
    fn mul_assign(&mut self, rhs: Fp61) {
        *self = *self * rhs;
    }
}
impl Neg for Fp61 {
    type Output = Fp61;
    fn neg(self) -> Fp61 {
        if self.0 == 0 {
            self
        } else {
            Fp61(P - self.0)
        }
    }
}
impl Div for Fp61 {
    type Output = Fp61;
    // Field division IS multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Fp61) -> Fp61 {
        self * rhs.inverse().expect("division by zero in Fp61")
    }
}

impl fmt::Debug for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp61({})", self.0)
    }
}
impl fmt::Display for Fp61 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp61 {
    fn from(v: u64) -> Self {
        Fp61::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::prelude::*;
    use rngkit::SeedableRng;

    #[test]
    fn identities() {
        let a = Fp61::new(12345);
        assert_eq!(a + Fp61::ZERO, a);
        assert_eq!(a * Fp61::ONE, a);
        assert_eq!(a - a, Fp61::ZERO);
        assert_eq!(a + (-a), Fp61::ZERO);
    }

    #[test]
    fn wraparound_reduction() {
        assert_eq!(Fp61::new(P), Fp61::ZERO);
        assert_eq!(Fp61::new(P + 5), Fp61::new(5));
        let big = Fp61::new(P - 1);
        assert_eq!(big + Fp61::new(2), Fp61::ONE);
    }

    #[test]
    fn signed_round_trip() {
        for v in [-1_000_000i64, -1, 0, 1, 987_654_321] {
            assert_eq!(Fp61::from_i64(v).to_i64(), v);
        }
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(Fp61::ZERO.inverse().is_none());
    }

    #[test]
    fn fermat_inverse() {
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let a = Fp61::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Fp61::ONE);
        }
    }

    #[test]
    fn random_is_in_range() {
        let mut rng = rngkit::rngs::StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert!(Fp61::random(&mut rng).raw() < P);
        }
    }

    props! {
        #[test]
        fn mul_matches_u128(a in 0..P, b in 0..P) {
            let expected = (a as u128 * b as u128 % P as u128) as u64;
            prop_assert_eq!((Fp61(a) * Fp61(b)).raw(), expected);
        }

        #[test]
        fn add_matches_u128(a in 0..P, b in 0..P) {
            let expected = ((a as u128 + b as u128) % P as u128) as u64;
            prop_assert_eq!((Fp61(a) + Fp61(b)).raw(), expected);
        }

        #[test]
        fn field_axioms(a in 0..P, b in 0..P, c in 0..P) {
            let (a, b, c) = (Fp61(a), Fp61(b), Fp61(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn pow_matches_repeated_mul(a in 0..P, e in 0u64..32) {
            let a = Fp61(a);
            let mut expected = Fp61::ONE;
            for _ in 0..e {
                expected *= a;
            }
            prop_assert_eq!(a.pow(e), expected);
        }
    }
}
