//! Registry invariants under arbitrary event streams:
//!
//! - a histogram's bucket counts always sum to its event count, and its
//!   `sum` matches the exact wrapping sum of the recorded values;
//! - replaying one event stream split across several threads produces
//!   exactly the snapshot of the single-threaded replay — the merge
//!   (sum for counters/histograms, max for gauges) loses nothing and
//!   never depends on which thread recorded what.

use check::prelude::*;
use std::sync::Mutex;

/// The registry is process-global; every case locks it.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// One recorded event, decoded from three arbitrary u64 draws.
#[derive(Debug, Clone)]
enum Op {
    Count(&'static str, u64),
    Gauge(&'static str, u64),
    Observe(&'static str, u64),
}

const NAMES: [&str; 3] = ["p.alpha", "p.beta", "p.gamma"];

fn decode(raw: &[(u64, u64, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, name, value)| {
            let name = NAMES[(name % 3) as usize];
            match kind % 3 {
                0 => Op::Count(name, value % 1000),
                1 => Op::Gauge(name, value % 1000),
                _ => Op::Observe(name, value),
            }
        })
        .collect()
}

fn apply(op: &Op) {
    match *op {
        Op::Count(name, delta) => obs::count(name, delta),
        Op::Gauge(name, value) => obs::gauge_max(name, value),
        Op::Observe(name, value) => obs::observe(name, value),
    }
}

fn replay_single(ops: &[Op]) -> obs::Snapshot {
    obs::reset();
    for op in ops {
        apply(op);
    }
    let snap = obs::snapshot();
    obs::reset();
    snap
}

fn replay_sharded(ops: &[Op], shards: usize) -> obs::Snapshot {
    obs::reset();
    std::thread::scope(|scope| {
        for chunk in ops.chunks(ops.len().div_ceil(shards).max(1)) {
            scope.spawn(move || {
                for op in chunk {
                    apply(op);
                }
            });
        }
    });
    let snap = obs::snapshot();
    obs::reset();
    snap
}

props! {
    #![cases(32)]

    #[test]
    fn histogram_buckets_sum_to_count_and_sum_is_exact(values in vec(any::<u64>(), 0..200)) {
        let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        obs::set_level(1);
        obs::reset();
        for &v in &values {
            obs::observe("p.hist", v);
        }
        let snap = obs::snapshot();
        obs::set_level(0);
        obs::reset();
        if values.is_empty() {
            prop_assert!(snap.histogram("p.hist").is_none());
        } else {
            let hist = snap.histogram("p.hist").expect("recorded");
            prop_assert_eq!(hist.count, values.len() as u64);
            prop_assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
            let expected: u64 = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
            prop_assert_eq!(hist.sum, expected);
            // Every value landed in its own log2 bucket.
            for &v in &values {
                prop_assert!(hist.buckets[obs::Histogram::bucket_of(v)] > 0);
            }
        }
    }

    #[test]
    fn observe_each_equals_per_value_observe(values in vec(any::<u64>(), 0..200)) {
        let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        obs::set_level(1);
        obs::reset();
        for &v in &values {
            obs::observe("p.hist", v);
        }
        let one_by_one = obs::snapshot();
        obs::reset();
        obs::observe_each("p.hist", values.iter().copied());
        let batched = obs::snapshot();
        obs::set_level(0);
        obs::reset();
        prop_assert_eq!(batched, one_by_one);
    }

    #[test]
    fn sharded_replay_merges_to_the_single_threaded_snapshot(
        raw in vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..150),
        shards in 2usize..5,
    ) {
        let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let ops = decode(&raw);
        obs::set_level(1);
        let single = replay_single(&ops);
        let sharded = replay_sharded(&ops, shards);
        obs::set_level(0);
        prop_assert_eq!(sharded, single);
    }
}
