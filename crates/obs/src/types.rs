// Snapshot data model + hand-rolled JSON-lines emission. Included (via
// `include!`) by the active registry and by the `noop` stub so the types
// exist — with identical shapes — under either compilation mode.

/// Number of histogram buckets: bucket 0 for the value zero, buckets
/// `1..=64` for `[2^(b-1), 2^b)`.
pub const HIST_BUCKETS: usize = 65;

/// Fixed-bucket log2 histogram with exact count and wrapping sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total number of observed values.
    pub count: u64,
    /// Wrapping sum of observed values (exact unless it overflows u64).
    pub sum: u64,
    /// Per-bucket counts; invariant: they sum to `count`.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `1 + floor(log2 value)`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Element-wise merge; used when aggregating per-thread shards.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }
}

/// Aggregated wall-clock statistics for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds, children included.
    pub total_ns: u64,
    /// Nanoseconds not attributed to child spans.
    pub self_ns: u64,
}

/// Deterministic merged view of every thread's shard. Map iteration is
/// sorted by name, so emission order never depends on thread timing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter sums by name.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// High-water-mark gauges by name (merged with `max`).
    pub gauges: std::collections::BTreeMap<String, u64>,
    /// Histograms by name (merged element-wise).
    pub histograms: std::collections::BTreeMap<String, Histogram>,
    /// Span timings by name; only populated at level 2.
    pub spans: std::collections::BTreeMap<String, SpanStat>,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Snapshot {
    /// Counter value, or 0 when the name was never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, or 0 when the name was never recorded.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    fn emit_metrics(&self, out: &mut String) {
        for (name, value) in &self.counters {
            out.push_str("{\"kind\":\"counter\",\"name\":");
            push_json_str(out, name);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"kind\":\"gauge\",\"name\":");
            push_json_str(out, name);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for (name, hist) in &self.histograms {
            out.push_str("{\"kind\":\"histogram\",\"name\":");
            push_json_str(out, name);
            out.push_str(&format!(
                ",\"count\":{},\"sum\":{},\"buckets\":{{",
                hist.count, hist.sum
            ));
            let mut first = true;
            for (bucket, n) in hist.buckets.iter().enumerate().filter(|(_, n)| **n > 0) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{bucket}\":{n}"));
            }
            out.push_str("}}\n");
        }
    }

    /// JSON-lines of counters, gauges and histograms only — everything
    /// that is a pure function of the event stream. Safe to diff against
    /// a golden file; spans (wall-clock) are deliberately excluded.
    pub fn deterministic_jsonl(&self) -> String {
        let mut out = String::new();
        self.emit_metrics(&mut out);
        out
    }

    /// Full JSON-lines including span timings.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        self.emit_metrics(&mut out);
        for (name, span) in &self.spans {
            out.push_str("{\"kind\":\"span\",\"name\":");
            push_json_str(&mut out, name);
            out.push_str(&format!(
                ",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}\n",
                span.count, span.total_ns, span.self_ns
            ));
        }
        out
    }
}
