//! Per-thread shards and the merge into a deterministic [`Snapshot`].
//!
//! Each thread records into its own `Mutex<Shard>` — uncontended in
//! steady state, so a flush costs one atomic CAS pair — and registers the
//! shard in a process-global list on first use. [`snapshot`] visits every
//! shard (including those of threads that have since exited) and merges
//! with order-independent operators: counters and histograms by sum,
//! gauges by max. The result is a pure function of the recorded event
//! multiset, never of thread scheduling.

include!("types.rs");

use std::cell::OnceCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Default)]
struct Shard {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
    spans: HashMap<String, SpanStat>,
}

impl Shard {
    fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.spans.clear();
    }
}

static SHARDS: OnceLock<Mutex<Vec<Arc<Mutex<Shard>>>>> = OnceLock::new();

fn shard_list() -> &'static Mutex<Vec<Arc<Mutex<Shard>>>> {
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: OnceCell<Arc<Mutex<Shard>>> = const { OnceCell::new() };
}

fn with_local(f: impl FnOnce(&mut Shard)) {
    LOCAL.with(|cell| {
        let shard = cell.get_or_init(|| {
            let shard = Arc::new(Mutex::new(Shard::default()));
            let mut list = shard_list().lock().unwrap_or_else(|e| e.into_inner());
            list.push(Arc::clone(&shard));
            shard
        });
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard);
    });
}

fn bump(map: &mut HashMap<String, u64>, name: &str, delta: u64) {
    if let Some(v) = map.get_mut(name) {
        *v += delta;
    } else {
        map.insert(name.to_owned(), delta);
    }
}

pub(crate) fn count(name: &str, delta: u64) {
    with_local(|shard| bump(&mut shard.counters, name, delta));
}

pub(crate) fn gauge_max(name: &str, value: u64) {
    with_local(|shard| {
        if let Some(v) = shard.gauges.get_mut(name) {
            *v = (*v).max(value);
        } else {
            shard.gauges.insert(name.to_owned(), value);
        }
    });
}

pub(crate) fn observe(name: &str, value: u64) {
    with_local(|shard| {
        if let Some(hist) = shard.histograms.get_mut(name) {
            hist.record(value);
        } else {
            let mut hist = Histogram::default();
            hist.record(value);
            shard.histograms.insert(name.to_owned(), hist);
        }
    });
}

pub(crate) fn observe_each<I: IntoIterator<Item = u64>>(name: &str, values: I) {
    let mut values = values.into_iter().peekable();
    if values.peek().is_none() {
        return; // no events, no entry
    }
    with_local(|shard| {
        if !shard.histograms.contains_key(name) {
            shard
                .histograms
                .insert(name.to_owned(), Histogram::default());
        }
        let hist = shard.histograms.get_mut(name).expect("just inserted");
        for value in values {
            hist.record(value);
        }
    });
}

pub(crate) fn span_record(name: &str, total_ns: u64, self_ns: u64) {
    with_local(|shard| {
        let stat = shard.spans.entry(name.to_owned()).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(total_ns);
        stat.self_ns = stat.self_ns.saturating_add(self_ns);
    });
}

/// Merge every shard into one snapshot. Order-independent by
/// construction: sums for counters/histograms/spans, max for gauges,
/// sorted maps for emission.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    let list = shard_list().lock().unwrap_or_else(|e| e.into_inner());
    for shard in list.iter() {
        let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
        for (name, value) in &shard.counters {
            *snap.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &shard.gauges {
            let slot = snap.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &shard.histograms {
            snap.histograms.entry(name.clone()).or_default().merge(hist);
        }
        for (name, span) in &shard.spans {
            let stat = snap.spans.entry(name.clone()).or_default();
            stat.count += span.count;
            stat.total_ns = stat.total_ns.saturating_add(span.total_ns);
            stat.self_ns = stat.self_ns.saturating_add(span.self_ns);
        }
    }
    snap
}

/// Clear every live shard and drop shards whose thread has exited (their
/// only remaining reference is the registry's).
pub fn reset() {
    let mut list = shard_list().lock().unwrap_or_else(|e| e.into_inner());
    list.retain(|shard| Arc::strong_count(shard) > 1);
    for shard in list.iter() {
        shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}
