//! Hermetic observability for the privacy kernels.
//!
//! Zero registry dependencies, std-only. Three primitives:
//!
//! - **counters** — monotonically increasing `u64` sums (`count`);
//! - **gauges** — high-water marks merged by `max` (`gauge_max`), so the
//!   merged value never depends on the order shards are visited;
//! - **histograms** — 65 fixed log2 buckets (`observe`), bucket 0 holds
//!   the value zero, bucket `b ≥ 1` holds values in `[2^(b-1), 2^b)`;
//! - **spans** — RAII wall-clock timings with self-time attribution
//!   (`span`), recorded only at level 2 because timing is inherently
//!   nondeterministic.
//!
//! Every thread writes into its own shard (one uncontended mutex per
//! thread); [`snapshot`] merges all shards into sorted `BTreeMap`s, so the
//! aggregate is a pure function of the event multiset — independent of
//! thread interleaving and registration order. That property is what lets
//! CI diff [`Snapshot::deterministic_jsonl`] against a golden file.
//!
//! The recording level comes from `TDF_OBS` (`0` off — the default, `1`
//! metrics, `2` metrics + spans) and can be overridden at runtime with
//! [`set_level`]; the level is global (not thread-local) so pool worker
//! threads executing kernel closures observe the same level as the
//! caller. With the `noop` cargo feature every entry point compiles to
//! nothing and [`snapshot`] returns an empty registry.

#[cfg(not(feature = "noop"))]
mod registry;
#[cfg(not(feature = "noop"))]
mod level {
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Sentinel meaning "not yet initialised from the environment".
    const UNSET: u8 = u8::MAX;
    static LEVEL: AtomicU8 = AtomicU8::new(UNSET);

    #[cold]
    fn init_from_env() -> u8 {
        let lvl = std::env::var("TDF_OBS")
            .ok()
            .and_then(|v| v.trim().parse::<u8>().ok())
            .unwrap_or(0)
            .min(2);
        LEVEL.store(lvl, Ordering::Relaxed);
        lvl
    }

    /// Current recording level: 0 = off, 1 = metrics, 2 = metrics + spans.
    #[inline]
    pub fn level() -> u8 {
        let lvl = LEVEL.load(Ordering::Relaxed);
        if lvl == UNSET {
            init_from_env()
        } else {
            lvl
        }
    }

    /// Override the recording level for this process (tests, benches).
    pub fn set_level(level: u8) {
        LEVEL.store(level.min(2), Ordering::Relaxed);
    }
}

#[cfg(not(feature = "noop"))]
pub use active::*;
#[cfg(not(feature = "noop"))]
mod active {
    pub use super::level::{level, set_level};
    use super::registry;
    pub use super::registry::{Histogram, Snapshot, SpanStat, HIST_BUCKETS};
    use std::time::Instant;

    /// True when metrics (counters, gauges, histograms) are recorded.
    #[inline]
    pub fn enabled() -> bool {
        level() >= 1
    }

    /// True when spans are also recorded.
    #[inline]
    pub fn spans_enabled() -> bool {
        level() >= 2
    }

    /// Add `delta` to the named counter. No-op at level 0 or `delta == 0`.
    #[inline]
    pub fn count(name: &str, delta: u64) {
        if delta > 0 && enabled() {
            registry::count(name, delta);
        }
    }

    /// Raise the named high-water-mark gauge to at least `value`.
    #[inline]
    pub fn gauge_max(name: &str, value: u64) {
        if enabled() {
            registry::gauge_max(name, value);
        }
    }

    /// Record `value` into the named log2 histogram.
    #[inline]
    pub fn observe(name: &str, value: u64) {
        if enabled() {
            registry::observe(name, value);
        }
    }

    /// Record every value of `values` into the named log2 histogram under
    /// a single shard lock — the batched form of [`observe`] for
    /// per-item loops too hot to pay one registry write per element.
    #[inline]
    pub fn observe_each<I: IntoIterator<Item = u64>>(name: &str, values: I) {
        if enabled() {
            registry::observe_each(name, values);
        }
    }

    /// Merge every thread's shard into one deterministic snapshot.
    pub fn snapshot() -> Snapshot {
        registry::snapshot()
    }

    /// Clear all shards (and drop shards of threads that have exited).
    pub fn reset() {
        registry::reset();
    }

    thread_local! {
        /// Per-frame accumulator of child span nanoseconds, for self-time.
        static SPAN_STACK: std::cell::RefCell<Vec<u64>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    /// RAII timing guard; records on drop. Inert below level 2.
    pub struct Span {
        armed: Option<(&'static str, Instant)>,
    }

    /// Open a timing span. The guard records `{count, total_ns, self_ns}`
    /// under `name` when dropped; nesting attributes child time to the
    /// parent's `total_ns` but not its `self_ns`.
    #[inline]
    pub fn span(name: &'static str) -> Span {
        if !spans_enabled() {
            return Span { armed: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(0));
        Span {
            armed: Some((name, Instant::now())),
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some((name, start)) = self.armed.take() else {
                return;
            };
            let total_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let child_ns = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let child = stack.pop().unwrap_or(0);
                if let Some(parent) = stack.last_mut() {
                    *parent = parent.saturating_add(total_ns);
                }
                child
            });
            registry::span_record(name, total_ns, total_ns.saturating_sub(child_ns));
        }
    }
}

#[cfg(feature = "noop")]
pub use noop::*;
#[cfg(feature = "noop")]
mod noop {
    //! Compile-to-nothing variant: same API surface, empty behaviour.

    /// Always 0 with the `noop` feature.
    #[inline]
    pub fn level() -> u8 {
        0
    }
    /// Ignored with the `noop` feature.
    #[inline]
    pub fn set_level(_level: u8) {}
    /// Always false with the `noop` feature.
    #[inline]
    pub fn enabled() -> bool {
        false
    }
    /// Always false with the `noop` feature.
    #[inline]
    pub fn spans_enabled() -> bool {
        false
    }
    /// No-op with the `noop` feature.
    #[inline]
    pub fn count(_name: &str, _delta: u64) {}
    /// No-op with the `noop` feature.
    #[inline]
    pub fn gauge_max(_name: &str, _value: u64) {}
    /// No-op with the `noop` feature.
    #[inline]
    pub fn observe(_name: &str, _value: u64) {}
    /// No-op with the `noop` feature.
    #[inline]
    pub fn observe_each<I: IntoIterator<Item = u64>>(_name: &str, _values: I) {}
    /// Empty snapshot with the `noop` feature.
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }
    /// No-op with the `noop` feature.
    pub fn reset() {}
    /// Inert guard with the `noop` feature.
    pub struct Span;
    /// Inert guard with the `noop` feature.
    #[inline]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    // The snapshot types keep their real shape so downstream code
    // (harness JSON embedding, golden emitters) compiles either way.
    include!("types.rs");
}

#[cfg(all(test, feature = "noop"))]
mod noop_tests {
    #[test]
    fn noop_build_records_nothing_and_snapshot_is_empty() {
        super::set_level(2);
        super::count("t.noop", 1);
        super::observe("t.noop", 1);
        let _span = super::span("t.noop.span");
        let snap = super::snapshot();
        assert_eq!(super::level(), 0);
        assert!(snap.counters.is_empty() && snap.spans.is_empty());
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; serialise unit tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(1);
        reset();
        count("t.counter", 3);
        count("t.counter", 4);
        count("t.zero", 0); // delta 0 must not create an entry
        gauge_max("t.gauge", 9);
        gauge_max("t.gauge", 2);
        observe("t.hist", 0);
        observe("t.hist", 1);
        observe("t.hist", 1023);
        let snap = snapshot();
        assert_eq!(snap.counter("t.counter"), 7);
        assert_eq!(snap.counter("t.zero"), 0);
        assert!(!snap.counters.contains_key("t.zero"));
        assert_eq!(snap.gauge("t.gauge"), 9);
        let hist = snap.histogram("t.hist").expect("histogram recorded");
        assert_eq!(hist.count, 3);
        assert_eq!(hist.sum, 1024);
        assert_eq!(hist.buckets[0], 1); // value 0
        assert_eq!(hist.buckets[1], 1); // value 1
        assert_eq!(hist.buckets[10], 1); // 1023 ∈ [512, 1024)
        set_level(0);
        reset();
    }

    #[test]
    fn level_zero_records_nothing() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(0);
        reset();
        count("t.off", 1);
        gauge_max("t.off", 1);
        observe("t.off", 1);
        {
            let _span = span("t.off.span");
        }
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn spans_need_level_two_and_attribute_self_time() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(1);
        reset();
        {
            let _span = span("t.span.l1");
        }
        assert!(snapshot().spans.is_empty(), "no spans at level 1");

        set_level(2);
        reset();
        {
            let _outer = span("t.span.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("t.span.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = snapshot();
        let outer = snap.spans["t.span.outer"];
        let inner = snap.spans["t.span.inner"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert_eq!(inner.total_ns, inner.self_ns, "leaf span owns its time");
        assert!(
            outer.self_ns <= outer.total_ns.saturating_sub(inner.total_ns),
            "child time is excluded from the parent's self time"
        );
        set_level(0);
        reset();
    }

    #[test]
    fn jsonl_is_sorted_and_excludes_timing_when_deterministic() {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(2);
        reset();
        count("t.b", 2);
        count("t.a", 1);
        gauge_max("t.g", 5);
        observe("t.h", 7);
        {
            let _span = span("t.s");
        }
        let snap = snapshot();
        let det = snap.deterministic_jsonl();
        let a = det.find("\"t.a\"").expect("t.a present");
        let b = det.find("\"t.b\"").expect("t.b present");
        assert!(a < b, "counters are emitted in sorted order");
        assert!(
            !det.contains("\"span\""),
            "deterministic output has no spans"
        );
        assert!(!det.contains("_ns"), "deterministic output has no timings");
        assert!(
            snap.to_jsonl().contains("\"span\""),
            "full output has spans"
        );
        set_level(0);
        reset();
    }
}
