//! Rank swapping and random swapping.
//!
//! Rank swapping sorts a column, then swaps each value with a partner
//! chosen uniformly within a window of `p` percent of the records — values
//! keep their approximate magnitude but detach from their records, breaking
//! linkage while roughly preserving marginal distributions.

use rngkit::Rng;
use tdf_microdata::{Dataset, Error, Result};

/// Rank-swaps the given numeric `cols` of `data` with window `p_percent`
/// (0 < p ≤ 100) of the record count.
pub fn rank_swap<R: Rng + ?Sized>(
    data: &Dataset,
    cols: &[usize],
    p_percent: f64,
    rng: &mut R,
) -> Result<Dataset> {
    if !(0.0..=100.0).contains(&p_percent) || p_percent <= 0.0 {
        return Err(Error::InvalidParameter(
            "p_percent must be in (0, 100]".into(),
        ));
    }
    for &c in cols {
        if !data.schema().attribute(c).kind.is_numeric() {
            return Err(Error::NotNumeric(data.schema().attribute(c).name.clone()));
        }
    }
    let n = data.num_rows();
    let mut out = data.clone();
    if n < 2 {
        return Ok(out);
    }
    let window = ((p_percent / 100.0 * n as f64).round() as usize).max(1);

    for &c in cols {
        // Ranks of records by value on column c, keyed through the
        // contiguous column storage (missing sorts as NaN, i.e. last).
        let cells = data.f64_cells(c).expect("numeric column");
        let key: Vec<f64> = (0..n).map(|i| cells.get(i).unwrap_or(f64::NAN)).collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| key[a].total_cmp(&key[b]));
        let mut swapped = vec![false; n];
        for r in 0..n {
            if swapped[r] {
                continue;
            }
            let hi = (r + window).min(n - 1);
            // Candidate partners: un-swapped ranks in (r, hi].
            let candidates: Vec<usize> = (r + 1..=hi).filter(|&t| !swapped[t]).collect();
            if candidates.is_empty() {
                continue;
            }
            let partner = candidates[rng.gen_range(0..candidates.len())];
            let (i, j) = (order[r], order[partner]);
            out.swap_cells(i, j, c);
            swapped[r] = true;
            swapped[partner] = true;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::rng::seeded;
    use tdf_microdata::stats;
    use tdf_microdata::synth::{patients, PatientConfig};

    fn data() -> Dataset {
        patients(&PatientConfig {
            n: 500,
            ..Default::default()
        })
    }

    #[test]
    fn marginal_distribution_is_exactly_preserved() {
        let d = data();
        let masked = rank_swap(&d, &[0, 1], 5.0, &mut seeded(7)).unwrap();
        for c in [0usize, 1] {
            let mut orig = d.numeric_column(c);
            let mut got = masked.numeric_column(c);
            orig.sort_by(f64::total_cmp);
            got.sort_by(f64::total_cmp);
            assert_eq!(orig, got, "column {c} is a permutation");
        }
    }

    #[test]
    fn small_window_limits_value_displacement() {
        let d = data();
        let masked = rank_swap(&d, &[0], 2.0, &mut seeded(8)).unwrap();
        // With a 2% window on 500 records (10 ranks), each value moves by
        // at most ~10 order statistics; displacement in value must be small
        // relative to the column's range.
        let orig = d.numeric_column(0);
        let got = masked.numeric_column(0);
        let range = orig.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - orig.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_shift = orig
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(
            max_shift < range * 0.25,
            "max shift {max_shift}, range {range}"
        );
    }

    #[test]
    fn most_records_change_value() {
        let d = data();
        let masked = rank_swap(&d, &[0], 10.0, &mut seeded(9)).unwrap();
        let changed = (0..d.num_rows())
            .filter(|&i| d.value(i, 0) != masked.value(i, 0))
            .count();
        // Ties may stay equal; the overwhelming majority must move.
        assert!(changed > d.num_rows() / 2, "changed {changed}");
    }

    #[test]
    fn correlations_are_diluted_with_wide_window() {
        let d = data();
        let masked = rank_swap(&d, &[0], 100.0, &mut seeded(10)).unwrap();
        let rho0 = stats::correlation(&d.numeric_column(0), &d.numeric_column(1)).unwrap();
        let rho1 =
            stats::correlation(&masked.numeric_column(0), &masked.numeric_column(1)).unwrap();
        assert!(rho1.abs() < rho0.abs(), "{rho0} vs {rho1}");
    }

    #[test]
    fn rejects_invalid_parameters() {
        let d = data();
        assert!(rank_swap(&d, &[0], 0.0, &mut seeded(11)).is_err());
        assert!(rank_swap(&d, &[0], 101.0, &mut seeded(11)).is_err());
        assert!(rank_swap(&d, &[3], 5.0, &mut seeded(11)).is_err());
    }

    #[test]
    fn tiny_datasets_are_returned_unchanged() {
        use tdf_microdata::patients::patient_schema;
        let mut d = Dataset::new(patient_schema());
        d.push_row(vec![170.0.into(), 70.0.into(), 130.0.into(), false.into()])
            .unwrap();
        let masked = rank_swap(&d, &[0], 10.0, &mut seeded(12)).unwrap();
        assert_eq!(masked, d);
    }
}
