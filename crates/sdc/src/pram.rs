//! PRAM — post-randomization of categorical attributes.
//!
//! Each categorical value is re-sampled according to a Markov transition
//! matrix: with probability `1 − flip` it stays, otherwise it moves to a
//! uniformly random other category. This is the categorical analogue of
//! noise addition, and the masking mechanism underlying randomized-response
//! PPDM (see `tdf-ppdm::randomized_response` for the owner-side variant).

use rngkit::Rng;
use tdf_microdata::{AttributeKind, ColumnView, Dataset, Error, Result};

/// Applies PRAM with the given `flip` probability to categorical/boolean
/// column `col`.
pub fn pram<R: Rng + ?Sized>(
    data: &Dataset,
    col: usize,
    flip: f64,
    rng: &mut R,
) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&flip) {
        return Err(Error::InvalidParameter("flip must be in [0, 1]".into()));
    }
    let kind = data.schema().attribute(col).kind;
    match kind {
        AttributeKind::Nominal | AttributeKind::Ordinal | AttributeKind::Boolean => {}
        _ => {
            return Err(Error::NotNumeric(format!(
                "PRAM applies to categorical attributes, `{}` is numeric",
                data.schema().attribute(col).name
            )))
        }
    }

    // Category domain observed in the data, as dictionary codes sorted by
    // value order (the order the old `BTreeSet<Value>` domain used), so
    // the per-row RNG draws index the same categories as before.
    let coded = CodedColumn::read(data, col);
    let mut out = data.clone();
    if coded.domain.len() < 2 {
        return Ok(out);
    }
    for i in 0..data.num_rows() {
        let Some(cur_pos) = coded.domain_pos(i) else {
            continue;
        };
        if rng.gen::<f64>() < flip {
            // Uniform among the *other* categories: draw an index into
            // the sorted domain with the current category skipped.
            let r = rng.gen_range(0..coded.domain.len() - 1);
            let r = if r >= cur_pos { r + 1 } else { r };
            coded.write(&mut out, i, coded.domain[r])?;
        }
    }
    Ok(out)
}

/// A categorical / boolean column lifted to integer codes: per-row codes
/// (`-1` = missing) plus the observed domain in `Value::total_cmp` order.
/// PRAM then runs entirely on small integers — no `Value` clones, no
/// `BTreeSet` of heap strings.
struct CodedColumn {
    col: usize,
    boolean: bool,
    row_code: Vec<i64>,
    /// Distinct present codes, sorted by the value they decode to.
    domain: Vec<i64>,
}

impl CodedColumn {
    fn read(data: &Dataset, col: usize) -> Self {
        let (row_code, mut domain, boolean): (Vec<i64>, Vec<i64>, bool) = match data.col(col) {
            ColumnView::Cat(c) => {
                let row_code: Vec<i64> = (0..c.len())
                    .map(|i| c.code(i).map_or(-1, |code| code as i64))
                    .collect();
                let mut present = vec![false; c.pool().len()];
                for &rc in &row_code {
                    if rc >= 0 {
                        present[rc as usize] = true;
                    }
                }
                let mut domain: Vec<i64> = (0..present.len() as i64)
                    .filter(|&p| present[p as usize])
                    .collect();
                domain.sort_by(|&a, &b| c.decode(a as u32).total_cmp(c.decode(b as u32)));
                (row_code, domain, false)
            }
            ColumnView::Bool(c) => {
                let row_code: Vec<i64> = (0..c.len())
                    .map(|i| c.opt(i).map_or(-1, i64::from))
                    .collect();
                let mut domain: Vec<i64> = row_code.iter().copied().filter(|&rc| rc >= 0).collect();
                domain.sort_unstable();
                domain.dedup();
                (row_code, domain, true)
            }
            _ => unreachable!("kind checked to be categorical / boolean"),
        };
        domain.shrink_to_fit();
        Self {
            col,
            boolean,
            row_code,
            domain,
        }
    }

    /// Position of row `i`'s category in the sorted domain (`None` when
    /// the cell is missing).
    fn domain_pos(&self, i: usize) -> Option<usize> {
        let rc = self.row_code[i];
        if rc < 0 {
            return None;
        }
        Some(
            self.domain
                .iter()
                .position(|&d| d == rc)
                .expect("present code in domain"),
        )
    }

    /// Writes domain code `code` into row `i` of `out`.
    fn write(&self, out: &mut Dataset, i: usize, code: i64) -> Result<()> {
        if self.boolean {
            out.bool_col_mut(self.col)?.set(i, Some(code == 1));
        } else {
            out.cat_col_mut(self.col)?.set_code(i, code as u32);
        }
        Ok(())
    }
}

/// Applies *invariant* PRAM: a transition matrix whose stationary
/// distribution is the data's own category distribution, so expected
/// category frequencies are unchanged and no unbiasing step is needed.
/// With probability `1 − flip` a value is kept; otherwise it is re-drawn
/// from the empirical marginal distribution π (possibly landing on itself)
/// — the kernel `M = (1−flip)·I + flip·1πᵀ`, whose stationary vector is π.
pub fn invariant_pram<R: Rng + ?Sized>(
    data: &Dataset,
    col: usize,
    flip: f64,
    rng: &mut R,
) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&flip) {
        return Err(Error::InvalidParameter("flip must be in [0, 1]".into()));
    }
    let kind = data.schema().attribute(col).kind;
    match kind {
        AttributeKind::Nominal | AttributeKind::Ordinal | AttributeKind::Boolean => {}
        _ => {
            return Err(Error::NotNumeric(format!(
                "PRAM applies to categorical attributes, `{}` is numeric",
                data.schema().attribute(col).name
            )))
        }
    }
    // Empirical category distribution over the coded domain (sorted by
    // value order, matching the old `BTreeMap<Value, _>` iteration).
    let coded = CodedColumn::read(data, col);
    let mut counts = vec![0usize; coded.domain.len()];
    for i in 0..data.num_rows() {
        if let Some(p) = coded.domain_pos(i) {
            counts[p] += 1;
        }
    }
    let mut out = data.clone();
    if coded.domain.len() < 2 {
        return Ok(out);
    }
    let total: usize = counts.iter().sum();
    for i in 0..data.num_rows() {
        if coded.domain_pos(i).is_none() || rng.gen::<f64>() >= flip {
            continue;
        }
        // Re-draw from the marginal distribution (including possibly the
        // same category): exactly the invariant Markov kernel
        // M = (1−flip)·I + flip·1πᵀ, whose stationary vector is π.
        let mut pick = rng.gen_range(0..total);
        for (p, &c) in counts.iter().enumerate() {
            if pick < c {
                coded.write(&mut out, i, coded.domain[p])?;
                break;
            }
            pick -= c;
        }
    }
    Ok(out)
}

/// Estimates the true frequency of `value` in the original data from its
/// frequency in PRAM-masked data, inverting the transition matrix:
/// for `c` categories, `observed = true·(1−flip) + (1−true)·flip/(c−1)`.
pub fn unbias_frequency(observed: f64, flip: f64, categories: usize) -> f64 {
    assert!(categories >= 2, "need at least two categories");
    let q = flip / (categories as f64 - 1.0);
    // observed = t(1−flip) + (1−t)q  =>  t = (observed − q) / (1 − flip − q)
    let denom = 1.0 - flip - q;
    if denom.abs() < 1e-12 {
        return f64::NAN; // flip so large the channel is non-invertible
    }
    (observed - q) / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use tdf_microdata::rng::seeded;
    use tdf_microdata::synth::census;
    use tdf_microdata::Value;

    #[test]
    fn flip_zero_is_identity() {
        let d = census(200, 1);
        let masked = pram(&d, 4, 0.0, &mut seeded(1)).unwrap();
        assert_eq!(masked, d);
    }

    #[test]
    fn flip_changes_roughly_the_requested_fraction() {
        let d = census(2000, 2);
        let masked = pram(&d, 4, 0.3, &mut seeded(2)).unwrap();
        let changed = (0..d.num_rows())
            .filter(|&i| d.value(i, 4) != masked.value(i, 4))
            .count() as f64
            / d.num_rows() as f64;
        assert!((changed - 0.3).abs() < 0.05, "changed {changed}");
    }

    #[test]
    fn domain_is_preserved() {
        let d = census(500, 3);
        let masked = pram(&d, 4, 0.5, &mut seeded(3)).unwrap();
        let orig: BTreeSet<Value> = (0..d.num_rows()).map(|i| d.value(i, 4).clone()).collect();
        for i in 0..masked.num_rows() {
            assert!(orig.contains(&masked.value(i, 4)));
        }
    }

    #[test]
    fn frequency_unbiasing_recovers_truth() {
        // The census draws diseases *uniformly*, i.e. at PRAM's fixed
        // point 1/c, where the observed frequency is already unbiased and
        // inversion only amplifies sampling noise. To exercise the bias
        // the estimator exists to remove, skew the column first: 40%
        // cancer, the rest cycling through the other diseases.
        let mut d = census(8000, 4);
        let col = 4;
        let others: Vec<&str> = tdf_microdata::synth::DISEASES
            .iter()
            .copied()
            .filter(|v| *v != "cancer")
            .collect();
        for i in 0..d.num_rows() {
            let v = if i % 10 < 4 {
                "cancer"
            } else {
                others[i % others.len()]
            };
            d.set_value(i, col, Value::Str(v.to_owned())).unwrap();
        }
        let flip = 0.4;
        let count = |data: &Dataset, v: &str| {
            data.matching_indices(|r| r[col].as_str() == Some(v)).len() as f64
                / data.num_rows() as f64
        };
        let truth = count(&d, "cancer");
        assert!((truth - 0.4).abs() < 1e-9);
        let masked = pram(&d, col, flip, &mut seeded(4)).unwrap();
        let observed = count(&masked, "cancer");
        let estimated = unbias_frequency(observed, flip, tdf_microdata::synth::DISEASES.len());
        assert!(
            (estimated - truth).abs() < 0.02,
            "truth {truth}, observed {observed}, estimated {estimated}"
        );
        // The raw observed frequency is pulled toward the uniform point
        // 1/c — the bias inversion removes (E[observed] ≈ 0.288 here).
        assert!((observed - truth).abs() > (estimated - truth).abs());
        assert!(
            observed < truth - 0.05,
            "observed {observed} should be biased down"
        );
    }

    #[test]
    fn invariant_pram_preserves_marginals() {
        let d = census(6000, 7);
        let col = 4;
        let masked = invariant_pram(&d, col, 0.6, &mut seeded(8)).unwrap();
        for disease in tdf_microdata::synth::DISEASES {
            let f0 = d
                .matching_indices(|r| r[col].as_str() == Some(disease))
                .len() as f64
                / d.num_rows() as f64;
            let f1 = masked
                .matching_indices(|r| r[col].as_str() == Some(disease))
                .len() as f64
                / masked.num_rows() as f64;
            assert!((f0 - f1).abs() < 0.02, "{disease}: {f0} vs {f1}");
        }
        // And still changes plenty of cells.
        let changed = (0..d.num_rows())
            .filter(|&i| d.value(i, col) != masked.value(i, col))
            .count() as f64
            / d.num_rows() as f64;
        assert!(changed > 0.35, "changed {changed}");
    }

    #[test]
    fn invariant_pram_flip_zero_is_identity() {
        let d = census(100, 9);
        assert_eq!(invariant_pram(&d, 4, 0.0, &mut seeded(1)).unwrap(), d);
    }

    #[test]
    fn rejects_numeric_columns_and_bad_flip() {
        let d = census(10, 5);
        assert!(pram(&d, 0, 0.2, &mut seeded(5)).is_err()); // age is numeric
        assert!(pram(&d, 4, 1.5, &mut seeded(5)).is_err());
    }

    #[test]
    fn boolean_columns_work() {
        use tdf_microdata::patients;
        let d = patients::dataset1();
        let masked = pram(&d, 3, 1.0, &mut seeded(6)).unwrap();
        // flip = 1 with two categories inverts every flag.
        for i in 0..d.num_rows() {
            assert_ne!(d.value(i, 3), masked.value(i, 3));
        }
    }
}
