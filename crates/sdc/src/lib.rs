//! # tdf-sdc
//!
//! Statistical disclosure control (SDC) — the toolbox of the respondent-
//! privacy dimension, after the *Handbook on Statistical Disclosure
//! Control* [17] and Willenborg–DeWaal [26].
//!
//! Masking methods (each takes an original dataset and returns a protected
//! release):
//!
//! * [`microaggregation`] — MDAV and fixed-size heuristics; with group size
//!   `k` applied to the quasi-identifiers this *guarantees k-anonymity*
//!   (Domingo-Ferrer–Torra [12]) and coincides with the condensation
//!   approach to PPDM (Aggarwal–Yu [1]);
//! * [`noise`] — uncorrelated and correlated additive Gaussian noise
//!   (the masking of Agrawal–Srikant [5] and of hippocratic databases);
//! * [`swapping`] — rank swapping;
//! * [`pram`] — post-randomization of categorical attributes;
//! * [`coding`] — top/bottom coding and rounding;
//! * [`tables`] — tabular protection: frequency tables with primary and
//!   complementary cell suppression, audited by exact linear algebra.
//! * [`epoch`] — incremental republication over sealed segments: cached
//!   masked images for O(delta) epochs, segment-parallel masking, and
//!   the `TDF_RECHURN` continuity knob trading republication cost
//!   against cross-epoch linkability.
//!
//! Metrics:
//!
//! * [`risk`] — disclosure risk: distance-based record linkage, interval
//!   disclosure, uniqueness (within one release) and
//!   [`risk::cross_epoch_linkage_rate`] (trackability across releases);
//! * [`utility`] — information loss: IL1s, moment/covariance preservation.
//!
//! The same masked release scores on *both* of the paper's first two
//! dimensions: record linkage measures respondent risk, while the owner's
//! exposure is the fraction of original values an adversary can reconstruct
//! from the release (see `tdf-core::scoring`).

pub mod coding;
pub mod epoch;
pub mod microaggregation;
pub mod noise;
pub mod pram;
pub mod risk;
pub mod swapping;
pub mod tables;
pub mod utility;

pub use epoch::{EpochMasker, EpochPublisher, EpochRelease};
pub use microaggregation::{fixed_microaggregate, mdav_microaggregate, MicroaggregationResult};
pub use noise::{add_correlated_noise, add_noise, NoiseConfig};
pub use risk::{
    cross_epoch_linkage_rate, interval_disclosure_rate, record_linkage_rate, uniqueness_rate,
};
pub use utility::{il1s, UtilityReport};
