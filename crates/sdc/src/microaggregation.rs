//! Microaggregation: MDAV and fixed-size heuristics.
//!
//! Microaggregation partitions records into groups of at least `k` similar
//! records and replaces each group's values by the group centroid. Applied
//! to the quasi-identifiers it yields k-anonymity ([12]); applied to all
//! attributes it is the *condensation* PPDM method of Aggarwal–Yu [1],
//! because the released centroids preserve means exactly and covariances
//! approximately.

use tdf_microdata::distance::{sq_euclidean, Points, Standardizer};
use tdf_microdata::{Dataset, Error, Result};

/// Output of a microaggregation run.
#[derive(Debug, Clone)]
pub struct MicroaggregationResult {
    /// Masked dataset (same schema; aggregated columns hold centroids).
    pub data: Dataset,
    /// Group id assigned to every record.
    pub group_of: Vec<usize>,
    /// Number of groups formed.
    pub num_groups: usize,
    /// Within-group sum of squared (standardized) distances — the SSE the
    /// method minimizes; reported for information-loss accounting.
    pub sse: f64,
}

/// MDAV (Maximum Distance to Average Vector) microaggregation of the given
/// numeric `cols` with minimum group size `k` (Domingo-Ferrer &
/// Mateo-Sanz [10]).
/// ```
/// use tdf_microdata::patients;
/// use tdf_sdc::microaggregation::mdav_microaggregate;
/// use tdf_anonymity::is_k_anonymous;
///
/// let data = patients::dataset2(); // not 3-anonymous
/// let masked = mdav_microaggregate(&data, &[0, 1], 3).unwrap().data;
/// assert!(is_k_anonymous(&masked, 3));
/// ```
pub fn mdav_microaggregate(
    data: &Dataset,
    cols: &[usize],
    k: usize,
) -> Result<MicroaggregationResult> {
    validate(data, cols, k)?;
    let _span = obs::span("sdc.mdav");
    let std = Standardizer::fit(data, cols);
    let points = standardized_points(data, &std);

    let mut active = ActiveSet::all_of(&points);
    let mut groups: Vec<Vec<usize>> = Vec::new();
    // Scan tallies accumulated locally and flushed once per run — the
    // distance loop is too hot for a per-scan registry write. Each
    // distance scan fills one squared distance per live record.
    let mut fills = 0u64;
    let mut skips = 0u64;

    while active.len() >= 3 * k {
        let centroid = active.centroid();
        // r: farthest record from the centroid; s: farthest from r. The
        // anchor-r distances are computed once and reused to carve r's
        // group below.
        fills += 2 * active.len() as u64; // the farthest scan and d_r
        let r = active.ids[active.farthest(&centroid)];
        let d_r = active.distances_to(points.point(r));
        let s = active.ids[argmax(&d_r)];

        let group_r = k_nearest(&active.ids, &d_r, k, &mut skips);
        active.remove(&group_r);
        groups.push(group_r);

        fills += active.len() as u64;
        let d_s = active.distances_to(points.point(s));
        let group_s = k_nearest(&active.ids, &d_s, k, &mut skips);
        active.remove(&group_s);
        groups.push(group_s);
    }
    if active.len() >= 2 * k {
        let centroid = active.centroid();
        fills += 2 * active.len() as u64;
        let r = active.ids[active.farthest(&centroid)];
        let d_r = active.distances_to(points.point(r));
        let group = k_nearest(&active.ids, &d_r, k, &mut skips);
        active.remove(&group);
        groups.push(group);
    }
    if !active.is_empty() {
        groups.push(active.ids);
    }
    obs::count("sdc.mdav.groups", groups.len() as u64);
    obs::count("sdc.mdav.distance_fills", fills);
    obs::count("sdc.mdav.block_skips", skips);

    Ok(finish(data, cols, points, groups))
}

/// The records MDAV has not yet grouped, kept as a *structure of
/// arrays*: `ids[p]` is the record id and `cols[t][p]` its standardized
/// coordinate in dimension `t`. Removal compacts ids and every column in
/// place (order-preserving), so each distance scan is a handful of
/// contiguous column sweeps over exactly the live records — branch-free
/// loops the compiler vectorizes, with no gather through a shrinking
/// index list. Per-element arithmetic, per-component summation order,
/// chunk boundaries, and fold order all match the row-major gather
/// formulation, so the groups formed are bit-identical to it.
struct ActiveSet {
    ids: Vec<usize>,
    cols: Vec<Vec<f64>>,
}

impl ActiveSet {
    fn all_of(points: &Points) -> Self {
        let dim = points.dim();
        let cols = (0..dim)
            .map(|t| points.flat().iter().skip(t).step_by(dim).copied().collect())
            .collect();
        Self {
            ids: (0..points.len()).collect(),
            cols,
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn dim(&self) -> usize {
        self.cols.len()
    }

    /// Squared distances from each live record to `target`, in `ids`
    /// order. Serially this is one squaring sweep over the first column
    /// followed by an accumulate sweep per further column — the same
    /// left-to-right sum per element as `sq_euclidean` (squares are never
    /// `-0.0`, so eliding the leading `0.0 +` term preserves every bit).
    fn distances_to(&self, target: &[f64]) -> Vec<f64> {
        let n = self.len();
        if self.dim() == 0 {
            return vec![0.0; n];
        }
        if par::effective_threads() > 1 {
            return par::par_map_range(n, |p| {
                let mut acc = 0.0f64;
                for (col, &t) in self.cols.iter().zip(target) {
                    let d = col[p] - t;
                    acc += d * d;
                }
                acc
            });
        }
        let mut out = vec![0.0f64; n];
        fill_sq_dists(&self.cols, target, &mut out);
        out
    }

    /// Position of the live record farthest from `target` — exactly
    /// `argmax(&self.distances_to(target))`.
    fn farthest(&self, target: &[f64]) -> usize {
        argmax(&self.distances_to(target))
    }

    /// Centroid of the live records, summed in fixed chunk order (the
    /// same `(len, chunk = 0)` boundaries and per-component element order
    /// as the row-major reduce, so the mean is bit-identical at every
    /// thread count).
    fn centroid(&self) -> Vec<f64> {
        let d = self.dim();
        let n = self.len() as f64;
        if d <= 8 {
            // Stack accumulators — no per-chunk allocation.
            let sums = par::par_index_reduce(
                self.len(),
                0,
                |range| {
                    let mut acc = [0.0f64; 8];
                    for (t, col) in self.cols.iter().enumerate() {
                        let mut s = 0.0f64;
                        for &x in &col[range.clone()] {
                            s += x;
                        }
                        acc[t] = s;
                    }
                    acc
                },
                |mut a, b| {
                    for t in 0..d {
                        a[t] += b[t];
                    }
                    a
                },
            )
            .expect("non-empty active set");
            return sums[..d].iter().map(|s| s / n).collect();
        }
        let sums = par::par_index_reduce(
            self.len(),
            0,
            |range| {
                self.cols
                    .iter()
                    .map(|col| col[range.clone()].iter().sum::<f64>())
                    .collect::<Vec<f64>>()
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
        .expect("non-empty active set");
        sums.into_iter().map(|s| s / n).collect()
    }

    /// Drops `members` (by record id), compacting ids and every column in
    /// one order-preserving pass. Membership is a linear probe of the
    /// (tiny, size-`k`) group — or a sorted binary search for large `k` —
    /// rather than a hash set: the probe runs once per live record, and
    /// hashing dominated the whole MDAV loop at small `k`.
    fn remove(&mut self, members: &[usize]) {
        let mut sorted: Vec<usize>;
        let taken: &[usize] = if members.len() > 16 {
            sorted = members.to_vec();
            sorted.sort_unstable();
            &sorted
        } else {
            members
        };
        let gone = |id: usize| {
            if members.len() > 16 {
                taken.binary_search(&id).is_ok()
            } else {
                taken.contains(&id)
            }
        };
        let mut w = 0usize;
        for p in 0..self.ids.len() {
            if !gone(self.ids[p]) {
                self.ids[w] = self.ids[p];
                if w != p {
                    for col in &mut self.cols {
                        col[w] = col[p];
                    }
                }
                w += 1;
            }
        }
        self.ids.truncate(w);
        for col in &mut self.cols {
            col.truncate(w);
        }
    }
}

/// `out[p] = sq_euclidean(record p, target)` over structure-of-arrays
/// columns: a squaring sweep over the first column, then one accumulate
/// sweep per further column. Each sweep is a contiguous, branch-free loop;
/// the per-element summation order is exactly `sq_euclidean`\'s.
fn fill_sq_dists(cols: &[Vec<f64>], target: &[f64], out: &mut [f64]) {
    let t0 = target[0];
    for (o, &x) in out.iter_mut().zip(&cols[0]) {
        let d = x - t0;
        *o = d * d;
    }
    for (col, &tj) in cols[1..].iter().zip(&target[1..]) {
        for (o, &x) in out.iter_mut().zip(col) {
            let d = x - tj;
            *o += d * d;
        }
    }
}

/// Standardized coordinates for every record, as one flat row-major
/// buffer filled column-by-column from contiguous column storage (the
/// per-cell arithmetic matches `Standardizer::transform` bit for bit).
fn standardized_points(data: &Dataset, std: &Standardizer) -> Points {
    std.transform_points(data)
}

/// Position of the first maximum (strictly-greater comparison).
fn argmax(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (p, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = p;
        }
    }
    best
}

/// The `k` members of `remaining` with the smallest `(distance, id)` —
/// the lexicographic tie-break keeps the selection a pure function of the
/// inputs. Returned in increasing-distance order.
///
/// Scans block-wise: once the candidate list is full, a block whose
/// (NaN-free) minimum distance exceeds the current k-th distance cannot
/// contribute a member, so it is skipped without per-element tuple
/// comparisons. Blocks containing a NaN are never skipped — NaN
/// candidates compare `PartialOrd`-false against the cutoff and *are*
/// inserted by the element loop, which the skip must not short-circuit.
/// Skipped blocks are tallied into `skips` (the caller flushes the
/// `sdc.mdav.block_skips` counter once per run).
fn k_nearest(remaining: &[usize], dists: &[f64], k: usize, skips: &mut u64) -> Vec<usize> {
    const BLOCK: usize = 32;
    let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
    let mut p = 0usize;
    let n = dists.len();
    while p < n {
        let bl = BLOCK.min(n - p);
        if best.len() == k {
            let cutoff = best.last().expect("k >= 1").0;
            let mut bmin = f64::INFINITY;
            let mut has_nan = false;
            for &d in &dists[p..p + bl] {
                if d < bmin {
                    bmin = d;
                }
                has_nan |= d.is_nan();
            }
            if bmin > cutoff && !has_nan {
                p += bl;
                *skips += 1;
                continue;
            }
        }
        for q in p..p + bl {
            let cand = (dists[q], remaining[q]);
            if best.len() == k {
                let worst = *best.last().expect("k >= 1");
                if (cand.0, cand.1) >= (worst.0, worst.1) {
                    continue;
                }
                best.pop();
            }
            let at = best.partition_point(|&(d, i)| (d, i) < (cand.0, cand.1));
            best.insert(at, cand);
        }
        p += bl;
    }
    best.into_iter().map(|(_, id)| id).collect()
}

/// Fixed-size microaggregation: sorts records by their first principal
/// direction proxy (sum of standardized coordinates) and cuts consecutive
/// groups of `k`. Faster and simpler than MDAV, with higher information
/// loss — the ablation bench `ablate_microagg` quantifies the gap.
pub fn fixed_microaggregate(
    data: &Dataset,
    cols: &[usize],
    k: usize,
) -> Result<MicroaggregationResult> {
    validate(data, cols, k)?;
    let std = Standardizer::fit(data, cols);
    let points = standardized_points(data, &std);
    let mut order: Vec<usize> = (0..data.num_rows()).collect();
    order.sort_by(|&a, &b| {
        points
            .point(a)
            .iter()
            .sum::<f64>()
            .total_cmp(&points.point(b).iter().sum::<f64>())
    });
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut i = 0usize;
    while i < order.len() {
        let take = if order.len() - i < 2 * k {
            order.len() - i
        } else {
            k
        };
        groups.push(order[i..i + take].to_vec());
        i += take;
    }
    Ok(finish(data, cols, points, groups))
}

fn validate(data: &Dataset, cols: &[usize], k: usize) -> Result<()> {
    if k == 0 {
        return Err(Error::InvalidParameter(
            "microaggregation needs k >= 1".into(),
        ));
    }
    if data.num_rows() < k {
        return Err(Error::InvalidParameter(format!(
            "cannot form a group of {k} from {} records",
            data.num_rows()
        )));
    }
    for &c in cols {
        if !data.schema().attribute(c).kind.is_numeric() {
            return Err(Error::NotNumeric(data.schema().attribute(c).name.clone()));
        }
    }
    Ok(())
}

fn centroid_of(points: &Points, members: &[usize]) -> Vec<f64> {
    let d = points.dim();
    let mut c = vec![0.0; d];
    for &i in members {
        for (j, v) in points.point(i).iter().enumerate() {
            c[j] += v;
        }
    }
    for v in &mut c {
        *v /= members.len() as f64;
    }
    c
}

fn finish(
    data: &Dataset,
    cols: &[usize],
    points: Points,
    groups: Vec<Vec<usize>>,
) -> MicroaggregationResult {
    obs::observe_each(
        "sdc.microagg.group_size",
        groups.iter().map(|members| members.len() as u64),
    );
    let mut out = data.clone();
    // Raw-space centroid per column (means of original values), computed
    // over the contiguous column image and written straight into float
    // storage — the per-group accumulation order matches the row-major
    // original, so the means are bit-identical.
    for &col in cols {
        let cells = data.f64_cells(col).expect("numeric column");
        let means: Vec<f64> = groups
            .iter()
            .map(|members| {
                members.iter().filter_map(|&i| cells.get(i)).sum::<f64>() / members.len() as f64
            })
            .collect();
        let dst = out.float_col_mut(col).expect("numeric column");
        for (members, &mean) in groups.iter().zip(&means) {
            for &i in members {
                dst.set(i, Some(mean));
            }
        }
    }
    let mut group_of = vec![0usize; data.num_rows()];
    let mut sse = 0.0;
    for (gid, members) in groups.iter().enumerate() {
        let c = centroid_of(&points, members);
        for &i in members {
            sse += sq_euclidean(points.point(i), &c);
            group_of[i] = gid;
        }
    }
    let num_groups = groups.len();
    MicroaggregationResult {
        data: out,
        group_of,
        num_groups,
        sse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_anonymity::is_k_anonymous;
    use tdf_microdata::patients;
    use tdf_microdata::synth::{patients as synth, PatientConfig};

    fn qi(data: &Dataset) -> Vec<usize> {
        data.schema().quasi_identifier_indices()
    }

    #[test]
    fn mdav_groups_have_size_between_k_and_2k_minus_1() {
        let d = synth(&PatientConfig {
            n: 200,
            ..Default::default()
        });
        for k in [2usize, 3, 5, 10] {
            let r = mdav_microaggregate(&d, &qi(&d), k).unwrap();
            let mut counts = vec![0usize; r.num_groups];
            for &g in &r.group_of {
                counts[g] += 1;
            }
            assert!(
                counts.iter().all(|&c| c >= k && c < 2 * k),
                "k = {k}: {counts:?}"
            );
        }
    }

    #[test]
    fn mdav_on_quasi_identifiers_yields_k_anonymity() {
        // The paper (§2, ref [12]): "microaggregation/condensation with
        // minimum group size k on the key attributes guarantees k-anonymity".
        let d = patients::dataset2();
        let r = mdav_microaggregate(&d, &qi(&d), 3).unwrap();
        assert!(is_k_anonymous(&r.data, 3));
    }

    #[test]
    fn fixed_microaggregation_also_k_anonymizes() {
        let d = synth(&PatientConfig {
            n: 157,
            ..Default::default()
        });
        let r = fixed_microaggregate(&d, &qi(&d), 4).unwrap();
        assert!(is_k_anonymous(&r.data, 4));
    }

    #[test]
    fn means_are_preserved_exactly() {
        let d = synth(&PatientConfig {
            n: 100,
            ..Default::default()
        });
        let r = mdav_microaggregate(&d, &qi(&d), 5).unwrap();
        for col in qi(&d) {
            let orig = tdf_microdata::stats::mean(&d.numeric_column(col)).unwrap();
            let masked = tdf_microdata::stats::mean(&r.data.numeric_column(col)).unwrap();
            assert!((orig - masked).abs() < 1e-6);
        }
    }

    #[test]
    fn mdav_beats_fixed_size_on_sse() {
        let d = synth(&PatientConfig {
            n: 300,
            ..Default::default()
        });
        let mdav = mdav_microaggregate(&d, &qi(&d), 5).unwrap();
        let fixed = fixed_microaggregate(&d, &qi(&d), 5).unwrap();
        assert!(
            mdav.sse <= fixed.sse * 1.05,
            "MDAV sse {} vs fixed sse {}",
            mdav.sse,
            fixed.sse
        );
    }

    #[test]
    fn confidential_columns_untouched_when_only_qi_aggregated() {
        let d = patients::dataset2();
        let r = mdav_microaggregate(&d, &qi(&d), 3).unwrap();
        for i in 0..d.num_rows() {
            assert_eq!(r.data.value(i, 2), d.value(i, 2));
        }
    }

    #[test]
    fn condensation_mode_masks_all_numeric_columns() {
        // Aggregating every numeric column = condensation [1].
        let d = patients::dataset2();
        let all_numeric = d.schema().numeric_indices();
        let r = mdav_microaggregate(&d, &all_numeric, 3).unwrap();
        // Blood pressure now shares centroids within groups.
        let groups = r.data.group_indices_by(&all_numeric);
        assert!(groups.values().all(|g| g.len() >= 3));
    }

    #[test]
    fn mdav_is_identical_across_thread_counts() {
        let d = synth(&PatientConfig {
            n: 250,
            ..Default::default()
        });
        let run = |t: usize| par::with_threads(t, || mdav_microaggregate(&d, &qi(&d), 4).unwrap());
        let (a, b) = (run(1), run(4));
        assert_eq!(a.group_of, b.group_of);
        assert_eq!(a.num_groups, b.num_groups);
        assert_eq!(a.sse.to_bits(), b.sse.to_bits());
    }

    #[test]
    fn rejects_bad_parameters() {
        let d = patients::dataset1();
        assert!(mdav_microaggregate(&d, &[0, 1], 0).is_err());
        assert!(mdav_microaggregate(&d, &[0, 1], 11).is_err());
        assert!(mdav_microaggregate(&d, &[3], 2).is_err()); // aids is boolean
    }

    #[test]
    fn k_equal_to_n_forms_single_group() {
        let d = patients::dataset1();
        let r = mdav_microaggregate(&d, &qi(&d), 10).unwrap();
        assert_eq!(r.num_groups, 1);
        assert!(is_k_anonymous(&r.data, 10));
    }
}
