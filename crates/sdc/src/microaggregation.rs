//! Microaggregation: MDAV and fixed-size heuristics.
//!
//! Microaggregation partitions records into groups of at least `k` similar
//! records and replaces each group's values by the group centroid. Applied
//! to the quasi-identifiers it yields k-anonymity ([12]); applied to all
//! attributes it is the *condensation* PPDM method of Aggarwal–Yu [1],
//! because the released centroids preserve means exactly and covariances
//! approximately.

use tdf_microdata::distance::{sq_euclidean, Standardizer};
use tdf_microdata::{Dataset, Error, Result, Value};

/// Output of a microaggregation run.
#[derive(Debug, Clone)]
pub struct MicroaggregationResult {
    /// Masked dataset (same schema; aggregated columns hold centroids).
    pub data: Dataset,
    /// Group id assigned to every record.
    pub group_of: Vec<usize>,
    /// Number of groups formed.
    pub num_groups: usize,
    /// Within-group sum of squared (standardized) distances — the SSE the
    /// method minimizes; reported for information-loss accounting.
    pub sse: f64,
}

/// MDAV (Maximum Distance to Average Vector) microaggregation of the given
/// numeric `cols` with minimum group size `k` (Domingo-Ferrer &
/// Mateo-Sanz [10]).
/// ```
/// use tdf_microdata::patients;
/// use tdf_sdc::microaggregation::mdav_microaggregate;
/// use tdf_anonymity::is_k_anonymous;
///
/// let data = patients::dataset2(); // not 3-anonymous
/// let masked = mdav_microaggregate(&data, &[0, 1], 3).unwrap().data;
/// assert!(is_k_anonymous(&masked, 3));
/// ```
pub fn mdav_microaggregate(
    data: &Dataset,
    cols: &[usize],
    k: usize,
) -> Result<MicroaggregationResult> {
    validate(data, cols, k)?;
    let std = Standardizer::fit(data, cols);
    let points = standardized_points(data, &std);

    let mut remaining: Vec<usize> = (0..data.num_rows()).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();

    while remaining.len() >= 3 * k {
        let centroid = centroid_of_remaining(&points, &remaining);
        // r: farthest record from the centroid; s: farthest from r. Each
        // scan computes its distances exactly once (the anchor-r distances
        // are reused to carve r's group below).
        let d_centroid = distances_to(&points, &remaining, &centroid);
        let r = remaining[argmax(&d_centroid)];
        let d_r = distances_to(&points, &remaining, &points[r]);
        let s = remaining[argmax(&d_r)];

        let group_r = k_nearest(&remaining, &d_r, k);
        remove_members(&mut remaining, &group_r);
        groups.push(group_r);

        let d_s = distances_to(&points, &remaining, &points[s]);
        let group_s = k_nearest(&remaining, &d_s, k);
        remove_members(&mut remaining, &group_s);
        groups.push(group_s);
    }
    if remaining.len() >= 2 * k {
        let centroid = centroid_of_remaining(&points, &remaining);
        let d_centroid = distances_to(&points, &remaining, &centroid);
        let r = remaining[argmax(&d_centroid)];
        let d_r = distances_to(&points, &remaining, &points[r]);
        let group = k_nearest(&remaining, &d_r, k);
        remove_members(&mut remaining, &group);
        groups.push(group);
    }
    if !remaining.is_empty() {
        groups.push(remaining);
    }

    Ok(finish(data, cols, points, groups))
}

/// Standardized coordinates for every record, computed in parallel (each
/// row is independent).
fn standardized_points(data: &Dataset, std: &Standardizer) -> Vec<Vec<f64>> {
    par::par_map_range(data.num_rows(), |i| std.transform(data.row(i)))
}

/// Squared distances from each member of `remaining` to `target` — one
/// parallel pass, element `p` a pure function of `remaining[p]`, so the
/// vector is identical at any thread count.
fn distances_to(points: &[Vec<f64>], remaining: &[usize], target: &[f64]) -> Vec<f64> {
    par::par_map(remaining, |&i| sq_euclidean(&points[i], target))
}

/// Position of the first maximum (strictly-greater comparison).
fn argmax(values: &[f64]) -> usize {
    let mut best = 0usize;
    for (p, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = p;
        }
    }
    best
}

/// The `k` members of `remaining` with the smallest `(distance, id)` —
/// the lexicographic tie-break keeps the selection a pure function of the
/// inputs. Returned in increasing-distance order.
fn k_nearest(remaining: &[usize], dists: &[f64], k: usize) -> Vec<usize> {
    let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
    for (p, &id) in remaining.iter().enumerate() {
        let cand = (dists[p], id);
        if best.len() == k {
            let worst = *best.last().expect("k >= 1");
            if (cand.0, cand.1) >= (worst.0, worst.1) {
                continue;
            }
            best.pop();
        }
        let at = best.partition_point(|&(d, i)| (d, i) < (cand.0, cand.1));
        best.insert(at, cand);
    }
    best.into_iter().map(|(_, id)| id).collect()
}

/// Removes `members` from `remaining` in one O(n) pass.
fn remove_members(remaining: &mut Vec<usize>, members: &[usize]) {
    let taken: std::collections::HashSet<usize> = members.iter().copied().collect();
    remaining.retain(|i| !taken.contains(i));
}

/// Centroid of the records in `remaining`, summed in fixed chunk order.
fn centroid_of_remaining(points: &[Vec<f64>], remaining: &[usize]) -> Vec<f64> {
    let d = points[remaining[0]].len();
    let sums = par::par_chunks_reduce(
        remaining,
        0,
        |chunk| {
            let mut acc = vec![0.0f64; d];
            for &i in chunk {
                for (a, v) in acc.iter_mut().zip(&points[i]) {
                    *a += v;
                }
            }
            acc
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        },
    )
    .expect("non-empty remaining");
    sums.into_iter()
        .map(|s| s / remaining.len() as f64)
        .collect()
}

/// Fixed-size microaggregation: sorts records by their first principal
/// direction proxy (sum of standardized coordinates) and cuts consecutive
/// groups of `k`. Faster and simpler than MDAV, with higher information
/// loss — the ablation bench `ablate_microagg` quantifies the gap.
pub fn fixed_microaggregate(
    data: &Dataset,
    cols: &[usize],
    k: usize,
) -> Result<MicroaggregationResult> {
    validate(data, cols, k)?;
    let std = Standardizer::fit(data, cols);
    let points = standardized_points(data, &std);
    let mut order: Vec<usize> = (0..data.num_rows()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .iter()
            .sum::<f64>()
            .total_cmp(&points[b].iter().sum::<f64>())
    });
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut i = 0usize;
    while i < order.len() {
        let take = if order.len() - i < 2 * k {
            order.len() - i
        } else {
            k
        };
        groups.push(order[i..i + take].to_vec());
        i += take;
    }
    Ok(finish(data, cols, points, groups))
}

fn validate(data: &Dataset, cols: &[usize], k: usize) -> Result<()> {
    if k == 0 {
        return Err(Error::InvalidParameter(
            "microaggregation needs k >= 1".into(),
        ));
    }
    if data.num_rows() < k {
        return Err(Error::InvalidParameter(format!(
            "cannot form a group of {k} from {} records",
            data.num_rows()
        )));
    }
    for &c in cols {
        if !data.schema().attribute(c).kind.is_numeric() {
            return Err(Error::NotNumeric(data.schema().attribute(c).name.clone()));
        }
    }
    Ok(())
}

fn centroid_of(points: &[Vec<f64>], members: &[usize]) -> Vec<f64> {
    let d = points[members[0]].len();
    let mut c = vec![0.0; d];
    for &i in members {
        for (j, v) in points[i].iter().enumerate() {
            c[j] += v;
        }
    }
    for v in &mut c {
        *v /= members.len() as f64;
    }
    c
}

fn finish(
    data: &Dataset,
    cols: &[usize],
    points: Vec<Vec<f64>>,
    groups: Vec<Vec<usize>>,
) -> MicroaggregationResult {
    let mut out = data.clone();
    let mut group_of = vec![0usize; data.num_rows()];
    let mut sse = 0.0;
    for (gid, members) in groups.iter().enumerate() {
        // Raw-space centroid per column (means of original values).
        for &col in cols {
            let mean = members
                .iter()
                .filter_map(|&i| data.value(i, col).as_f64())
                .sum::<f64>()
                / members.len() as f64;
            for &i in members {
                out.set_value(i, col, Value::Float(mean))
                    .expect("numeric column");
            }
        }
        let c = centroid_of(&points, members);
        for &i in members {
            sse += sq_euclidean(&points[i], &c);
            group_of[i] = gid;
        }
    }
    let num_groups = groups.len();
    MicroaggregationResult {
        data: out,
        group_of,
        num_groups,
        sse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_anonymity::is_k_anonymous;
    use tdf_microdata::patients;
    use tdf_microdata::synth::{patients as synth, PatientConfig};

    fn qi(data: &Dataset) -> Vec<usize> {
        data.schema().quasi_identifier_indices()
    }

    #[test]
    fn mdav_groups_have_size_between_k_and_2k_minus_1() {
        let d = synth(&PatientConfig {
            n: 200,
            ..Default::default()
        });
        for k in [2usize, 3, 5, 10] {
            let r = mdav_microaggregate(&d, &qi(&d), k).unwrap();
            let mut counts = vec![0usize; r.num_groups];
            for &g in &r.group_of {
                counts[g] += 1;
            }
            assert!(
                counts.iter().all(|&c| c >= k && c < 2 * k),
                "k = {k}: {counts:?}"
            );
        }
    }

    #[test]
    fn mdav_on_quasi_identifiers_yields_k_anonymity() {
        // The paper (§2, ref [12]): "microaggregation/condensation with
        // minimum group size k on the key attributes guarantees k-anonymity".
        let d = patients::dataset2();
        let r = mdav_microaggregate(&d, &qi(&d), 3).unwrap();
        assert!(is_k_anonymous(&r.data, 3));
    }

    #[test]
    fn fixed_microaggregation_also_k_anonymizes() {
        let d = synth(&PatientConfig {
            n: 157,
            ..Default::default()
        });
        let r = fixed_microaggregate(&d, &qi(&d), 4).unwrap();
        assert!(is_k_anonymous(&r.data, 4));
    }

    #[test]
    fn means_are_preserved_exactly() {
        let d = synth(&PatientConfig {
            n: 100,
            ..Default::default()
        });
        let r = mdav_microaggregate(&d, &qi(&d), 5).unwrap();
        for col in qi(&d) {
            let orig = tdf_microdata::stats::mean(&d.numeric_column(col)).unwrap();
            let masked = tdf_microdata::stats::mean(&r.data.numeric_column(col)).unwrap();
            assert!((orig - masked).abs() < 1e-6);
        }
    }

    #[test]
    fn mdav_beats_fixed_size_on_sse() {
        let d = synth(&PatientConfig {
            n: 300,
            ..Default::default()
        });
        let mdav = mdav_microaggregate(&d, &qi(&d), 5).unwrap();
        let fixed = fixed_microaggregate(&d, &qi(&d), 5).unwrap();
        assert!(
            mdav.sse <= fixed.sse * 1.05,
            "MDAV sse {} vs fixed sse {}",
            mdav.sse,
            fixed.sse
        );
    }

    #[test]
    fn confidential_columns_untouched_when_only_qi_aggregated() {
        let d = patients::dataset2();
        let r = mdav_microaggregate(&d, &qi(&d), 3).unwrap();
        for i in 0..d.num_rows() {
            assert_eq!(r.data.value(i, 2), d.value(i, 2));
        }
    }

    #[test]
    fn condensation_mode_masks_all_numeric_columns() {
        // Aggregating every numeric column = condensation [1].
        let d = patients::dataset2();
        let all_numeric = d.schema().numeric_indices();
        let r = mdav_microaggregate(&d, &all_numeric, 3).unwrap();
        // Blood pressure now shares centroids within groups.
        let groups = r.data.group_indices_by(&all_numeric);
        assert!(groups.values().all(|g| g.len() >= 3));
    }

    #[test]
    fn mdav_is_identical_across_thread_counts() {
        let d = synth(&PatientConfig {
            n: 250,
            ..Default::default()
        });
        let run = |t: usize| par::with_threads(t, || mdav_microaggregate(&d, &qi(&d), 4).unwrap());
        let (a, b) = (run(1), run(4));
        assert_eq!(a.group_of, b.group_of);
        assert_eq!(a.num_groups, b.num_groups);
        assert_eq!(a.sse.to_bits(), b.sse.to_bits());
    }

    #[test]
    fn rejects_bad_parameters() {
        let d = patients::dataset1();
        assert!(mdav_microaggregate(&d, &[0, 1], 0).is_err());
        assert!(mdav_microaggregate(&d, &[0, 1], 11).is_err());
        assert!(mdav_microaggregate(&d, &[3], 2).is_err()); // aids is boolean
    }

    #[test]
    fn k_equal_to_n_forms_single_group() {
        let d = patients::dataset1();
        let r = mdav_microaggregate(&d, &qi(&d), 10).unwrap();
        assert_eq!(r.num_groups, 1);
        assert!(is_k_anonymous(&r.data, 10));
    }
}
