//! Microaggregation: MDAV and fixed-size heuristics.
//!
//! Microaggregation partitions records into groups of at least `k` similar
//! records and replaces each group's values by the group centroid. Applied
//! to the quasi-identifiers it yields k-anonymity ([12]); applied to all
//! attributes it is the *condensation* PPDM method of Aggarwal–Yu [1],
//! because the released centroids preserve means exactly and covariances
//! approximately.

use tdf_microdata::distance::{sq_euclidean, Standardizer};
use tdf_microdata::{Dataset, Error, Result, Value};

/// Output of a microaggregation run.
#[derive(Debug, Clone)]
pub struct MicroaggregationResult {
    /// Masked dataset (same schema; aggregated columns hold centroids).
    pub data: Dataset,
    /// Group id assigned to every record.
    pub group_of: Vec<usize>,
    /// Number of groups formed.
    pub num_groups: usize,
    /// Within-group sum of squared (standardized) distances — the SSE the
    /// method minimizes; reported for information-loss accounting.
    pub sse: f64,
}

/// MDAV (Maximum Distance to Average Vector) microaggregation of the given
/// numeric `cols` with minimum group size `k` (Domingo-Ferrer &
/// Mateo-Sanz [10]).
/// ```
/// use tdf_microdata::patients;
/// use tdf_sdc::microaggregation::mdav_microaggregate;
/// use tdf_anonymity::is_k_anonymous;
///
/// let data = patients::dataset2(); // not 3-anonymous
/// let masked = mdav_microaggregate(&data, &[0, 1], 3).unwrap().data;
/// assert!(is_k_anonymous(&masked, 3));
/// ```
pub fn mdav_microaggregate(
    data: &Dataset,
    cols: &[usize],
    k: usize,
) -> Result<MicroaggregationResult> {
    validate(data, cols, k)?;
    let std = Standardizer::fit(data, cols);
    let points: Vec<Vec<f64>> = (0..data.num_rows())
        .map(|i| std.transform(data.row(i)))
        .collect();

    let mut remaining: Vec<usize> = (0..data.num_rows()).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();

    while remaining.len() >= 3 * k {
        let centroid = centroid_of(&points, &remaining);
        // r: farthest record from the centroid; s: farthest from r.
        let r = *remaining
            .iter()
            .max_by(|&&a, &&b| {
                sq_euclidean(&points[a], &centroid).total_cmp(&sq_euclidean(&points[b], &centroid))
            })
            .expect("non-empty");
        let s = *remaining
            .iter()
            .max_by(|&&a, &&b| {
                sq_euclidean(&points[a], &points[r])
                    .total_cmp(&sq_euclidean(&points[b], &points[r]))
            })
            .expect("non-empty");
        for anchor in [r, s] {
            let mut rest: Vec<usize> = remaining.clone();
            rest.sort_by(|&a, &b| {
                sq_euclidean(&points[a], &points[anchor])
                    .total_cmp(&sq_euclidean(&points[b], &points[anchor]))
            });
            let group: Vec<usize> = rest.into_iter().take(k).collect();
            remaining.retain(|i| !group.contains(i));
            groups.push(group);
        }
    }
    if remaining.len() >= 2 * k {
        let centroid = centroid_of(&points, &remaining);
        let r = *remaining
            .iter()
            .max_by(|&&a, &&b| {
                sq_euclidean(&points[a], &centroid).total_cmp(&sq_euclidean(&points[b], &centroid))
            })
            .expect("non-empty");
        let mut rest = remaining.clone();
        rest.sort_by(|&a, &b| {
            sq_euclidean(&points[a], &points[r]).total_cmp(&sq_euclidean(&points[b], &points[r]))
        });
        let group: Vec<usize> = rest.into_iter().take(k).collect();
        remaining.retain(|i| !group.contains(i));
        groups.push(group);
    }
    if !remaining.is_empty() {
        groups.push(remaining);
    }

    Ok(finish(data, cols, &std, groups))
}

/// Fixed-size microaggregation: sorts records by their first principal
/// direction proxy (sum of standardized coordinates) and cuts consecutive
/// groups of `k`. Faster and simpler than MDAV, with higher information
/// loss — the ablation bench `ablate_microagg` quantifies the gap.
pub fn fixed_microaggregate(
    data: &Dataset,
    cols: &[usize],
    k: usize,
) -> Result<MicroaggregationResult> {
    validate(data, cols, k)?;
    let std = Standardizer::fit(data, cols);
    let points: Vec<Vec<f64>> = (0..data.num_rows())
        .map(|i| std.transform(data.row(i)))
        .collect();
    let mut order: Vec<usize> = (0..data.num_rows()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .iter()
            .sum::<f64>()
            .total_cmp(&points[b].iter().sum::<f64>())
    });
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut i = 0usize;
    while i < order.len() {
        let take = if order.len() - i < 2 * k {
            order.len() - i
        } else {
            k
        };
        groups.push(order[i..i + take].to_vec());
        i += take;
    }
    Ok(finish(data, cols, &std, groups))
}

fn validate(data: &Dataset, cols: &[usize], k: usize) -> Result<()> {
    if k == 0 {
        return Err(Error::InvalidParameter(
            "microaggregation needs k >= 1".into(),
        ));
    }
    if data.num_rows() < k {
        return Err(Error::InvalidParameter(format!(
            "cannot form a group of {k} from {} records",
            data.num_rows()
        )));
    }
    for &c in cols {
        if !data.schema().attribute(c).kind.is_numeric() {
            return Err(Error::NotNumeric(data.schema().attribute(c).name.clone()));
        }
    }
    Ok(())
}

fn centroid_of(points: &[Vec<f64>], members: &[usize]) -> Vec<f64> {
    let d = points[members[0]].len();
    let mut c = vec![0.0; d];
    for &i in members {
        for (j, v) in points[i].iter().enumerate() {
            c[j] += v;
        }
    }
    for v in &mut c {
        *v /= members.len() as f64;
    }
    c
}

fn finish(
    data: &Dataset,
    cols: &[usize],
    std: &Standardizer,
    groups: Vec<Vec<usize>>,
) -> MicroaggregationResult {
    let mut out = data.clone();
    let mut group_of = vec![0usize; data.num_rows()];
    let mut sse = 0.0;
    let points: Vec<Vec<f64>> = (0..data.num_rows())
        .map(|i| std.transform(data.row(i)))
        .collect();
    for (gid, members) in groups.iter().enumerate() {
        // Raw-space centroid per column (means of original values).
        for &col in cols {
            let mean = members
                .iter()
                .filter_map(|&i| data.value(i, col).as_f64())
                .sum::<f64>()
                / members.len() as f64;
            for &i in members {
                out.set_value(i, col, Value::Float(mean))
                    .expect("numeric column");
            }
        }
        let c = centroid_of(&points, members);
        for &i in members {
            sse += sq_euclidean(&points[i], &c);
            group_of[i] = gid;
        }
    }
    let num_groups = groups.len();
    MicroaggregationResult {
        data: out,
        group_of,
        num_groups,
        sse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_anonymity::is_k_anonymous;
    use tdf_microdata::patients;
    use tdf_microdata::synth::{patients as synth, PatientConfig};

    fn qi(data: &Dataset) -> Vec<usize> {
        data.schema().quasi_identifier_indices()
    }

    #[test]
    fn mdav_groups_have_size_between_k_and_2k_minus_1() {
        let d = synth(&PatientConfig {
            n: 200,
            ..Default::default()
        });
        for k in [2usize, 3, 5, 10] {
            let r = mdav_microaggregate(&d, &qi(&d), k).unwrap();
            let mut counts = vec![0usize; r.num_groups];
            for &g in &r.group_of {
                counts[g] += 1;
            }
            assert!(
                counts.iter().all(|&c| c >= k && c < 2 * k),
                "k = {k}: {counts:?}"
            );
        }
    }

    #[test]
    fn mdav_on_quasi_identifiers_yields_k_anonymity() {
        // The paper (§2, ref [12]): "microaggregation/condensation with
        // minimum group size k on the key attributes guarantees k-anonymity".
        let d = patients::dataset2();
        let r = mdav_microaggregate(&d, &qi(&d), 3).unwrap();
        assert!(is_k_anonymous(&r.data, 3));
    }

    #[test]
    fn fixed_microaggregation_also_k_anonymizes() {
        let d = synth(&PatientConfig {
            n: 157,
            ..Default::default()
        });
        let r = fixed_microaggregate(&d, &qi(&d), 4).unwrap();
        assert!(is_k_anonymous(&r.data, 4));
    }

    #[test]
    fn means_are_preserved_exactly() {
        let d = synth(&PatientConfig {
            n: 100,
            ..Default::default()
        });
        let r = mdav_microaggregate(&d, &qi(&d), 5).unwrap();
        for col in qi(&d) {
            let orig = tdf_microdata::stats::mean(&d.numeric_column(col)).unwrap();
            let masked = tdf_microdata::stats::mean(&r.data.numeric_column(col)).unwrap();
            assert!((orig - masked).abs() < 1e-6);
        }
    }

    #[test]
    fn mdav_beats_fixed_size_on_sse() {
        let d = synth(&PatientConfig {
            n: 300,
            ..Default::default()
        });
        let mdav = mdav_microaggregate(&d, &qi(&d), 5).unwrap();
        let fixed = fixed_microaggregate(&d, &qi(&d), 5).unwrap();
        assert!(
            mdav.sse <= fixed.sse * 1.05,
            "MDAV sse {} vs fixed sse {}",
            mdav.sse,
            fixed.sse
        );
    }

    #[test]
    fn confidential_columns_untouched_when_only_qi_aggregated() {
        let d = patients::dataset2();
        let r = mdav_microaggregate(&d, &qi(&d), 3).unwrap();
        for i in 0..d.num_rows() {
            assert_eq!(r.data.value(i, 2), d.value(i, 2));
        }
    }

    #[test]
    fn condensation_mode_masks_all_numeric_columns() {
        // Aggregating every numeric column = condensation [1].
        let d = patients::dataset2();
        let all_numeric = d.schema().numeric_indices();
        let r = mdav_microaggregate(&d, &all_numeric, 3).unwrap();
        // Blood pressure now shares centroids within groups.
        let groups = r.data.group_indices_by(&all_numeric);
        assert!(groups.values().all(|g| g.len() >= 3));
    }

    #[test]
    fn rejects_bad_parameters() {
        let d = patients::dataset1();
        assert!(mdav_microaggregate(&d, &[0, 1], 0).is_err());
        assert!(mdav_microaggregate(&d, &[0, 1], 11).is_err());
        assert!(mdav_microaggregate(&d, &[3], 2).is_err()); // aids is boolean
    }

    #[test]
    fn k_equal_to_n_forms_single_group() {
        let d = patients::dataset1();
        let r = mdav_microaggregate(&d, &qi(&d), 10).unwrap();
        assert_eq!(r.num_groups, 1);
        assert!(is_k_anonymous(&r.data, 10));
    }
}
