//! Top/bottom coding and rounding — the simplest SDC maskers.

use tdf_microdata::stats::quantile;
use tdf_microdata::{Dataset, Error, Result, Value};

/// Replaces values above the `upper_q` quantile with that quantile and
/// values below the `lower_q` quantile with that quantile (top/bottom
/// coding). Quantiles must satisfy `0 ≤ lower_q < upper_q ≤ 1`.
pub fn top_bottom_code(data: &Dataset, col: usize, lower_q: f64, upper_q: f64) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&lower_q) || !(0.0..=1.0).contains(&upper_q) || lower_q >= upper_q {
        return Err(Error::InvalidParameter(
            "need 0 <= lower_q < upper_q <= 1".into(),
        ));
    }
    if !data.schema().attribute(col).kind.is_numeric() {
        return Err(Error::NotNumeric(data.schema().attribute(col).name.clone()));
    }
    let xs = data.numeric_column(col);
    if xs.is_empty() {
        return Ok(data.clone());
    }
    let lo = quantile(&xs, lower_q).expect("non-empty column");
    let hi = quantile(&xs, upper_q).expect("non-empty column");
    let mut out = data.clone();
    for i in 0..data.num_rows() {
        if let Some(x) = data.value(i, col).as_f64() {
            let clamped = x.clamp(lo, hi);
            if clamped != x {
                out.set_value(i, col, Value::Float(clamped))?;
            }
        }
    }
    Ok(out)
}

/// Rounds a numeric column to the nearest multiple of `base` (> 0).
pub fn round_to_base(data: &Dataset, col: usize, base: f64) -> Result<Dataset> {
    if base <= 0.0 {
        return Err(Error::InvalidParameter(
            "rounding base must be positive".into(),
        ));
    }
    if !data.schema().attribute(col).kind.is_numeric() {
        return Err(Error::NotNumeric(data.schema().attribute(col).name.clone()));
    }
    let mut out = data.clone();
    for i in 0..data.num_rows() {
        if let Some(x) = data.value(i, col).as_f64() {
            out.set_value(i, col, Value::Float((x / base).round() * base))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::synth::{patients, PatientConfig};

    #[test]
    fn top_bottom_coding_clamps_tails() {
        let d = patients(&PatientConfig {
            n: 1000,
            ..Default::default()
        });
        let coded = top_bottom_code(&d, 0, 0.05, 0.95).unwrap();
        let xs = coded.numeric_column(0);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let orig = d.numeric_column(0);
        let olo = orig.iter().cloned().fold(f64::INFINITY, f64::min);
        let ohi = orig.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            lo > olo && hi < ohi,
            "tails must shrink: [{lo},{hi}] vs [{olo},{ohi}]"
        );
        // Interior values are untouched.
        let changed = orig.iter().zip(&xs).filter(|(a, b)| a != b).count();
        assert!(
            changed > 0 && changed < d.num_rows() / 5,
            "changed {changed}"
        );
    }

    #[test]
    fn rounding_quantises() {
        let d = patients(&PatientConfig {
            n: 100,
            ..Default::default()
        });
        let rounded = round_to_base(&d, 2, 10.0).unwrap();
        for x in rounded.numeric_column(2) {
            assert!((x / 10.0 - (x / 10.0).round()).abs() < 1e-9, "{x}");
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let d = patients(&PatientConfig {
            n: 10,
            ..Default::default()
        });
        assert!(top_bottom_code(&d, 0, 0.9, 0.1).is_err());
        assert!(top_bottom_code(&d, 3, 0.1, 0.9).is_err());
        assert!(round_to_base(&d, 0, 0.0).is_err());
        assert!(round_to_base(&d, 3, 5.0).is_err());
    }

    #[test]
    fn empty_dataset_passthrough() {
        let d = Dataset::new(tdf_microdata::patients::patient_schema());
        assert!(top_bottom_code(&d, 0, 0.1, 0.9).unwrap().is_empty());
        assert!(round_to_base(&d, 0, 5.0).unwrap().is_empty());
    }
}
