//! Tabular data protection: frequency tables with cell suppression.
//!
//! Statistical offices publish *frequency tables* (cross-tabulations with
//! margins), not only microdata; cells with very few contributors disclose
//! respondents just like isolated records do. The classic remedy ([17],
//! [26]) is **primary suppression** of all small cells followed by
//! **complementary suppression** of additional cells, so that no primary
//! cell can be recovered from the published margins by linear algebra.
//!
//! The auditor reuses the exact rational solver of `tdf-mathkit`: a
//! suppression pattern is safe exactly when no suppressed cell's unit
//! vector lies in the row space of the published linear constraints
//! (row sums, column sums, and every published cell).

// Index loops below walk several parallel arrays; iterators would obscure them.
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeSet;
use tdf_mathkit::linalg::QMatrix;
use tdf_mathkit::Rational;
use tdf_microdata::{Dataset, Error, Result, Value};

/// A two-way frequency table with margins.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyTable {
    /// Row category labels.
    pub row_labels: Vec<Value>,
    /// Column category labels.
    pub col_labels: Vec<Value>,
    /// Counts, row-major.
    pub counts: Vec<Vec<usize>>,
}

impl FrequencyTable {
    /// Cross-tabulates two categorical/boolean columns of `data`.
    pub fn from_dataset(data: &Dataset, row_col: usize, col_col: usize) -> Result<Self> {
        for c in [row_col, col_col] {
            if data.schema().attribute(c).kind.is_numeric() {
                return Err(Error::NotNumeric(format!(
                    "frequency tables need categorical attributes, `{}` is numeric",
                    data.schema().attribute(c).name
                )));
            }
        }
        let mut rows = BTreeSet::new();
        let mut cols = BTreeSet::new();
        for i in 0..data.num_rows() {
            rows.insert(data.value(i, row_col).clone());
            cols.insert(data.value(i, col_col).clone());
        }
        let row_labels: Vec<Value> = rows.into_iter().collect();
        let col_labels: Vec<Value> = cols.into_iter().collect();
        let mut counts = vec![vec![0usize; col_labels.len()]; row_labels.len()];
        for i in 0..data.num_rows() {
            let r = row_labels
                .iter()
                .position(|v| v.group_eq(&data.value(i, row_col)))
                .expect("label collected");
            let c = col_labels
                .iter()
                .position(|v| v.group_eq(&data.value(i, col_col)))
                .expect("label collected");
            counts[r][c] += 1;
        }
        Ok(Self {
            row_labels,
            col_labels,
            counts,
        })
    }

    /// Row margins (sums).
    pub fn row_margins(&self) -> Vec<usize> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column margins.
    pub fn col_margins(&self) -> Vec<usize> {
        (0..self.col_labels.len())
            .map(|c| self.counts.iter().map(|r| r[c]).sum())
            .collect()
    }

    /// Grand total.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }
}

/// A published table: margins in the clear, some interior cells suppressed.
#[derive(Debug, Clone)]
pub struct SuppressedTable {
    /// The source table shape (labels and margins are published).
    pub table: FrequencyTable,
    /// `true` at suppressed (unpublished) cells.
    pub suppressed: Vec<Vec<bool>>,
    /// How many cells were suppressed beyond the primaries.
    pub complementary: usize,
}

impl SuppressedTable {
    /// True when a recipient of the published cells + margins can recover
    /// *no* suppressed cell exactly (audited with exact linear algebra).
    pub fn is_safe(&self) -> bool {
        let nr = self.table.row_labels.len();
        let nc = self.table.col_labels.len();
        let idx = |r: usize, c: usize| r * nc + c;
        let mut system = QMatrix::new(nr * nc);
        // Published cells are known exactly.
        for r in 0..nr {
            for c in 0..nc {
                if !self.suppressed[r][c] {
                    let mut row = vec![Rational::zero(); nr * nc];
                    row[idx(r, c)] = Rational::one();
                    system.absorb_row_space(&row);
                }
            }
        }
        // Margins are published: one constraint per row and column.
        for r in 0..nr {
            let mut row = vec![Rational::zero(); nr * nc];
            for c in 0..nc {
                row[idx(r, c)] = Rational::one();
            }
            system.absorb_row_space(&row);
        }
        for c in 0..nc {
            let mut row = vec![Rational::zero(); nr * nc];
            for r in 0..nr {
                row[idx(r, c)] = Rational::one();
            }
            system.absorb_row_space(&row);
        }
        // Safe iff no suppressed cell is determined.
        for r in 0..nr {
            for c in 0..nc {
                if self.suppressed[r][c] && system.determined(idx(r, c)).is_some() {
                    return false;
                }
            }
        }
        true
    }
}

/// Suppresses every interior cell with `0 < count < threshold` (primary),
/// then greedily adds complementary suppressions until the pattern is safe
/// against margin-based recovery.
pub fn suppress_small_cells(table: &FrequencyTable, threshold: usize) -> SuppressedTable {
    let nr = table.row_labels.len();
    let nc = table.col_labels.len();
    let mut suppressed = vec![vec![false; nc]; nr];
    for r in 0..nr {
        for c in 0..nc {
            let v = table.counts[r][c];
            if v > 0 && v < threshold {
                suppressed[r][c] = true;
            }
        }
    }
    let mut result = SuppressedTable {
        table: table.clone(),
        suppressed,
        complementary: 0,
    };
    // Greedy repair: while unsafe, suppress the smallest positive published
    // cell sharing a row or column with some suppressed cell.
    while !result.is_safe() {
        let mut best: Option<(usize, usize, usize)> = None;
        for r in 0..nr {
            for c in 0..nc {
                if result.suppressed[r][c] {
                    continue;
                }
                let shares_line = (0..nc).any(|c2| result.suppressed[r][c2])
                    || (0..nr).any(|r2| result.suppressed[r2][c]);
                if !shares_line {
                    continue;
                }
                let v = result.table.counts[r][c];
                if best.is_none_or(|(_, _, bv)| v < bv) {
                    best = Some((r, c, v));
                }
            }
        }
        match best {
            Some((r, c, _)) => {
                result.suppressed[r][c] = true;
                result.complementary += 1;
            }
            None => break, // nothing left to suppress on the shared lines
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::synth::census;

    fn toy_table() -> FrequencyTable {
        FrequencyTable {
            row_labels: vec!["a".into(), "b".into(), "c".into()],
            col_labels: vec!["x".into(), "y".into(), "z".into()],
            counts: vec![vec![1, 8, 9], vec![7, 6, 5], vec![9, 4, 12]],
        }
    }

    #[test]
    fn cross_tabulation_counts_and_margins() {
        let d = census(200, 3);
        let edu = d.schema().index_of("education").unwrap();
        let dis = d.schema().index_of("disease").unwrap();
        let t = FrequencyTable::from_dataset(&d, edu, dis).unwrap();
        assert_eq!(t.total(), 200);
        assert_eq!(t.row_margins().iter().sum::<usize>(), 200);
        assert_eq!(t.col_margins().iter().sum::<usize>(), 200);
    }

    #[test]
    fn numeric_attributes_are_rejected() {
        let d = census(20, 4);
        assert!(FrequencyTable::from_dataset(&d, 0, 4).is_err());
    }

    #[test]
    fn single_suppressed_cell_is_recoverable_from_margins() {
        // The canonical failure: one suppressed cell in a published table
        // is always recoverable by subtraction.
        let t = toy_table();
        let mut s = SuppressedTable {
            table: t,
            suppressed: vec![vec![true, false, false], vec![false; 3], vec![false; 3]],
            complementary: 0,
        };
        assert!(!s.is_safe());
        // Adding a second suppression in the same row is still unsafe
        // (column margins pin both down? no — two cells in one row with
        // two different columns need one more), so a rectangle is needed.
        s.suppressed[1][0] = true;
        s.suppressed[0][1] = true;
        s.suppressed[1][1] = true;
        assert!(s.is_safe(), "a 2×2 suppression rectangle is unrecoverable");
    }

    #[test]
    fn suppression_produces_a_safe_pattern() {
        let t = toy_table();
        let s = suppress_small_cells(&t, 5);
        // Primaries: the 1 and the 4.
        assert!(s.suppressed[0][0]);
        assert!(s.suppressed[2][1]);
        assert!(s.is_safe());
        assert!(
            s.complementary > 0,
            "complementary suppression was required"
        );
    }

    #[test]
    fn no_small_cells_means_nothing_suppressed() {
        let t = FrequencyTable {
            row_labels: vec!["a".into(), "b".into()],
            col_labels: vec!["x".into(), "y".into()],
            counts: vec![vec![10, 20], vec![30, 40]],
        };
        let s = suppress_small_cells(&t, 5);
        assert!(s.suppressed.iter().flatten().all(|&b| !b));
        assert_eq!(s.complementary, 0);
        assert!(s.is_safe());
    }

    #[test]
    fn zero_cells_are_not_primaries() {
        // Empty cells disclose nothing; suppressing them wastes utility.
        let t = FrequencyTable {
            row_labels: vec!["a".into(), "b".into()],
            col_labels: vec!["x".into(), "y".into()],
            counts: vec![vec![0, 20], vec![30, 40]],
        };
        let s = suppress_small_cells(&t, 5);
        assert!(!s.suppressed[0][0]);
    }

    #[test]
    fn census_table_end_to_end() {
        let d = census(150, 9);
        let edu = d.schema().index_of("education").unwrap();
        let dis = d.schema().index_of("disease").unwrap();
        let t = FrequencyTable::from_dataset(&d, edu, dis).unwrap();
        let s = suppress_small_cells(&t, 3);
        assert!(s.is_safe());
    }
}
