//! Additive noise masking.
//!
//! Uncorrelated noise adds independent Gaussian noise with per-column
//! standard deviation `alpha · sd(column)` — the masking of
//! Agrawal–Srikant [5]. Correlated noise draws the noise vector from a
//! Gaussian with covariance `alpha² · Σ`, where `Σ` is the data covariance
//! matrix, so that the masked data preserve the correlation structure
//! (at the cost of the vulnerabilities [11] exposes — see
//! `tdf-ppdm::sparsity`).

use rngkit::Rng;
use tdf_microdata::column::F64Cells;
use tdf_microdata::rng::standard_normal;
use tdf_microdata::stats;
use tdf_microdata::{Dataset, Error, Result};

/// Noise parameters.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Noise amplitude relative to each column's standard deviation.
    pub alpha: f64,
    /// Columns to perturb (must be numeric).
    pub cols: Vec<usize>,
}

impl NoiseConfig {
    /// Noise on the given columns with relative amplitude `alpha`.
    pub fn new(alpha: f64, cols: Vec<usize>) -> Self {
        Self { alpha, cols }
    }
}

/// Masks `data` with independent (uncorrelated) Gaussian noise.
pub fn add_noise<R: Rng + ?Sized>(
    data: &Dataset,
    config: &NoiseConfig,
    rng: &mut R,
) -> Result<Dataset> {
    validate(data, config)?;
    let sds: Vec<f64> = config
        .cols
        .iter()
        .map(|&c| stats::std_dev(&data.numeric_column(c)).unwrap_or(0.0))
        .collect();
    let cells = numeric_cells(data, &config.cols);
    // The RNG is consumed row-major (row, then column) exactly as the old
    // row-at-a-time loop did, so seeded runs are bit-identical; only the
    // reads and writes are columnar.
    let mut masked: Vec<Vec<(usize, f64)>> = vec![Vec::new(); config.cols.len()];
    for i in 0..data.num_rows() {
        for (j, col_cells) in cells.iter().enumerate() {
            if let Some(x) = col_cells.get(i) {
                let noisy = x + config.alpha * sds[j] * standard_normal(rng);
                masked[j].push((i, noisy));
            }
        }
    }
    let mut out = data.clone();
    write_floats(&mut out, &config.cols, &masked)?;
    Ok(out)
}

/// Per-column numeric cell readers (`validate` guarantees numeric kinds).
fn numeric_cells<'a>(data: &'a Dataset, cols: &[usize]) -> Vec<F64Cells<'a>> {
    cols.iter()
        .map(|&c| data.f64_cells(c).expect("numeric column"))
        .collect()
}

/// Writes each column's `(row, value)` list through the float storage.
fn write_floats(out: &mut Dataset, cols: &[usize], masked: &[Vec<(usize, f64)>]) -> Result<()> {
    for (&c, col_masked) in cols.iter().zip(masked) {
        let dst = out.float_col_mut(c)?;
        for &(i, v) in col_masked {
            dst.set(i, Some(v));
        }
    }
    Ok(())
}

/// Masks `data` with *variance-preserving* noise: each perturbed column is
/// rescaled around its mean by `1/√(1 + alpha²)` after noise addition, so
/// means and variances of the release match the original exactly in
/// expectation (the unbiased variant recommended by the SDC handbooks when
/// analysts will compute second moments from the release).
pub fn add_unbiased_noise<R: Rng + ?Sized>(
    data: &Dataset,
    config: &NoiseConfig,
    rng: &mut R,
) -> Result<Dataset> {
    validate(data, config)?;
    let scale = 1.0 / (1.0 + config.alpha * config.alpha).sqrt();
    let mut out = add_noise(data, config, rng)?;
    for &c in &config.cols {
        let mean = stats::mean(&data.numeric_column(c)).unwrap_or(0.0);
        let dst = out.float_col_mut(c)?;
        for i in 0..dst.values().len() {
            if !dst.is_missing(i) {
                let x = dst.values()[i];
                dst.set(i, Some(mean + (x - mean) * scale));
            }
        }
    }
    Ok(out)
}

/// Masks `data` with correlated Gaussian noise whose covariance is
/// `alpha² · Σ(data)`, preserving the covariance structure up to a known
/// scale factor `1 + alpha²`.
pub fn add_correlated_noise<R: Rng + ?Sized>(
    data: &Dataset,
    config: &NoiseConfig,
    rng: &mut R,
) -> Result<Dataset> {
    validate(data, config)?;
    if data.num_rows() < 2 {
        return Err(Error::EmptyDataset);
    }
    let sigma = stats::covariance_matrix(data, &config.cols)?;
    let chol = cholesky(&sigma).ok_or_else(|| {
        Error::InvalidParameter("covariance matrix is not positive definite".into())
    })?;
    let d = config.cols.len();
    let cells = numeric_cells(data, &config.cols);
    let mut masked: Vec<Vec<(usize, f64)>> = vec![Vec::new(); d];
    let mut z = vec![0.0f64; d];
    for i in 0..data.num_rows() {
        for slot in z.iter_mut() {
            *slot = standard_normal(rng);
        }
        // noise = alpha · L · z has covariance alpha²·Σ.
        for (j, col_cells) in cells.iter().enumerate() {
            if let Some(x) = col_cells.get(i) {
                let n: f64 = (0..=j).map(|t| chol[j][t] * z[t]).sum();
                masked[j].push((i, x + config.alpha * n));
            }
        }
    }
    let mut out = data.clone();
    write_floats(&mut out, &config.cols, &masked)?;
    Ok(out)
}

fn validate(data: &Dataset, config: &NoiseConfig) -> Result<()> {
    if config.alpha < 0.0 {
        return Err(Error::InvalidParameter("alpha must be non-negative".into()));
    }
    for &c in &config.cols {
        if !data.schema().attribute(c).kind.is_numeric() {
            return Err(Error::NotNumeric(data.schema().attribute(c).name.clone()));
        }
    }
    Ok(())
}

/// Cholesky factorisation of a symmetric positive-definite matrix;
/// returns the lower-triangular factor `L` with `L·Lᵀ = m`.
fn cholesky(m: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = m.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let s: f64 = (0..j).map(|t| l[i][t] * l[j][t]).sum();
            if i == j {
                let v = m[i][i] - s;
                if v <= 0.0 {
                    return None;
                }
                l[i][j] = v.sqrt();
            } else {
                l[i][j] = (m[i][j] - s) / l[j][j];
            }
        }
    }
    Some(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::rng::seeded;
    use tdf_microdata::synth::{patients, PatientConfig};

    fn data() -> Dataset {
        patients(&PatientConfig {
            n: 3000,
            ..Default::default()
        })
    }

    #[test]
    fn uncorrelated_noise_preserves_means_and_scales_variance() {
        let d = data();
        let cfg = NoiseConfig::new(0.5, vec![0, 1]);
        let masked = add_noise(&d, &cfg, &mut seeded(1)).unwrap();
        for c in [0usize, 1] {
            let m0 = stats::mean(&d.numeric_column(c)).unwrap();
            let m1 = stats::mean(&masked.numeric_column(c)).unwrap();
            assert!((m0 - m1).abs() / m0 < 0.01, "col {c} mean drift");
            let v0 = stats::variance(&d.numeric_column(c)).unwrap();
            let v1 = stats::variance(&masked.numeric_column(c)).unwrap();
            // Var(X + alpha·sd·Z) = (1 + alpha²)·Var(X) = 1.25·Var(X).
            assert!((v1 / v0 - 1.25).abs() < 0.08, "col {c}: ratio {}", v1 / v0);
        }
    }

    #[test]
    fn zero_alpha_is_identity() {
        let d = data();
        let cfg = NoiseConfig::new(0.0, vec![0, 1]);
        let masked = add_noise(&d, &cfg, &mut seeded(2)).unwrap();
        assert_eq!(masked, d);
    }

    #[test]
    fn correlated_noise_preserves_correlations() {
        let d = data();
        let cfg = NoiseConfig::new(1.0, vec![0, 1, 2]);
        let masked = add_correlated_noise(&d, &cfg, &mut seeded(3)).unwrap();
        let rho0 = stats::correlation(&d.numeric_column(0), &d.numeric_column(1)).unwrap();
        let rho1 =
            stats::correlation(&masked.numeric_column(0), &masked.numeric_column(1)).unwrap();
        assert!((rho0 - rho1).abs() < 0.05, "rho {rho0} vs {rho1}");
    }

    #[test]
    fn uncorrelated_noise_dilutes_correlations() {
        let d = data();
        let cfg = NoiseConfig::new(2.0, vec![0, 1]);
        let masked = add_noise(&d, &cfg, &mut seeded(4)).unwrap();
        let rho0 = stats::correlation(&d.numeric_column(0), &d.numeric_column(1)).unwrap();
        let rho1 =
            stats::correlation(&masked.numeric_column(0), &masked.numeric_column(1)).unwrap();
        // With alpha = 2 the correlation shrinks by 1/(1+alpha²) = 1/5.
        assert!(rho1.abs() < rho0.abs() * 0.5, "rho {rho0} vs {rho1}");
    }

    #[test]
    fn rejects_invalid_parameters() {
        let d = data();
        assert!(add_noise(&d, &NoiseConfig::new(-1.0, vec![0]), &mut seeded(5)).is_err());
        assert!(add_noise(&d, &NoiseConfig::new(0.1, vec![3]), &mut seeded(5)).is_err());
    }

    #[test]
    fn unbiased_noise_preserves_variance() {
        let d = data();
        let cfg = NoiseConfig::new(1.0, vec![0, 1]);
        let masked = add_unbiased_noise(&d, &cfg, &mut seeded(9)).unwrap();
        for c in [0usize, 1] {
            let v0 = stats::variance(&d.numeric_column(c)).unwrap();
            let v1 = stats::variance(&masked.numeric_column(c)).unwrap();
            assert!((v1 / v0 - 1.0).abs() < 0.05, "col {c}: ratio {}", v1 / v0);
            let m0 = stats::mean(&d.numeric_column(c)).unwrap();
            let m1 = stats::mean(&masked.numeric_column(c)).unwrap();
            assert!((m0 - m1).abs() / m0 < 0.01);
        }
        // Values still move substantially (privacy is not free).
        let changed = (0..d.num_rows())
            .filter(|&i| d.value(i, 0) != masked.value(i, 0))
            .count();
        assert!(changed > d.num_rows() * 9 / 10);
    }

    #[test]
    fn cholesky_round_trips() {
        let m = vec![
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ];
        let l = cholesky(&m).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let recon: f64 = (0..3).map(|t| l[i][t] * l[j][t]).sum();
                assert!((recon - m[i][j]).abs() < 1e-9);
            }
        }
        // Non-PD matrix is rejected.
        assert!(cholesky(&[vec![1.0, 2.0], vec![2.0, 1.0]]).is_none());
    }
}
