//! Additive noise masking.
//!
//! Uncorrelated noise adds independent Gaussian noise with per-column
//! standard deviation `alpha · sd(column)` — the masking of
//! Agrawal–Srikant [5]. Correlated noise draws the noise vector from a
//! Gaussian with covariance `alpha² · Σ`, where `Σ` is the data covariance
//! matrix, so that the masked data preserve the correlation structure
//! (at the cost of the vulnerabilities [11] exposes — see
//! `tdf-ppdm::sparsity`).

use rngkit::Rng;
use tdf_microdata::rng::standard_normal;
use tdf_microdata::stats;
use tdf_microdata::{Dataset, Error, Result, Value};

/// Noise parameters.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Noise amplitude relative to each column's standard deviation.
    pub alpha: f64,
    /// Columns to perturb (must be numeric).
    pub cols: Vec<usize>,
}

impl NoiseConfig {
    /// Noise on the given columns with relative amplitude `alpha`.
    pub fn new(alpha: f64, cols: Vec<usize>) -> Self {
        Self { alpha, cols }
    }
}

/// Masks `data` with independent (uncorrelated) Gaussian noise.
pub fn add_noise<R: Rng + ?Sized>(
    data: &Dataset,
    config: &NoiseConfig,
    rng: &mut R,
) -> Result<Dataset> {
    validate(data, config)?;
    let sds: Vec<f64> = config
        .cols
        .iter()
        .map(|&c| stats::std_dev(&data.numeric_column(c)).unwrap_or(0.0))
        .collect();
    let mut out = data.clone();
    for i in 0..data.num_rows() {
        for (j, &c) in config.cols.iter().enumerate() {
            if let Some(x) = data.value(i, c).as_f64() {
                let noisy = x + config.alpha * sds[j] * standard_normal(rng);
                out.set_value(i, c, Value::Float(noisy))?;
            }
        }
    }
    Ok(out)
}

/// Masks `data` with *variance-preserving* noise: each perturbed column is
/// rescaled around its mean by `1/√(1 + alpha²)` after noise addition, so
/// means and variances of the release match the original exactly in
/// expectation (the unbiased variant recommended by the SDC handbooks when
/// analysts will compute second moments from the release).
pub fn add_unbiased_noise<R: Rng + ?Sized>(
    data: &Dataset,
    config: &NoiseConfig,
    rng: &mut R,
) -> Result<Dataset> {
    validate(data, config)?;
    let scale = 1.0 / (1.0 + config.alpha * config.alpha).sqrt();
    let mut out = add_noise(data, config, rng)?;
    for &c in &config.cols {
        let mean = stats::mean(&data.numeric_column(c)).unwrap_or(0.0);
        for i in 0..out.num_rows() {
            if let Some(x) = out.value(i, c).as_f64() {
                out.set_value(i, c, Value::Float(mean + (x - mean) * scale))?;
            }
        }
    }
    Ok(out)
}

/// Masks `data` with correlated Gaussian noise whose covariance is
/// `alpha² · Σ(data)`, preserving the covariance structure up to a known
/// scale factor `1 + alpha²`.
pub fn add_correlated_noise<R: Rng + ?Sized>(
    data: &Dataset,
    config: &NoiseConfig,
    rng: &mut R,
) -> Result<Dataset> {
    validate(data, config)?;
    if data.num_rows() < 2 {
        return Err(Error::EmptyDataset);
    }
    let sigma = stats::covariance_matrix(data, &config.cols)?;
    let chol = cholesky(&sigma).ok_or_else(|| {
        Error::InvalidParameter("covariance matrix is not positive definite".into())
    })?;
    let d = config.cols.len();
    let mut out = data.clone();
    for i in 0..data.num_rows() {
        let z: Vec<f64> = (0..d).map(|_| standard_normal(rng)).collect();
        // noise = alpha · L · z has covariance alpha²·Σ.
        for (j, &c) in config.cols.iter().enumerate() {
            if let Some(x) = data.value(i, c).as_f64() {
                let n: f64 = (0..=j).map(|t| chol[j][t] * z[t]).sum();
                out.set_value(i, c, Value::Float(x + config.alpha * n))?;
            }
        }
    }
    Ok(out)
}

fn validate(data: &Dataset, config: &NoiseConfig) -> Result<()> {
    if config.alpha < 0.0 {
        return Err(Error::InvalidParameter("alpha must be non-negative".into()));
    }
    for &c in &config.cols {
        if !data.schema().attribute(c).kind.is_numeric() {
            return Err(Error::NotNumeric(data.schema().attribute(c).name.clone()));
        }
    }
    Ok(())
}

/// Cholesky factorisation of a symmetric positive-definite matrix;
/// returns the lower-triangular factor `L` with `L·Lᵀ = m`.
fn cholesky(m: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = m.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let s: f64 = (0..j).map(|t| l[i][t] * l[j][t]).sum();
            if i == j {
                let v = m[i][i] - s;
                if v <= 0.0 {
                    return None;
                }
                l[i][j] = v.sqrt();
            } else {
                l[i][j] = (m[i][j] - s) / l[j][j];
            }
        }
    }
    Some(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::rng::seeded;
    use tdf_microdata::synth::{patients, PatientConfig};

    fn data() -> Dataset {
        patients(&PatientConfig {
            n: 3000,
            ..Default::default()
        })
    }

    #[test]
    fn uncorrelated_noise_preserves_means_and_scales_variance() {
        let d = data();
        let cfg = NoiseConfig::new(0.5, vec![0, 1]);
        let masked = add_noise(&d, &cfg, &mut seeded(1)).unwrap();
        for c in [0usize, 1] {
            let m0 = stats::mean(&d.numeric_column(c)).unwrap();
            let m1 = stats::mean(&masked.numeric_column(c)).unwrap();
            assert!((m0 - m1).abs() / m0 < 0.01, "col {c} mean drift");
            let v0 = stats::variance(&d.numeric_column(c)).unwrap();
            let v1 = stats::variance(&masked.numeric_column(c)).unwrap();
            // Var(X + alpha·sd·Z) = (1 + alpha²)·Var(X) = 1.25·Var(X).
            assert!((v1 / v0 - 1.25).abs() < 0.08, "col {c}: ratio {}", v1 / v0);
        }
    }

    #[test]
    fn zero_alpha_is_identity() {
        let d = data();
        let cfg = NoiseConfig::new(0.0, vec![0, 1]);
        let masked = add_noise(&d, &cfg, &mut seeded(2)).unwrap();
        assert_eq!(masked, d);
    }

    #[test]
    fn correlated_noise_preserves_correlations() {
        let d = data();
        let cfg = NoiseConfig::new(1.0, vec![0, 1, 2]);
        let masked = add_correlated_noise(&d, &cfg, &mut seeded(3)).unwrap();
        let rho0 = stats::correlation(&d.numeric_column(0), &d.numeric_column(1)).unwrap();
        let rho1 =
            stats::correlation(&masked.numeric_column(0), &masked.numeric_column(1)).unwrap();
        assert!((rho0 - rho1).abs() < 0.05, "rho {rho0} vs {rho1}");
    }

    #[test]
    fn uncorrelated_noise_dilutes_correlations() {
        let d = data();
        let cfg = NoiseConfig::new(2.0, vec![0, 1]);
        let masked = add_noise(&d, &cfg, &mut seeded(4)).unwrap();
        let rho0 = stats::correlation(&d.numeric_column(0), &d.numeric_column(1)).unwrap();
        let rho1 =
            stats::correlation(&masked.numeric_column(0), &masked.numeric_column(1)).unwrap();
        // With alpha = 2 the correlation shrinks by 1/(1+alpha²) = 1/5.
        assert!(rho1.abs() < rho0.abs() * 0.5, "rho {rho0} vs {rho1}");
    }

    #[test]
    fn rejects_invalid_parameters() {
        let d = data();
        assert!(add_noise(&d, &NoiseConfig::new(-1.0, vec![0]), &mut seeded(5)).is_err());
        assert!(add_noise(&d, &NoiseConfig::new(0.1, vec![3]), &mut seeded(5)).is_err());
    }

    #[test]
    fn unbiased_noise_preserves_variance() {
        let d = data();
        let cfg = NoiseConfig::new(1.0, vec![0, 1]);
        let masked = add_unbiased_noise(&d, &cfg, &mut seeded(9)).unwrap();
        for c in [0usize, 1] {
            let v0 = stats::variance(&d.numeric_column(c)).unwrap();
            let v1 = stats::variance(&masked.numeric_column(c)).unwrap();
            assert!((v1 / v0 - 1.0).abs() < 0.05, "col {c}: ratio {}", v1 / v0);
            let m0 = stats::mean(&d.numeric_column(c)).unwrap();
            let m1 = stats::mean(&masked.numeric_column(c)).unwrap();
            assert!((m0 - m1).abs() / m0 < 0.01);
        }
        // Values still move substantially (privacy is not free).
        let changed = (0..d.num_rows())
            .filter(|&i| d.value(i, 0) != masked.value(i, 0))
            .count();
        assert!(changed > d.num_rows() * 9 / 10);
    }

    #[test]
    fn cholesky_round_trips() {
        let m = vec![
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ];
        let l = cholesky(&m).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let recon: f64 = (0..3).map(|t| l[i][t] * l[j][t]).sum();
                assert!((recon - m[i][j]).abs() < 1e-9);
            }
        }
        // Non-PD matrix is rejected.
        assert!(cholesky(&[vec![1.0, 2.0], vec![2.0, 1.0]]).is_none());
    }
}
