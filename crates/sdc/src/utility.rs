//! Information-loss (utility) metrics.
//!
//! §6 of the paper calls for investigating "the impact on data utility of
//! offering the three dimensions of privacy"; these metrics are what the
//! `fig_tradeoff` experiment plots against disclosure risk.

use tdf_microdata::stats;
use tdf_microdata::{Dataset, Error, Result};

/// IL1s information loss: the mean over perturbed numeric cells of
/// `|x − x'| / (√2 · sd(column))` — the standardized per-cell distortion
/// used throughout the SDC literature. 0 = identical release.
pub fn il1s(original: &Dataset, masked: &Dataset, cols: &[usize]) -> Result<f64> {
    if original.num_rows() != masked.num_rows() {
        return Err(Error::SchemaMismatch);
    }
    if original.is_empty() || cols.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let mut acc = 0.0;
    let mut count = 0usize;
    for &c in cols {
        let sd = stats::std_dev(&original.numeric_column(c)).unwrap_or(1.0);
        let denom = std::f64::consts::SQRT_2 * if sd > 0.0 { sd } else { 1.0 };
        for i in 0..original.num_rows() {
            match (original.value(i, c).as_f64(), masked.value(i, c).as_f64()) {
                (Some(x), Some(y)) => {
                    acc += (x - y).abs() / denom;
                    count += 1;
                }
                (Some(_), None) => {
                    // Suppressed cell: maximal unit loss.
                    acc += 1.0;
                    count += 1;
                }
                _ => {}
            }
        }
    }
    if count == 0 {
        return Err(Error::EmptyDataset);
    }
    Ok(acc / count as f64)
}

/// Aggregate utility comparison between an original dataset and a release.
#[derive(Debug, Clone)]
pub struct UtilityReport {
    /// IL1s over the compared columns.
    pub il1s: f64,
    /// Maximum relative drift of column means.
    pub max_mean_drift: f64,
    /// Maximum relative drift of column variances.
    pub max_variance_drift: f64,
    /// Maximum absolute difference of pairwise correlations.
    pub max_correlation_drift: f64,
}

/// Computes a [`UtilityReport`] over the numeric columns `cols`.
pub fn utility_report(
    original: &Dataset,
    masked: &Dataset,
    cols: &[usize],
) -> Result<UtilityReport> {
    let il = il1s(original, masked, cols)?;
    let mut max_mean = 0.0f64;
    let mut max_var = 0.0f64;
    for &c in cols {
        let xo = original.numeric_column(c);
        let xm = masked.numeric_column(c);
        let mo = stats::mean(&xo).ok_or(Error::EmptyDataset)?;
        let mm = stats::mean(&xm).unwrap_or(mo);
        let denom = if mo.abs() > 1e-12 { mo.abs() } else { 1.0 };
        max_mean = max_mean.max((mo - mm).abs() / denom);
        if let (Some(vo), Some(vm)) = (stats::variance(&xo), stats::variance(&xm)) {
            let denom = if vo.abs() > 1e-12 { vo } else { 1.0 };
            max_var = max_var.max((vo - vm).abs() / denom);
        }
    }
    let mut max_corr = 0.0f64;
    for (ai, &a) in cols.iter().enumerate() {
        for &b in cols.iter().skip(ai + 1) {
            let co = stats::correlation(&original.numeric_column(a), &original.numeric_column(b));
            let cm = stats::correlation(&masked.numeric_column(a), &masked.numeric_column(b));
            if let (Some(co), Some(cm)) = (co, cm) {
                max_corr = max_corr.max((co - cm).abs());
            }
        }
    }
    Ok(UtilityReport {
        il1s: il,
        max_mean_drift: max_mean,
        max_variance_drift: max_var,
        max_correlation_drift: max_corr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microaggregation::mdav_microaggregate;
    use crate::noise::{add_noise, NoiseConfig};
    use tdf_microdata::rng::seeded;
    use tdf_microdata::synth::{patients, PatientConfig};
    use tdf_microdata::Value;

    fn data() -> Dataset {
        patients(&PatientConfig {
            n: 500,
            ..Default::default()
        })
    }

    #[test]
    fn identity_release_has_zero_loss() {
        let d = data();
        let r = utility_report(&d, &d, &[0, 1, 2]).unwrap();
        assert_eq!(r.il1s, 0.0);
        assert_eq!(r.max_mean_drift, 0.0);
        assert_eq!(r.max_variance_drift, 0.0);
        assert_eq!(r.max_correlation_drift, 0.0);
    }

    #[test]
    fn il1s_grows_with_noise() {
        let d = data();
        let mut prev = -1.0;
        for alpha in [0.1, 0.5, 1.5] {
            let masked =
                add_noise(&d, &NoiseConfig::new(alpha, vec![0, 1]), &mut seeded(7)).unwrap();
            let il = il1s(&d, &masked, &[0, 1]).unwrap();
            assert!(il > prev, "alpha {alpha}: {il} vs {prev}");
            prev = il;
        }
    }

    #[test]
    fn il1s_grows_with_k_for_microaggregation() {
        let d = data();
        let il3 = il1s(
            &d,
            &mdav_microaggregate(&d, &[0, 1], 3).unwrap().data,
            &[0, 1],
        )
        .unwrap();
        let il25 = il1s(
            &d,
            &mdav_microaggregate(&d, &[0, 1], 25).unwrap().data,
            &[0, 1],
        )
        .unwrap();
        assert!(il3 < il25, "{il3} vs {il25}");
    }

    #[test]
    fn suppressed_cells_cost_unit_loss() {
        let d = data();
        let mut masked = d.clone();
        masked.set_value(0, 0, Value::Missing).unwrap();
        let il_full = il1s(&d, &masked, &[0]).unwrap();
        assert!(il_full > 0.0 && il_full <= 1.0 / d.num_rows() as f64 + 1e-12);
    }

    #[test]
    fn microaggregation_preserves_means_in_report() {
        let d = data();
        let masked = mdav_microaggregate(&d, &[0, 1], 5).unwrap().data;
        let r = utility_report(&d, &masked, &[0, 1]).unwrap();
        assert!(r.max_mean_drift < 1e-9, "means exact: {}", r.max_mean_drift);
        assert!(r.il1s > 0.0);
    }

    #[test]
    fn errors_on_mismatched_or_empty_inputs() {
        let d = data();
        let empty = Dataset::new(d.schema().clone());
        assert!(il1s(&d, &empty, &[0]).is_err());
        assert!(il1s(&empty, &empty, &[0]).is_err());
        assert!(il1s(&d, &d, &[]).is_err());
    }
}
