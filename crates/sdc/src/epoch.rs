//! Incremental, epoch-stamped anonymization over sealed segments.
//!
//! A static masker protects one batch release. A service that ingests
//! while it serves republishes repeatedly — and recomputing MDAV or
//! Mondrian over the whole table on every seal is O(dataset) work for an
//! O(delta) change. [`EpochPublisher`] exploits the segment structure of
//! [`SegmentedDataset`]: sealed segments are immutable, so their masked
//! images are cached by segment id and only segments sealed *since the
//! last publication* (the dirty delta) are re-clustered. Each call to
//! [`EpochPublisher::publish`] produces an [`EpochRelease`] — the
//! concatenated masked segments, stamped with a monotonically increasing
//! epoch.
//!
//! Per-segment masking is a deliberate trade: group formation never
//! crosses a segment boundary, so the k-anonymity guarantee (every group
//! holds ≥ k records) still holds *within every segment* — and therefore
//! in the concatenation — while the masked cells diverge from what a
//! batch run over the concatenation would produce. The measured
//! divergence bound is asserted in `tests/prop_segments.rs` and the
//! republication-risk side (how trackable respondents are *across*
//! epochs) is measured by [`crate::risk::cross_epoch_linkage_rate`].
//!
//! Observability: `epoch.published`, `epoch.segments_reclustered`,
//! `epoch.segments_reused` counters.

use crate::microaggregation::mdav_microaggregate;
use crate::pram::pram;
use std::collections::BTreeMap;
use tdf_anonymity::mondrian::mondrian_anonymize;
use tdf_microdata::rng::seeded;
use tdf_microdata::{Dataset, Result, SegmentedDataset};

/// The masking kernel an [`EpochPublisher`] applies to each segment.
#[derive(Debug, Clone)]
pub enum EpochMasker {
    /// MDAV microaggregation with group size `k` over `cols`.
    Mdav { cols: Vec<usize>, k: usize },
    /// Mondrian k-anonymity over the numeric quasi-identifiers.
    Mondrian { k: usize },
    /// PRAM on categorical column `col`. Each segment's flips are drawn
    /// from a stream seeded by `(seed, segment id)`, so republication
    /// re-randomizes nothing: a cached segment's masked image is stable.
    Pram { col: usize, flip: f64, seed: u64 },
}

/// One epoch-stamped release over the sealed prefix of a segmented
/// dataset (the mutable tail is never published).
#[derive(Debug, Clone)]
pub struct EpochRelease {
    /// Monotonically increasing publication counter (1 = first release).
    pub epoch: u64,
    /// Masked segments concatenated in row order.
    pub data: Dataset,
    /// Ids of the sealed segments the release covers, in row order.
    pub segment_ids: Vec<u64>,
    /// Segments masked fresh this epoch (the dirty delta).
    pub reclustered: usize,
    /// Segments served from the cache.
    pub reused: usize,
}

/// Publishes epoch-stamped releases, re-clustering only dirty segments.
#[derive(Debug)]
pub struct EpochPublisher {
    masker: EpochMasker,
    cache: BTreeMap<u64, Dataset>,
    epoch: u64,
}

impl EpochPublisher {
    /// A publisher with an empty cache at epoch 0 (nothing published).
    pub fn new(masker: EpochMasker) -> Self {
        Self {
            masker,
            cache: BTreeMap::new(),
            epoch: 0,
        }
    }

    /// Number of releases published so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Masks one sealed segment.
    fn mask(&self, id: u64, segment: &Dataset) -> Result<Dataset> {
        match &self.masker {
            EpochMasker::Mdav { cols, k } => Ok(mdav_microaggregate(segment, cols, *k)?.data),
            EpochMasker::Mondrian { k } => Ok(mondrian_anonymize(segment, *k).data),
            EpochMasker::Pram { col, flip, seed } => {
                let mut rng = seeded(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                pram(segment, *col, *flip, &mut rng)
            }
        }
    }

    /// Drops the cached masked image for segment `id`, forcing the next
    /// [`publish`](Self::publish) to re-cluster that segment from the
    /// original data. Returns whether an image was cached. This is the
    /// retraction hook: a policy change (new `k`, revised hierarchy) that
    /// affects one segment re-masks exactly that segment instead of
    /// invalidating the whole release history.
    pub fn invalidate(&mut self, id: u64) -> bool {
        self.cache.remove(&id).is_some()
    }

    /// Publishes the sealed prefix of `data` as a new epoch.
    ///
    /// Only segments whose id is not yet cached are masked (O(delta));
    /// every previously published segment's image is reused verbatim, so
    /// republication never perturbs already-released records.
    pub fn publish(&mut self, data: &SegmentedDataset) -> Result<EpochRelease> {
        let ids = data.segment_ids();
        let mut reclustered = 0usize;
        let mut reused = 0usize;
        for (idx, &id) in ids.iter().enumerate() {
            if self.cache.contains_key(&id) {
                reused += 1;
                continue;
            }
            let segment = data.pin(idx)?;
            let masked = self.mask(id, &segment)?;
            self.cache.insert(id, masked);
            reclustered += 1;
        }
        self.epoch += 1;
        obs::count("epoch.published", 1);
        obs::count("epoch.segments_reclustered", reclustered as u64);
        obs::count("epoch.segments_reused", reused as u64);
        let mut out = Dataset::new(data.schema().clone());
        for id in &ids {
            out = out.union(&self.cache[id])?;
        }
        Ok(EpochRelease {
            epoch: self.epoch,
            data: out,
            segment_ids: ids,
            reclustered,
            reused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::risk::record_linkage_rate;
    use tdf_microdata::synth::{patients, PatientConfig};
    use tdf_microdata::SegmentedDataset;

    fn segmented(n: usize, seg_rows: usize) -> (Dataset, SegmentedDataset) {
        let d = patients(&PatientConfig {
            n,
            ..Default::default()
        });
        let seg = SegmentedDataset::from_dataset(&d, seg_rows);
        (d, seg)
    }

    #[test]
    fn first_publish_masks_everything_republish_reuses_everything() {
        let (_, mut seg) = segmented(120, 40);
        let mut publisher = EpochPublisher::new(EpochMasker::Mdav {
            cols: vec![0, 1],
            k: 3,
        });
        let r1 = publisher.publish(&seg).unwrap();
        assert_eq!((r1.epoch, r1.reclustered, r1.reused), (1, 3, 0));
        assert_eq!(r1.data.num_rows(), 120);

        // Nothing dirtied: the release is reconstructed from cache alone.
        let r2 = publisher.publish(&seg).unwrap();
        assert_eq!((r2.epoch, r2.reclustered, r2.reused), (2, 0, 3));
        assert_eq!(r2.data, r1.data, "republication perturbs nothing");

        // One appended-and-sealed batch dirties exactly one segment.
        let extra = patients(&PatientConfig {
            n: 40,
            seed: 77,
            ..Default::default()
        });
        for i in 0..extra.num_rows() {
            seg.push_row(extra.row(i)).unwrap();
        }
        seg.seal().unwrap();
        let r3 = publisher.publish(&seg).unwrap();
        assert_eq!((r3.epoch, r3.reclustered, r3.reused), (3, 1, 3));
        assert_eq!(r3.data.num_rows(), 160);
        // The already-published prefix is byte-for-byte the previous release.
        let prefix: Vec<usize> = (0..120).collect();
        assert_eq!(r3.data.take(&prefix), r2.data);
    }

    #[test]
    fn incremental_release_is_k_anonymous_on_the_qi() {
        let (original, seg) = segmented(150, 50);
        let k = 3;
        let mut publisher = EpochPublisher::new(EpochMasker::Mdav {
            cols: vec![0, 1],
            k,
        });
        let release = publisher.publish(&seg).unwrap();
        // Per-segment groups of >= k survive concatenation, so the
        // intruder's linkage rate keeps the 1/k bound.
        let rate = record_linkage_rate(&original, &release.data, &[0, 1]).unwrap();
        assert!(rate <= 1.0 / k as f64 + 1e-9, "rate {rate}");
        for members in release.data.group_indices_by(&[0, 1]).values() {
            assert!(members.len() >= k, "group of {} < k", members.len());
        }
    }

    #[test]
    fn invalidation_reclusters_exactly_that_segment() {
        let (_, seg) = segmented(120, 40);
        let mut publisher = EpochPublisher::new(EpochMasker::Mdav {
            cols: vec![0, 1],
            k: 3,
        });
        let r1 = publisher.publish(&seg).unwrap();
        let last = *seg.segment_ids().last().unwrap();
        assert!(publisher.invalidate(last));
        assert!(!publisher.invalidate(last), "already dropped");
        let r2 = publisher.publish(&seg).unwrap();
        assert_eq!((r2.reclustered, r2.reused), (1, 2));
        // Re-masking a sealed segment is deterministic: the retracted
        // image is rebuilt bit-identically, so the release is unchanged.
        assert_eq!(r2.data, r1.data);
    }

    #[test]
    fn pram_epochs_are_seed_stable_per_segment() {
        use tdf_microdata::synth::census;
        let d = census(120, 7);
        let seg = SegmentedDataset::from_dataset(&d, 40);
        let zip = d.schema().index_of("zip").unwrap();
        let masker = EpochMasker::Pram {
            col: zip,
            flip: 0.5,
            seed: 99,
        };
        let r1 = EpochPublisher::new(masker.clone()).publish(&seg).unwrap();
        let r2 = EpochPublisher::new(masker).publish(&seg).unwrap();
        assert_eq!(r1.data, r2.data, "per-segment PRAM streams are stable");
    }

    #[test]
    fn mondrian_masker_publishes_and_reuses() {
        let (_, seg) = segmented(100, 50);
        let mut publisher = EpochPublisher::new(EpochMasker::Mondrian { k: 4 });
        let r1 = publisher.publish(&seg).unwrap();
        let r2 = publisher.publish(&seg).unwrap();
        assert_eq!(r1.data, r2.data);
        assert_eq!(r2.reused, 2);
    }
}
