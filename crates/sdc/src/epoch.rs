//! Incremental, epoch-stamped anonymization over sealed segments.
//!
//! A static masker protects one batch release. A service that ingests
//! while it serves republishes repeatedly — and recomputing MDAV or
//! Mondrian over the whole table on every seal is O(dataset) work for an
//! O(delta) change. [`EpochPublisher`] exploits the segment structure of
//! [`SegmentedDataset`]: sealed segments are immutable, so their masked
//! images are cached by segment id and only segments sealed *since the
//! last publication* (the dirty delta) are re-clustered. Each call to
//! [`EpochPublisher::publish`] produces an [`EpochRelease`] — the
//! concatenated masked segments, stamped with a monotonically increasing
//! epoch.
//!
//! **Parallel publication.** The segments that need masking this epoch
//! are independent, so they fan out across the persistent `tdf-par`
//! executor ([`par::par_map_heavy`] — one coarse task per segment) and
//! merge back in segment order. Each segment's mask is a deterministic
//! function of `(masker, segment id, churn salt)`, so the release is
//! bit-identical at any `TDF_THREADS`.
//!
//! **Continuity re-churn.** Verbatim image reuse is the cheapest release
//! but also the most linkable one: a respondent's masked tuple repeats
//! across epochs, so [`crate::risk::cross_epoch_linkage_rate`] stays
//! high. A publisher with a re-churn fraction `f` (the `TDF_RECHURN`
//! environment variable, or [`EpochPublisher::with_rechurn`]) re-masks
//! `floor(f · cached)` of the cached segments each epoch with an
//! epoch-salted perturbation that preserves within-group equality (k-
//! anonymity is untouched) while breaking cross-epoch tuple identity.
//! The churn set is chosen by a fixed pseudorandom ranking of segment
//! ids, so the sets are *nested* in `f` — which makes the linkage rate
//! monotone non-increasing in `f` at fixed seed, the frontier pinned by
//! `tests/prop_epoch.rs`. `f = 0` (the default) reproduces verbatim
//! cached reuse exactly.
//!
//! Per-segment masking is a deliberate trade: group formation never
//! crosses a segment boundary, so the k-anonymity guarantee (every group
//! holds ≥ k records) still holds *within every segment* — and therefore
//! in the concatenation — while the masked cells diverge from what a
//! batch run over the concatenation would produce. Small sealed
//! fragments therefore publish *fragment-sized* groups; compacting them
//! ([`SegmentedDataset::compact`]) retires their ids, and the publisher
//! prunes the dead cache entries and masks the merged segment as one
//! batch-quality group pool. The measured divergence bound is asserted
//! in `tests/prop_segments.rs` and the republication-risk side (how
//! trackable respondents are *across* epochs) is measured by
//! [`crate::risk::cross_epoch_linkage_rate`].
//!
//! Observability: `epoch.published`, `epoch.segments_reclustered`,
//! `epoch.segments_reused`, `epoch.segments_rechurned`,
//! `epoch.invalidations` and `epoch.cache_pruned` counters.

use crate::microaggregation::mdav_microaggregate;
use crate::pram::pram;
use rngkit::splitmix64;
use std::collections::{BTreeMap, BTreeSet};
use tdf_anonymity::mondrian::mondrian_anonymize;
use tdf_microdata::rng::seeded;
use tdf_microdata::stats::std_dev;
use tdf_microdata::{AttributeKind, Dataset, Result, SegmentedDataset, Value};

/// The masking kernel an [`EpochPublisher`] applies to each segment.
#[derive(Debug, Clone)]
pub enum EpochMasker {
    /// MDAV microaggregation with group size `k` over `cols`.
    Mdav { cols: Vec<usize>, k: usize },
    /// Mondrian k-anonymity over the numeric quasi-identifiers.
    Mondrian { k: usize },
    /// PRAM on categorical column `col`. Each segment's flips are drawn
    /// from a stream seeded by `(seed, segment id)`, so republication
    /// re-randomizes nothing: a cached segment's masked image is stable.
    Pram { col: usize, flip: f64, seed: u64 },
}

/// One epoch-stamped release over the sealed prefix of a segmented
/// dataset (the mutable tail is never published).
#[derive(Debug, Clone)]
pub struct EpochRelease {
    /// Monotonically increasing publication counter (1 = first release).
    pub epoch: u64,
    /// Masked segments concatenated in row order.
    pub data: Dataset,
    /// Ids of the sealed segments the release covers, in row order.
    pub segment_ids: Vec<u64>,
    /// Segments masked fresh this epoch (the dirty delta).
    pub reclustered: usize,
    /// Cached segments re-masked by the continuity re-churn policy.
    pub rechurned: usize,
    /// Segments served from the cache verbatim.
    pub reused: usize,
}

/// Publishes epoch-stamped releases, re-clustering only dirty segments.
#[derive(Debug)]
pub struct EpochPublisher {
    masker: EpochMasker,
    cache: BTreeMap<u64, Dataset>,
    epoch: u64,
    rechurn: f64,
}

/// Stream constant separating churn-selection draws from every other
/// seeded stream in the workspace.
const CHURN_RANK_STREAM: u64 = 0xC0_4E5E_11EC_7104;
/// Stream constant for the per-group jitter offsets.
const CHURN_JITTER_STREAM: u64 = 0x9137_7E4B_0B5C_ED01;
/// Jitter amplitude as a fraction of the masked column's spread: large
/// enough to break cross-epoch tuple identity, small enough that masked
/// cells stay near their group centroid.
const CHURN_JITTER_FRACTION: f64 = 0.5;

/// One uniform draw in `[-1, 1)` from a hash of the given coordinates.
fn signed_unit(coords: [u64; 4]) -> f64 {
    let mut state = CHURN_JITTER_STREAM;
    for c in coords {
        state ^= c.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        state = splitmix64(&mut state);
    }
    let u = (state >> 11) as f64 / (1u64 << 53) as f64;
    2.0 * u - 1.0
}

impl EpochPublisher {
    /// A publisher with an empty cache at epoch 0 (nothing published).
    /// The re-churn fraction comes from `TDF_RECHURN` (a fraction in
    /// `[0, 1]`; unset or unparsable means `0` — verbatim cache reuse).
    pub fn new(masker: EpochMasker) -> Self {
        let rechurn = std::env::var("TDF_RECHURN")
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|f| f.is_finite())
            .unwrap_or(0.0)
            .clamp(0.0, 1.0);
        Self {
            masker,
            cache: BTreeMap::new(),
            epoch: 0,
            rechurn,
        }
    }

    /// Overrides the continuity re-churn fraction (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_rechurn(mut self, fraction: f64) -> Self {
        self.rechurn = if fraction.is_finite() {
            fraction.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// The active continuity re-churn fraction.
    pub fn rechurn(&self) -> f64 {
        self.rechurn
    }

    /// Number of releases published so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Masks one sealed segment (the deterministic base image).
    fn mask(&self, id: u64, segment: &Dataset) -> Result<Dataset> {
        match &self.masker {
            EpochMasker::Mdav { cols, k } => Ok(mdav_microaggregate(segment, cols, *k)?.data),
            EpochMasker::Mondrian { k } => Ok(mondrian_anonymize(segment, *k).data),
            EpochMasker::Pram { col, flip, seed } => {
                let mut rng = seeded(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                pram(segment, *col, *flip, &mut rng)
            }
        }
    }

    /// Masks one sealed segment with the epoch-salted continuity churn:
    /// deterministic in `(masker, id, salt)`, k-anonymity preserving.
    ///
    /// For the group-forming maskers the base image is perturbed with one
    /// jitter offset *per (group, column)* — every member of a masked
    /// group moves together, so within-group equality (and therefore
    /// every group size) is untouched while the group's published
    /// centroid differs from the previous epoch's. PRAM re-draws its
    /// per-segment flip stream under the salt.
    fn mask_churned(&self, id: u64, segment: &Dataset, salt: u64) -> Result<Dataset> {
        match &self.masker {
            EpochMasker::Mdav { cols, k } => {
                let mut img = mdav_microaggregate(segment, cols, *k)?.data;
                jitter_groups(&mut img, cols, id, salt)?;
                Ok(img)
            }
            EpochMasker::Mondrian { k } => {
                let mut img = mondrian_anonymize(segment, *k).data;
                let cols: Vec<usize> = img
                    .schema()
                    .quasi_identifier_indices()
                    .into_iter()
                    .filter(|&c| img.schema().attribute(c).kind.is_numeric())
                    .collect();
                jitter_groups(&mut img, &cols, id, salt)?;
                Ok(img)
            }
            EpochMasker::Pram { col, flip, seed } => {
                let mut rng = seeded(
                    seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93),
                );
                pram(segment, *col, *flip, &mut rng)
            }
        }
    }

    /// Drops the cached masked image for segment `id`, forcing the next
    /// [`publish`](Self::publish) to re-cluster that segment from the
    /// original data. Returns whether an image was cached. This is the
    /// retraction hook: a policy change (new `k`, revised hierarchy) that
    /// affects one segment re-masks exactly that segment instead of
    /// invalidating the whole release history. Counted as
    /// `epoch.invalidations`.
    pub fn invalidate(&mut self, id: u64) -> bool {
        let removed = self.cache.remove(&id).is_some();
        if removed {
            obs::count("epoch.invalidations", 1);
        }
        removed
    }

    /// The cached segment ids chosen for continuity re-churn this epoch:
    /// the first `floor(f · cached)` of the live cached ids under a fixed
    /// pseudorandom ranking. Because the ranking does not depend on `f`,
    /// the churn sets are nested — `f' ≥ f` churns a superset — which is
    /// what makes the linkage-rate frontier monotone.
    fn churn_set(&self, ids: &[u64]) -> BTreeSet<u64> {
        if self.rechurn <= 0.0 {
            return BTreeSet::new();
        }
        let mut cached: Vec<u64> = ids
            .iter()
            .copied()
            .filter(|id| self.cache.contains_key(id))
            .collect();
        cached.sort_by_key(|&id| {
            let mut state = CHURN_RANK_STREAM ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (splitmix64(&mut state), id)
        });
        let take = (self.rechurn * cached.len() as f64).floor() as usize;
        cached.into_iter().take(take.min(ids.len())).collect()
    }

    /// Publishes the sealed prefix of `data` as a new epoch.
    ///
    /// Segments whose id is not yet cached (the dirty delta — fresh
    /// seals, retractions, and compaction merges) are masked fresh, plus
    /// the continuity churn set; both fan out across the `tdf-par`
    /// executor and merge in segment order, so the release is
    /// bit-identical at any thread count. Cache entries whose segment id
    /// is no longer live (consumed by compaction) are pruned first.
    pub fn publish(&mut self, data: &SegmentedDataset) -> Result<EpochRelease> {
        let ids = data.segment_ids();
        let live: BTreeSet<u64> = ids.iter().copied().collect();
        let cached_before = self.cache.len();
        self.cache.retain(|id, _| live.contains(id));
        let pruned = cached_before - self.cache.len();
        if pruned > 0 {
            obs::count("epoch.cache_pruned", pruned as u64);
        }

        let salt = self.epoch + 1;
        let churn = self.churn_set(&ids);
        // (segment index, id, churn salt): everything that masks this
        // epoch. `None` salt = fresh base mask for a dirty segment.
        let work: Vec<(usize, u64, Option<u64>)> = ids
            .iter()
            .enumerate()
            .filter_map(|(idx, &id)| {
                if !self.cache.contains_key(&id) {
                    Some((idx, id, None))
                } else if churn.contains(&id) {
                    Some((idx, id, Some(salt)))
                } else {
                    None
                }
            })
            .collect();
        let masked: Vec<Result<Dataset>> = par::par_map_heavy(&work, |&(idx, id, churn_salt)| {
            let segment = data.pin(idx)?;
            match churn_salt {
                None => self.mask(id, &segment),
                Some(salt) => self.mask_churned(id, &segment, salt),
            }
        });
        let mut reclustered = 0usize;
        let mut rechurned = 0usize;
        for (result, &(_, id, churn_salt)) in masked.into_iter().zip(&work) {
            self.cache.insert(id, result?);
            if churn_salt.is_some() {
                rechurned += 1;
            } else {
                reclustered += 1;
            }
        }
        let reused = ids.len() - reclustered - rechurned;
        self.epoch += 1;
        obs::count("epoch.published", 1);
        obs::count("epoch.segments_reclustered", reclustered as u64);
        obs::count("epoch.segments_rechurned", rechurned as u64);
        obs::count("epoch.segments_reused", reused as u64);
        let mut out = Dataset::new(data.schema().clone());
        for id in &ids {
            out = out.union(&self.cache[id])?;
        }
        Ok(EpochRelease {
            epoch: self.epoch,
            data: out,
            segment_ids: ids,
            reclustered,
            rechurned,
            reused,
        })
    }
}

/// Adds one deterministic offset per `(group, column)` to a masked
/// image: every member of a group moves by the same amount, so group
/// sizes (k-anonymity) are preserved while the group's published values
/// change. Offsets scale with the masked column's spread; a column with
/// no spread (or no numeric cells) is left untouched.
fn jitter_groups(img: &mut Dataset, cols: &[usize], id: u64, salt: u64) -> Result<()> {
    if cols.is_empty() || img.num_rows() == 0 {
        return Ok(());
    }
    let spreads: Vec<f64> = cols
        .iter()
        .map(|&c| std_dev(&img.numeric_column(c)).unwrap_or(0.0))
        .collect();
    // BTreeMap iteration order is deterministic, so group index `g` is a
    // pure function of the masked image.
    let groups: Vec<Vec<usize>> = img.group_indices_by(cols).into_values().collect();
    for (g, members) in groups.iter().enumerate() {
        for (ci, &c) in cols.iter().enumerate() {
            let spread = spreads[ci];
            if spread <= 0.0 || !spread.is_finite() {
                continue;
            }
            let offset =
                signed_unit([id, salt, g as u64, c as u64]) * CHURN_JITTER_FRACTION * spread;
            let integer = matches!(img.schema().attribute(c).kind, AttributeKind::Integer);
            for &row in members {
                let Some(x) = img.f64_cells(c).and_then(|cells| cells.get(row)) else {
                    continue; // missing cell: stays missing
                };
                let v = if integer {
                    Value::Int((x + offset).round() as i64)
                } else {
                    Value::Float(x + offset)
                };
                img.set_value(row, c, v)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::risk::record_linkage_rate;
    use tdf_microdata::synth::{patients, PatientConfig};
    use tdf_microdata::SegmentedDataset;

    fn segmented(n: usize, seg_rows: usize) -> (Dataset, SegmentedDataset) {
        let d = patients(&PatientConfig {
            n,
            ..Default::default()
        });
        let seg = SegmentedDataset::from_dataset(&d, seg_rows);
        (d, seg)
    }

    #[test]
    fn first_publish_masks_everything_republish_reuses_everything() {
        let (_, mut seg) = segmented(120, 40);
        let mut publisher = EpochPublisher::new(EpochMasker::Mdav {
            cols: vec![0, 1],
            k: 3,
        });
        let r1 = publisher.publish(&seg).unwrap();
        assert_eq!((r1.epoch, r1.reclustered, r1.reused), (1, 3, 0));
        assert_eq!(r1.data.num_rows(), 120);

        // Nothing dirtied: the release is reconstructed from cache alone.
        let r2 = publisher.publish(&seg).unwrap();
        assert_eq!((r2.epoch, r2.reclustered, r2.reused), (2, 0, 3));
        assert_eq!(r2.data, r1.data, "republication perturbs nothing");

        // One appended-and-sealed batch dirties exactly one segment.
        let extra = patients(&PatientConfig {
            n: 40,
            seed: 77,
            ..Default::default()
        });
        for i in 0..extra.num_rows() {
            seg.push_row(extra.row(i)).unwrap();
        }
        seg.seal().unwrap();
        let r3 = publisher.publish(&seg).unwrap();
        assert_eq!((r3.epoch, r3.reclustered, r3.reused), (3, 1, 3));
        assert_eq!(r3.data.num_rows(), 160);
        // The already-published prefix is byte-for-byte the previous release.
        let prefix: Vec<usize> = (0..120).collect();
        assert_eq!(r3.data.take(&prefix), r2.data);
    }

    #[test]
    fn incremental_release_is_k_anonymous_on_the_qi() {
        let (original, seg) = segmented(150, 50);
        let k = 3;
        let mut publisher = EpochPublisher::new(EpochMasker::Mdav {
            cols: vec![0, 1],
            k,
        });
        let release = publisher.publish(&seg).unwrap();
        // Per-segment groups of >= k survive concatenation, so the
        // intruder's linkage rate keeps the 1/k bound.
        let rate = record_linkage_rate(&original, &release.data, &[0, 1]).unwrap();
        assert!(rate <= 1.0 / k as f64 + 1e-9, "rate {rate}");
        for members in release.data.group_indices_by(&[0, 1]).values() {
            assert!(members.len() >= k, "group of {} < k", members.len());
        }
    }

    #[test]
    fn invalidation_reclusters_exactly_that_segment() {
        let (_, seg) = segmented(120, 40);
        let mut publisher = EpochPublisher::new(EpochMasker::Mdav {
            cols: vec![0, 1],
            k: 3,
        });
        let r1 = publisher.publish(&seg).unwrap();
        let last = *seg.segment_ids().last().unwrap();
        assert!(publisher.invalidate(last));
        assert!(!publisher.invalidate(last), "already dropped");
        let r2 = publisher.publish(&seg).unwrap();
        assert_eq!((r2.reclustered, r2.reused), (1, 2));
        // Re-masking a sealed segment is deterministic: the retracted
        // image is rebuilt bit-identically, so the release is unchanged.
        assert_eq!(r2.data, r1.data);
    }

    #[test]
    fn pram_epochs_are_seed_stable_per_segment() {
        use tdf_microdata::synth::census;
        let d = census(120, 7);
        let seg = SegmentedDataset::from_dataset(&d, 40);
        let zip = d.schema().index_of("zip").unwrap();
        let masker = EpochMasker::Pram {
            col: zip,
            flip: 0.5,
            seed: 99,
        };
        let r1 = EpochPublisher::new(masker.clone()).publish(&seg).unwrap();
        let r2 = EpochPublisher::new(masker).publish(&seg).unwrap();
        assert_eq!(r1.data, r2.data, "per-segment PRAM streams are stable");
    }

    #[test]
    fn mondrian_masker_publishes_and_reuses() {
        let (_, seg) = segmented(100, 50);
        let mut publisher = EpochPublisher::new(EpochMasker::Mondrian { k: 4 });
        let r1 = publisher.publish(&seg).unwrap();
        let r2 = publisher.publish(&seg).unwrap();
        assert_eq!(r1.data, r2.data);
        assert_eq!(r2.reused, 2);
    }

    #[test]
    fn compaction_retires_cached_images_and_remasks_as_one_batch() {
        let (_, mut seg) = segmented(120, 30);
        let mut publisher = EpochPublisher::new(EpochMasker::Mdav {
            cols: vec![0, 1],
            k: 3,
        });
        let r1 = publisher.publish(&seg).unwrap();
        assert_eq!(r1.reclustered, 4);
        let report = seg.compact(120).unwrap();
        assert_eq!(report.segments_after, 1);
        // All four old ids are dead: their images are pruned, the merged
        // segment is the only (dirty) one.
        let r2 = publisher.publish(&seg).unwrap();
        assert_eq!((r2.reclustered, r2.reused), (1, 0));
        assert_eq!(r2.data.num_rows(), 120);
        // And every masked group now forms over the full 120-row pool.
        for members in r2.data.group_indices_by(&[0, 1]).values() {
            assert!(members.len() >= 3);
        }
    }

    #[test]
    fn rechurn_preserves_group_sizes_and_is_deterministic() {
        let (_, seg) = segmented(120, 30);
        let masker = EpochMasker::Mdav {
            cols: vec![0, 1],
            k: 3,
        };
        let run = || {
            let mut p = EpochPublisher::new(masker.clone()).with_rechurn(1.0);
            let _ = p.publish(&seg).unwrap();
            p.publish(&seg).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.data, b.data, "churn is deterministic at fixed seed");
        assert_eq!((a.reclustered, a.rechurned, a.reused), (0, 4, 0));
        // Every churned group still satisfies k-anonymity.
        for members in a.data.group_indices_by(&[0, 1]).values() {
            assert!(members.len() >= 3, "group of {} < k", members.len());
        }
    }
}
