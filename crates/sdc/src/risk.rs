//! Disclosure-risk metrics.
//!
//! These quantify *respondent privacy* empirically, replacing the paper's
//! qualitative grades (§5): the central measure is distance-based record
//! linkage — the success rate of an intruder who knows the respondents'
//! quasi-identifier values and links them to the closest record of the
//! masked release.

use tdf_microdata::distance::Standardizer;
use tdf_microdata::{ColumnView, Dataset, Error, Result};

/// Expected fraction of respondents an intruder re-identifies by linking
/// each original record to the nearest masked record (standardized
/// Euclidean distance on `qi_cols`). Ties are broken uniformly at random,
/// so a k-anonymous group contributes `1/|group|` per member — which is
/// exactly the re-identification probability k-anonymity promises.
///
/// `original` and `masked` must be row-aligned (record `i` of both refers
/// to the same respondent).
pub fn record_linkage_rate(original: &Dataset, masked: &Dataset, qi_cols: &[usize]) -> Result<f64> {
    if original.num_rows() != masked.num_rows() {
        return Err(Error::SchemaMismatch);
    }
    if original.is_empty() {
        return Err(Error::EmptyDataset);
    }
    // Standardize with the *original* data's scale: that is the intruder's
    // external knowledge. Both point sets are flat row-major buffers built
    // straight from column storage; the inner scan below walks the masked
    // buffer contiguously.
    let std = Standardizer::fit(original, qi_cols);
    let masked_pts = std.transform_points(masked);
    let original_pts = std.transform_points(original);

    // Column-major copy of the masked points: each distance block below
    // becomes a handful of contiguous column sweeps (branch-free loops
    // the compiler vectorizes) instead of strided row reads.
    let mcols: Vec<Vec<f64>> = (0..masked_pts.dim())
        .map(|t| {
            masked_pts
                .flat()
                .iter()
                .skip(t)
                .step_by(masked_pts.dim())
                .copied()
                .collect()
        })
        .collect();

    // Each respondent's linkage outcome is independent of the others:
    // compute the per-row expected-hit contributions in parallel and sum
    // them in row order, so the total is identical at any thread count.
    let _span = obs::span("sdc.linkage");
    obs::count(
        "sdc.linkage.candidate_pairs",
        (original.num_rows() * masked_pts.len()) as u64,
    );
    let contributions = par::par_map_range(original.num_rows(), |i| {
        let target = original_pts.point(i);
        let mut best = f64::INFINITY;
        let mut ties: Vec<usize> = Vec::new();
        // Pruning is tallied per row; the caller sums and flushes once.
        let mut pruned = 0u64;
        if masked_pts.dim() == 0 {
            // Degenerate zero-column scan: every distance is 0.0, so every
            // record ties (`chunks_exact(0)` below would panic).
            ties.extend(0..masked_pts.len());
        } else {
            // Scan the masked set one block at a time: distances fill a
            // small stack buffer via per-column sweeps (the same
            // left-to-right per-element sum as `sq_euclidean`, so every
            // bit matches), and a block whose minimum exceeds
            // `best + 1e-12` is skipped outright — no element in it can
            // take the lead or tie, so the (best, ties) state after the
            // scan is bit-identical to the element-at-a-time loop.
            const BLOCK: usize = 32;
            let m = masked_pts.len();
            let mut tmp = [0.0f64; BLOCK];
            let mut base = 0usize;
            while base < m {
                let bl = BLOCK.min(m - base);
                let t0 = target[0];
                for (o, &x) in tmp.iter_mut().zip(&mcols[0][base..base + bl]) {
                    let d = x - t0;
                    *o = d * d;
                }
                for (col, &tj) in mcols[1..].iter().zip(&target[1..]) {
                    for (o, &x) in tmp.iter_mut().zip(&col[base..base + bl]) {
                        let d = x - tj;
                        *o += d * d;
                    }
                }
                // Block skip: when every distance in the block clears
                // `best + 1e-12`, no element can lead or tie, so the scan
                // state cannot change — skip the per-element tie loop. The
                // four independent accumulators break the serial compare
                // chain; `min` over non-NaN values is order-independent and
                // NaN cells are ignored, exactly as the tie loop ignores
                // them.
                let mut m = [f64::INFINITY; 4];
                let mut chunks = tmp[..bl].chunks_exact(4);
                for q in &mut chunks {
                    for (acc, &d) in m.iter_mut().zip(q) {
                        *acc = if d < *acc { d } else { *acc };
                    }
                }
                for (acc, &d) in m.iter_mut().zip(chunks.remainder()) {
                    *acc = if d < *acc { d } else { *acc };
                }
                let bmin = {
                    let (a, b) = (m[0].min(m[1]), m[2].min(m[3]));
                    a.min(b)
                };
                if bmin <= best + 1e-12 {
                    for (t, &d) in tmp[..bl].iter().enumerate() {
                        if d < best - 1e-12 {
                            best = d;
                            ties.clear();
                            ties.push(base + t);
                        } else if (d - best).abs() <= 1e-12 {
                            ties.push(base + t);
                        }
                    }
                } else {
                    pruned += bl as u64;
                }
                base += bl;
            }
        }
        let hit = if ties.contains(&i) {
            1.0 / ties.len() as f64
        } else {
            0.0
        };
        (hit, pruned)
    });
    obs::count(
        "sdc.linkage.pairs_pruned",
        contributions.iter().map(|&(_, p)| p).sum(),
    );
    let expected_hits: f64 = contributions.iter().map(|&(h, _)| h).sum();
    Ok(expected_hits / original.num_rows() as f64)
}

/// Mixed-type record linkage: like [`record_linkage_rate`] but using the
/// Gower-style distance of [`tdf_microdata::distance::mixed_distance`], so
/// categorical and boolean quasi-identifiers (census zip codes, education
/// levels) contribute 0/1 mismatch terms, and suppressed cells count as a
/// full mismatch. Both datasets must share the original's schema and row
/// alignment; for recoded releases, generalize the intruder's copy of the
/// original with the same hierarchy before calling.
pub fn record_linkage_rate_mixed(
    original: &Dataset,
    masked: &Dataset,
    qi_cols: &[usize],
) -> Result<f64> {
    if original.num_rows() != masked.num_rows() {
        return Err(Error::SchemaMismatch);
    }
    if original.is_empty() {
        return Err(Error::EmptyDataset);
    }
    // Per-column comparison kernels, in `qi_cols` order so the distance
    // accumulates term-for-term like `mixed_distance` over materialized
    // rows: standardized columns for numeric attributes, joint dictionary
    // codes for categorical / boolean ones (a cross-table equality test is
    // then one integer compare — no `Value` clones anywhere in the n² scan).
    let kernels: Vec<MixedKernel> = qi_cols
        .iter()
        .map(|&c| mixed_kernel(original, masked, c))
        .collect();
    let n = original.num_rows();

    // Same parallel shape as `record_linkage_rate`: independent rows,
    // order-preserving sum.
    let _span = obs::span("sdc.linkage.mixed");
    obs::count("sdc.linkage.candidate_pairs", (n * n) as u64);
    let contributions = par::par_map_range(n, |i| {
        let mut best = f64::INFINITY;
        let mut ties: Vec<usize> = Vec::new();
        for j in 0..n {
            let mut acc = 0.0;
            for k in &kernels {
                match k {
                    MixedKernel::Numeric {
                        a,
                        a_missing,
                        b,
                        b_missing,
                    } => {
                        if a_missing[i] || b_missing[j] {
                            acc += 1.0;
                        } else {
                            let diff = a[i] - b[j];
                            acc += diff * diff;
                        }
                    }
                    MixedKernel::Coded { a, b } => match (a[i], b[j]) {
                        (-1, -1) => {}
                        (x, y) if x == y => {}
                        _ => acc += 1.0,
                    },
                }
            }
            let d = acc.sqrt();
            if d < best - 1e-12 {
                best = d;
                ties.clear();
                ties.push(j);
            } else if (d - best).abs() <= 1e-12 {
                ties.push(j);
            }
        }
        if ties.contains(&i) {
            1.0 / ties.len() as f64
        } else {
            0.0
        }
    });
    let expected_hits: f64 = contributions.iter().sum();
    Ok(expected_hits / original.num_rows() as f64)
}

/// One column's contribution to the mixed Gower distance, precomputed for
/// both tables.
enum MixedKernel {
    /// Standardized numeric column: squared difference when both present,
    /// full mismatch (1.0) otherwise.
    Numeric {
        a: Vec<f64>,
        a_missing: Vec<bool>,
        b: Vec<f64>,
        b_missing: Vec<bool>,
    },
    /// Categorical / boolean column under a joint code space (`-1` =
    /// missing): 0/1 mismatch, missing-vs-missing matches.
    Coded { a: Vec<i64>, b: Vec<i64> },
}

fn mixed_kernel(original: &Dataset, masked: &Dataset, c: usize) -> MixedKernel {
    if original.schema().attribute(c).kind.is_numeric() {
        // Column-wise `fit` is independent per column, so fitting on just
        // this column reproduces the joint fit's mean and deviation.
        let std = Standardizer::fit(original, &[c]);
        let a_pts = std.transform_points(original);
        let b_pts = std.transform_points(masked);
        let missing_of = |d: &Dataset| -> Vec<bool> {
            let cells = d.f64_cells(c).expect("numeric column");
            (0..d.num_rows()).map(|i| cells.get(i).is_none()).collect()
        };
        MixedKernel::Numeric {
            a_missing: missing_of(original),
            b_missing: missing_of(masked),
            a: a_pts.flat().to_vec(),
            b: b_pts.flat().to_vec(),
        }
    } else {
        let (a, b) = coded_kernel(original, masked, c);
        MixedKernel::Coded { a, b }
    }
}

/// Joint code space for a categorical / boolean column of two tables
/// (missing → -1; equal values get equal codes across both tables).
fn coded_kernel(original: &Dataset, masked: &Dataset, c: usize) -> (Vec<i64>, Vec<i64>) {
    match (original.col(c), masked.col(c)) {
        (ColumnView::Cat(x), ColumnView::Cat(y)) => {
            // The original's dictionary is the base space; masked values
            // unknown to it get fresh codes past the end.
            let base = x.pool().len() as i64;
            let remap: Vec<i64> = y
                .pool()
                .iter()
                .enumerate()
                .map(|(p, v)| x.lookup(v).map_or(base + p as i64, |code| code as i64))
                .collect();
            let a = (0..x.len())
                .map(|i| x.code(i).map_or(-1, |code| code as i64))
                .collect();
            let b = (0..y.len())
                .map(|i| y.code(i).map_or(-1, |code| remap[code as usize]))
                .collect();
            (a, b)
        }
        (ColumnView::Bool(x), ColumnView::Bool(y)) => (
            (0..x.len())
                .map(|i| x.opt(i).map_or(-1, i64::from))
                .collect(),
            (0..y.len())
                .map(|i| y.opt(i).map_or(-1, i64::from))
                .collect(),
        ),
        (vx, vy) => {
            // Cold path for layout mismatches (e.g. differing schemas):
            // intern materialized values into one shared dictionary.
            let mut dict: std::collections::HashMap<tdf_microdata::Value, i64> =
                std::collections::HashMap::new();
            let mut codes_of = |view: &ColumnView<'_>| -> Vec<i64> {
                (0..view.len())
                    .map(|i| {
                        if view.is_missing(i) {
                            return -1;
                        }
                        let v = view.get(i);
                        let next = dict.len() as i64;
                        *dict.entry(v).or_insert(next)
                    })
                    .collect()
            };
            let a = codes_of(&vx);
            let b = codes_of(&vy);
            (a, b)
        }
    }
}

/// Cross-epoch continuity: the expected fraction of respondents an
/// attacker can *track across two consecutive publications* by linking
/// each record of the earlier release to its nearest record in the later
/// one (standardized Euclidean distance on `qi_cols`, scale fitted on
/// `original` — the attacker's external knowledge; ties split uniformly).
///
/// This is the dominant real-world risk of repeated publication
/// (Nussbaum & Segal, *Privacy Vulnerabilities of Dataset Anonymization
/// Techniques*): even when each epoch is k-anonymous in isolation, stable
/// masked values let an attacker follow a respondent from release to
/// release and accumulate background knowledge. A publisher that reuses
/// cached segment images (see `crate::epoch`) scores *high* continuity on
/// the shared prefix by construction — the metric makes that trade
/// explicit and measurable.
///
/// `epoch_a` covers the first `epoch_a.num_rows()` respondents of
/// `original`, `epoch_b` at least as many (releases grow by appends);
/// both are row-aligned with `original`.
pub fn cross_epoch_linkage_rate(
    original: &Dataset,
    epoch_a: &Dataset,
    epoch_b: &Dataset,
    qi_cols: &[usize],
) -> Result<f64> {
    let (na, nb) = (epoch_a.num_rows(), epoch_b.num_rows());
    if na > nb || nb > original.num_rows() {
        return Err(Error::SchemaMismatch);
    }
    if na == 0 {
        return Err(Error::EmptyDataset);
    }
    let std = Standardizer::fit(original, qi_cols);
    let a_pts = std.transform_points(epoch_a);
    let b_pts = std.transform_points(epoch_b);

    let _span = obs::span("sdc.linkage.cross_epoch");
    obs::count("sdc.linkage.candidate_pairs", (na * nb) as u64);
    let contributions = par::par_map_range(na, |i| {
        let target = a_pts.point(i);
        let mut best = f64::INFINITY;
        let mut ties: Vec<usize> = Vec::new();
        for j in 0..nb {
            let d: f64 = target
                .iter()
                .zip(b_pts.point(j))
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum();
            if d < best - 1e-12 {
                best = d;
                ties.clear();
                ties.push(j);
            } else if (d - best).abs() <= 1e-12 {
                ties.push(j);
            }
        }
        if ties.contains(&i) {
            1.0 / ties.len() as f64
        } else {
            0.0
        }
    });
    let expected_hits: f64 = contributions.iter().sum();
    Ok(expected_hits / na as f64)
}

/// Interval disclosure: the fraction of masked numeric cells (over `cols`)
/// lying within `fraction` of the original column's standard deviation of
/// their true value. High values mean the release still pins confidential
/// magnitudes down tightly.
pub fn interval_disclosure_rate(
    original: &Dataset,
    masked: &Dataset,
    cols: &[usize],
    fraction: f64,
) -> Result<f64> {
    if original.num_rows() != masked.num_rows() {
        return Err(Error::SchemaMismatch);
    }
    if original.is_empty() || cols.is_empty() {
        return Err(Error::EmptyDataset);
    }
    let mut within = 0usize;
    let mut total = 0usize;
    for &c in cols {
        let sd = tdf_microdata::stats::std_dev(&original.numeric_column(c)).unwrap_or(0.0);
        let tol = fraction * if sd > 0.0 { sd } else { 1.0 };
        for i in 0..original.num_rows() {
            if let (Some(x), Some(y)) = (original.value(i, c).as_f64(), masked.value(i, c).as_f64())
            {
                total += 1;
                if (x - y).abs() <= tol {
                    within += 1;
                }
            }
        }
    }
    if total == 0 {
        return Err(Error::EmptyDataset);
    }
    Ok(within as f64 / total as f64)
}

/// Fraction of records that are *sample-unique* on the quasi-identifiers —
/// the simplest uniqueness-based risk measure.
pub fn uniqueness_rate(data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let unique: usize = data
        .quasi_identifier_groups()
        .values()
        .filter(|g| g.len() == 1)
        .count();
    unique as f64 / data.num_rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microaggregation::mdav_microaggregate;
    use crate::noise::{add_noise, NoiseConfig};
    use tdf_microdata::patients;
    use tdf_microdata::rng::seeded;
    use tdf_microdata::synth::{patients as synth, PatientConfig};

    #[test]
    fn unmasked_release_links_perfectly() {
        let d = patients::dataset2();
        let rate = record_linkage_rate(&d, &d, &[0, 1]).unwrap();
        assert!((rate - 1.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn k_anonymous_release_links_at_one_over_k() {
        let d = patients::dataset2();
        let masked = mdav_microaggregate(&d, &[0, 1], 3).unwrap().data;
        let rate = record_linkage_rate(&d, &masked, &[0, 1]).unwrap();
        // Groups of size in [3, 5] ⇒ rate in [1/5, 1/3].
        assert!(rate <= 1.0 / 3.0 + 1e-9, "rate {rate}");
        assert!(rate >= 1.0 / 5.0 - 1e-9, "rate {rate}");
    }

    #[test]
    fn dataset1_spontaneous_anonymity_already_protects() {
        // The paper's §2: Dataset 1 is publishable for respondents as-is.
        let d = patients::dataset1();
        let rate = record_linkage_rate(&d, &d, &[0, 1]).unwrap();
        assert!(rate <= 1.0 / 3.0 + 1e-9, "rate {rate}");
    }

    #[test]
    fn noise_reduces_linkage_monotonically_in_alpha() {
        let d = synth(&PatientConfig {
            n: 400,
            ..Default::default()
        });
        let mut prev = 1.1;
        for alpha in [0.0, 0.2, 1.0, 4.0] {
            let masked =
                add_noise(&d, &NoiseConfig::new(alpha, vec![0, 1]), &mut seeded(42)).unwrap();
            let rate = record_linkage_rate(&d, &masked, &[0, 1]).unwrap();
            assert!(
                rate <= prev + 0.05,
                "alpha {alpha}: rate {rate} vs prev {prev}"
            );
            prev = rate;
        }
    }

    #[test]
    fn interval_disclosure_decreases_with_noise() {
        let d = synth(&PatientConfig {
            n: 300,
            ..Default::default()
        });
        let weak = add_noise(&d, &NoiseConfig::new(0.05, vec![2]), &mut seeded(1)).unwrap();
        let strong = add_noise(&d, &NoiseConfig::new(2.0, vec![2]), &mut seeded(1)).unwrap();
        let r_weak = interval_disclosure_rate(&d, &weak, &[2], 0.1).unwrap();
        let r_strong = interval_disclosure_rate(&d, &strong, &[2], 0.1).unwrap();
        assert!(r_weak > 0.8, "weak noise leaves values close: {r_weak}");
        assert!(r_strong < 0.3, "strong noise spreads values: {r_strong}");
    }

    #[test]
    fn mixed_linkage_on_census_categories() {
        use crate::pram::pram;
        use tdf_microdata::synth::census;
        let d = census(300, 5);
        let qi = d.schema().quasi_identifier_indices(); // age, zip, education
                                                        // Unmasked: near-perfect linkage (ties only where full QI repeats).
        let raw = record_linkage_rate_mixed(&d, &d, &qi).unwrap();
        assert!(raw > 0.9, "raw {raw}");
        // PRAM the zip code hard: linkage must drop.
        let zip_col = d.schema().index_of("zip").unwrap();
        let masked = pram(&d, zip_col, 0.8, &mut seeded(4)).unwrap();
        let after = record_linkage_rate_mixed(&d, &masked, &qi).unwrap();
        assert!(after < raw - 0.1, "raw {raw} vs masked {after}");
    }

    #[test]
    fn mixed_linkage_handles_suppressed_cells() {
        use crate::risk::record_linkage_rate_mixed;
        let d = patients::dataset2();
        let sup = tdf_anonymity::suppress_to_k_anonymity(&d, 3).data;
        let rate = record_linkage_rate_mixed(&d, &sup, &[0, 1]).unwrap();
        let raw = record_linkage_rate_mixed(&d, &d, &[0, 1]).unwrap();
        assert!(
            rate < raw,
            "suppression must reduce linkage: {rate} vs {raw}"
        );
    }

    #[test]
    fn uniqueness_rates_of_the_paper_datasets() {
        assert_eq!(uniqueness_rate(&patients::dataset1()), 0.0);
        assert_eq!(uniqueness_rate(&patients::dataset2()), 1.0);
    }

    #[test]
    fn cross_epoch_continuity_of_identical_releases_is_total() {
        // Reused segment images: the attacker tracks everyone (modulo ties).
        let d = synth(&PatientConfig {
            n: 200,
            ..Default::default()
        });
        let masked = mdav_microaggregate(&d, &[0, 1], 3).unwrap().data;
        let rate = cross_epoch_linkage_rate(&d, &masked, &masked, &[0, 1]).unwrap();
        // Every record of epoch A reappears bit-identically in epoch B: the
        // only uncertainty is its k-anonymous group, whose MDAV size is at
        // most 2k-1 — continuity is at least 1/(2k-1).
        assert!(rate >= 1.0 / 5.0 - 1e-9, "rate {rate}");
    }

    #[test]
    fn fresh_noise_per_epoch_breaks_continuity() {
        let d = synth(&PatientConfig {
            n: 300,
            ..Default::default()
        });
        let a = add_noise(&d, &NoiseConfig::new(1.0, vec![0, 1]), &mut seeded(1)).unwrap();
        let b = add_noise(&d, &NoiseConfig::new(1.0, vec![0, 1]), &mut seeded(2)).unwrap();
        let stable = cross_epoch_linkage_rate(&d, &a, &a, &[0, 1]).unwrap();
        let fresh = cross_epoch_linkage_rate(&d, &a, &b, &[0, 1]).unwrap();
        assert!(
            fresh < stable - 0.2,
            "re-randomized epochs must be harder to track: {fresh} vs {stable}"
        );
    }

    #[test]
    fn cross_epoch_shape_validation() {
        let d = patients::dataset2();
        // Epoch A larger than epoch B: releases only grow.
        assert!(cross_epoch_linkage_rate(&d, &d, &d.take(&[0, 1]), &[0, 1]).is_err());
        // Release larger than the respondent table.
        let big = d.union(&d).unwrap();
        assert!(cross_epoch_linkage_rate(&d, &d, &big, &[0, 1]).is_err());
    }

    #[test]
    fn row_misalignment_is_an_error() {
        let d = patients::dataset1();
        let shorter = d.filter(|r| r[3].as_bool() == Some(false));
        assert!(record_linkage_rate(&d, &shorter, &[0, 1]).is_err());
        assert!(interval_disclosure_rate(&d, &shorter, &[2], 0.1).is_err());
    }
}
