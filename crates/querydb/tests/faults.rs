//! Injected per-query deadlines (`querydb.deadline`).
//!
//! The fault plan is process-global, so these tests live in their own
//! binary: a plan installed here can never race the plan-free lib tests.
//! Within the binary a mutex serialises the tests.

use std::sync::Mutex;
use tdf_microdata::{patients, Error};
use tdf_querydb::engine::evaluate;
use tdf_querydb::parser::parse;
use tdf_querydb::{Answer, ControlPolicy, QueryLimits, StatDb};

static PLAN: Mutex<()> = Mutex::new(());

fn with_fault_plan<T>(text: &str, f: impl FnOnce() -> T) -> T {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    faultkit::set_plan(Some(faultkit::FaultPlan::parse(text).unwrap()));
    let out = f();
    faultkit::set_plan(None);
    out
}

#[test]
fn injected_deadline_refuses_the_bare_engine() {
    let d = patients::dataset1(); // 10 rows
    let q = parse("SELECT COUNT(*) FROM t").unwrap();
    let err = with_fault_plan("querydb.deadline=5", || evaluate(&d, &q)).unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted(_)), "got {err:?}");
    // A roomy injected deadline changes nothing.
    let ok = with_fault_plan("querydb.deadline=100", || evaluate(&d, &q)).unwrap();
    assert_eq!(ok.value, Some(10.0));
}

#[test]
fn statdb_degrades_an_exhausted_budget_to_an_explicit_logged_refusal() {
    let answer = with_fault_plan("querydb.deadline=5", || {
        let mut db = StatDb::new(patients::dataset1(), ControlPolicy::None);
        let a = db.query_str("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(db.query_log().len(), 1, "the refusal is logged");
        assert_eq!(db.refusals(), 1);
        a
    });
    assert!(answer.is_refused(), "got {answer:?}");
}

#[test]
fn explicit_limits_tighten_with_injected_ones() {
    // The ambient (injected) deadline is looser than the explicit one:
    // the explicit allowance still refuses.
    let answer = with_fault_plan("querydb.deadline=1000", || {
        let mut db = StatDb::with_limits(
            patients::dataset1(),
            ControlPolicy::None,
            QueryLimits::with_max_rows(5),
        );
        db.query_str("SELECT COUNT(*) FROM t").unwrap()
    });
    assert!(answer.is_refused());
}

#[test]
fn zero_rate_deadline_plan_is_bit_identical_to_no_plan() {
    let run = || {
        let mut db = StatDb::new(
            patients::dataset2(),
            ControlPolicy::SizeRestriction { min_size: 2 },
        );
        let a = db
            .query_str("SELECT AVG(blood_pressure) FROM t WHERE height < 180")
            .unwrap();
        let b = db
            .query_str("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105")
            .unwrap();
        (a, b)
    };
    let baseline = {
        let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        faultkit::set_plan(None);
        run()
    };
    let gated = with_fault_plan("querydb.deadline=5@0", run);
    assert_eq!(baseline, gated);
}

#[test]
fn fractional_rate_refuses_some_queries_and_answers_the_rest() {
    let (answers, refusals) = with_fault_plan("querydb.deadline=5@0.5", || {
        let mut db = StatDb::new(patients::dataset1(), ControlPolicy::None);
        for _ in 0..40 {
            db.query_str("SELECT COUNT(*) FROM t").unwrap();
        }
        let refused = db.refusals();
        (db.query_log().len() - refused, refused)
    });
    assert!(answers > 0, "some queries must get through");
    assert!(refusals > 0, "some queries must be refused");
    // Answered queries are exact: refusal is all-or-nothing, never a
    // partial scan.
    let ok = with_fault_plan("querydb.deadline=5@0", || {
        let mut db = StatDb::new(patients::dataset1(), ControlPolicy::None);
        db.query_str("SELECT COUNT(*) FROM t").unwrap()
    });
    assert_eq!(ok, Answer::Exact(10.0));
}
