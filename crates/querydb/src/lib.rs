//! # tdf-querydb
//!
//! An interactively queryable statistical database — the §3 battlefield of
//! the paper, where *respondent privacy* and *user privacy* collide.
//!
//! Users submit statistical queries (`SELECT AVG(blood_pressure) FROM t
//! WHERE height < 165 AND weight > 105`); the owner must prevent sequences
//! of queries from isolating a single respondent, which — as the paper
//! stresses — traditionally requires the owner to *see every query*:
//! exactly zero user privacy.
//!
//! * [`ast`] / [`parser`] — the mini-SQL the examples in §3 are written in;
//! * [`engine`] — evaluation over a `tdf-microdata` dataset;
//! * [`control`] — inference-control policies: none, query-set-size
//!   restriction, exact auditing (Chin–Ozsoyoglu [7], on the exact
//!   rational algebra of `tdf-mathkit`), output perturbation
//!   (Duncan–Mukherjee [14]), and interval answers (CVC-style [16]);
//! * [`statdb`] — the database front-end, with the owner's query log;
//! * [`tracker`] — the Schlörer tracker attack [22] that defeats naive
//!   size restriction;
//! * [`dp`] — a differentially-private answering policy with budget
//!   accounting, the field's post-2007 answer to this dilemma (included as
//!   the §6 "future research" extension).

pub mod ast;
pub mod control;
pub mod dp;
pub mod engine;
pub mod parser;
pub mod profiling;
pub mod statdb;
pub mod tracker;

pub use ast::{Aggregate, Predicate, Query};
pub use control::{Answer, ControlPolicy};
pub use engine::{evaluate, evaluate_segmented, Evaluation, QueryLimits};
pub use statdb::StatDb;
