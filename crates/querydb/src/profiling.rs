//! Query-log profiling: measuring what the owner's log reveals about its
//! users.
//!
//! §1 of the paper motivates user privacy with the August 2006 AOL
//! incident — 36 million logged queries re-identified users. This module
//! turns that anecdote into numbers: given a query log attributed to
//! pseudonymous users, how concentrated (and hence how identifying) is
//! each user's profile, and how many bits does the log leak about who
//! asked what?

use crate::ast::Query;
use std::collections::BTreeMap;

/// A user's profile: how often they issued each distinct query text.
#[derive(Debug, Clone, Default)]
pub struct UserProfile {
    counts: BTreeMap<String, usize>,
    total: usize,
}

impl UserProfile {
    /// Records one query.
    pub fn record(&mut self, query: &Query) {
        *self.counts.entry(query.to_string()).or_default() += 1;
        self.total += 1;
    }

    /// Number of queries issued.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct query texts.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Shannon entropy (bits) of the user's query distribution: *low*
    /// entropy = a concentrated, fingerprint-like profile.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .values()
            .map(|&c| {
                let p = c as f64 / self.total as f64;
                -p * p.log2()
            })
            .sum()
    }

    /// The user's most frequent query, if any.
    pub fn favourite(&self) -> Option<(&str, usize)> {
        self.counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(q, &c)| (q.as_str(), c))
    }
}

/// Builds per-user profiles from an attributed log.
pub fn build_profiles(log: &[(u32, Query)]) -> BTreeMap<u32, UserProfile> {
    let mut profiles: BTreeMap<u32, UserProfile> = BTreeMap::new();
    for (user, query) in log {
        profiles.entry(*user).or_default().record(query);
    }
    profiles
}

/// De-anonymization experiment: split each user's queries into two halves
/// (e.g. before/after a pseudonym rotation) and try to re-link the second
/// half to the first by profile similarity. Returns the fraction of users
/// correctly re-linked — the empirical AOL risk.
pub fn relink_rate(log: &[(u32, Query)]) -> f64 {
    // Halve each user's stream.
    let mut first: BTreeMap<u32, UserProfile> = BTreeMap::new();
    let mut second: BTreeMap<u32, UserProfile> = BTreeMap::new();
    let mut seen: BTreeMap<u32, usize> = BTreeMap::new();
    let per_user: BTreeMap<u32, usize> = {
        let mut m = BTreeMap::new();
        for (u, _) in log {
            *m.entry(*u).or_insert(0usize) += 1;
        }
        m
    };
    for (user, query) in log {
        let k = seen.entry(*user).or_insert(0);
        if *k < per_user[user] / 2 {
            first.entry(*user).or_default().record(query);
        } else {
            second.entry(*user).or_default().record(query);
        }
        *k += 1;
    }

    // Cosine similarity between count vectors.
    let similarity = |a: &UserProfile, b: &UserProfile| -> f64 {
        let mut dot = 0.0;
        for (q, &c) in &a.counts {
            if let Some(&d) = b.counts.get(q) {
                dot += c as f64 * d as f64;
            }
        }
        let na: f64 = a
            .counts
            .values()
            .map(|&c| (c as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let nb: f64 = b
            .counts
            .values()
            .map(|&c| (c as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    };

    let users: Vec<u32> = first.keys().copied().collect();
    if users.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for &u in &users {
        let target = &second[&u];
        let best = users
            .iter()
            .max_by(|&&a, &&b| {
                similarity(&first[&a], target).total_cmp(&similarity(&first[&b], target))
            })
            .copied()
            .expect("non-empty");
        if best == u {
            hits += 1;
        }
    }
    hits as f64 / users.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Aggregate, CmpOp, Predicate};

    fn q(attr: &str, threshold: f64) -> Query {
        Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::cmp(attr, CmpOp::Gt, threshold),
        }
    }

    /// Three users with distinctive interests.
    fn log() -> Vec<(u32, Query)> {
        let mut log = Vec::new();
        for round in 0..12 {
            log.push((0, q("height", 170.0))); // user 0: always the same
            log.push((1, q("weight", 60.0 + (round % 4) as f64)));
            log.push((2, q("blood_pressure", 120.0 + round as f64)));
        }
        log
    }

    #[test]
    fn profiles_count_and_concentrate() {
        let profiles = build_profiles(&log());
        assert_eq!(profiles.len(), 3);
        let p0 = &profiles[&0];
        assert_eq!(p0.total(), 12);
        assert_eq!(p0.distinct(), 1);
        assert_eq!(p0.entropy_bits(), 0.0, "a one-query user has zero entropy");
        assert!(p0.favourite().unwrap().0.contains("height"));
        // User 2 never repeats: maximal entropy for 12 queries.
        let p2 = &profiles[&2];
        assert!((p2.entropy_bits() - (12.0f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn distinctive_users_are_relinkable() {
        // The AOL effect: stable interests re-identify across pseudonyms.
        let rate = relink_rate(&log());
        // Users 0 and 1 repeat their queries across both halves and are
        // re-linked; user 2 never repeats (each half disjoint).
        assert!(rate >= 2.0 / 3.0 - 1e-9, "rate {rate}");
    }

    #[test]
    fn empty_log_is_harmless() {
        assert_eq!(relink_rate(&[]), 0.0);
        assert!(build_profiles(&[]).is_empty());
    }
}
