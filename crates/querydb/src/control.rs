//! Inference-control policies for the interactive statistical database.
//!
//! The owner's dilemma (§3 of the paper): answers must stay useful while no
//! sequence of them may pin down one respondent's confidential value.
//! Every policy here *sees the plaintext query* — the structural reason
//! interactive SDC provides no user privacy.

use crate::ast::{Aggregate, Query};
use crate::engine::Evaluation;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use tdf_mathkit::linalg::QMatrix;
use tdf_mathkit::Rational;
use tdf_microdata::rng::standard_normal;
use tdf_microdata::Dataset;

/// The database's reply to a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// The exact value.
    Exact(f64),
    /// A perturbed value (output noise).
    Perturbed(f64),
    /// An interval guaranteed to contain the true value.
    Interval(f64, f64),
    /// The query was refused.
    Refused(&'static str),
}

impl Answer {
    /// A best-guess point value, if the answer carries one.
    pub fn point(&self) -> Option<f64> {
        match self {
            Answer::Exact(v) | Answer::Perturbed(v) => Some(*v),
            Answer::Interval(lo, hi) => Some(0.5 * (lo + hi)),
            Answer::Refused(_) => None,
        }
    }

    /// True when the query was refused.
    pub fn is_refused(&self) -> bool {
        matches!(self, Answer::Refused(_))
    }
}

/// An inference-control policy (stateful: auditing accumulates knowledge).
#[derive(Debug)]
pub enum ControlPolicy {
    /// Answer everything exactly.
    None,
    /// Refuse query sets smaller than `min_size` or larger than
    /// `n − min_size` (the classic, tracker-vulnerable filter).
    SizeRestriction {
        /// Minimum (and complement-minimum) query-set size.
        min_size: usize,
    },
    /// Chin–Ozsoyoglu exact auditing [7] of one protected attribute:
    /// refuse any SUM/AVG whose answer would make some respondent's value
    /// of that attribute uniquely determined.
    Audit(Auditor),
    /// Duncan–Mukherjee output perturbation [14]: answer everything, plus
    /// Gaussian noise of standard deviation `sd` (deterministic per seed).
    Noise {
        /// Noise standard deviation.
        sd: f64,
        /// RNG for the noise stream.
        rng: StdRng,
    },
    /// CVC-style interval answers [16]: return `[v·(1−γ), v·(1+γ)]`
    /// (widened symmetrically for values near zero).
    Interval {
        /// Relative half-width of the interval.
        gamma: f64,
    },
    /// Deterministic rounding of every answer to a multiple of `base` —
    /// the third classic output-coarsening family (with noise and
    /// intervals) in the SDC handbooks [17, 26].
    Rounding {
        /// Rounding base (> 0).
        base: f64,
    },
    /// Dobkin–Jones–Lipton overlap restriction: a query is refused when
    /// its set is smaller than `min_size` or shares more than
    /// `max_overlap` records with any previously *answered* query — the
    /// classic structural defence against differencing sequences.
    OverlapRestriction {
        /// Minimum query-set size.
        min_size: usize,
        /// Maximum permitted overlap with any answered query set.
        max_overlap: usize,
        /// Query sets already answered.
        history: Vec<std::collections::BTreeSet<usize>>,
    },
}

impl ControlPolicy {
    /// Convenience constructor for the noise policy.
    pub fn noise(sd: f64, seed: u64) -> Self {
        ControlPolicy::Noise {
            sd,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies the policy to an already-evaluated query.
    pub fn apply(&mut self, data: &Dataset, query: &Query, eval: &Evaluation) -> Answer {
        match self {
            ControlPolicy::None => match eval.value {
                Some(v) => Answer::Exact(v),
                None => Answer::Refused("aggregate undefined on empty query set"),
            },
            ControlPolicy::SizeRestriction { min_size } => {
                let n = data.num_rows();
                let k = eval.query_set.len();
                if k < *min_size || k > n.saturating_sub(*min_size) {
                    Answer::Refused("query set size outside permitted band")
                } else {
                    match eval.value {
                        Some(v) => Answer::Exact(v),
                        None => Answer::Refused("aggregate undefined on empty query set"),
                    }
                }
            }
            ControlPolicy::Audit(auditor) => auditor.apply(data, query, eval),
            ControlPolicy::Noise { sd, rng } => match eval.value {
                Some(v) => Answer::Perturbed(v + *sd * standard_normal(rng)),
                None => Answer::Refused("aggregate undefined on empty query set"),
            },
            ControlPolicy::Interval { gamma } => match eval.value {
                Some(v) => {
                    let half = (v.abs() * *gamma).max(*gamma);
                    Answer::Interval(v - half, v + half)
                }
                None => Answer::Refused("aggregate undefined on empty query set"),
            },
            ControlPolicy::Rounding { base } => match eval.value {
                Some(v) => Answer::Perturbed((v / *base).round() * *base),
                None => Answer::Refused("aggregate undefined on empty query set"),
            },
            ControlPolicy::OverlapRestriction {
                min_size,
                max_overlap,
                history,
            } => {
                if eval.query_set.len() < *min_size {
                    return Answer::Refused("query set below minimum size");
                }
                let current: std::collections::BTreeSet<usize> =
                    eval.query_set.iter().copied().collect();
                let too_close = history
                    .iter()
                    .any(|prev| prev.intersection(&current).count() > *max_overlap);
                if too_close {
                    return Answer::Refused("query set overlaps an answered query too much");
                }
                match eval.value {
                    Some(v) => {
                        history.push(current);
                        Answer::Exact(v)
                    }
                    None => Answer::Refused("aggregate undefined on empty query set"),
                }
            }
        }
    }

    /// Convenience constructor for the overlap-restriction policy.
    pub fn overlap(min_size: usize, max_overlap: usize) -> Self {
        ControlPolicy::OverlapRestriction {
            min_size,
            max_overlap,
            history: Vec::new(),
        }
    }
}

/// Exact auditor for one protected numeric attribute.
///
/// Unknowns are the attribute values of the `n` respondents; every answered
/// SUM/AVG contributes one linear equation. A query is refused when
/// answering it would make any unknown determined. Values are quantized at
/// `1/scale` so the rational algebra is exact.
#[derive(Debug)]
pub struct Auditor {
    protected: String,
    scale: i64,
    system: QMatrix,
    refused: usize,
    answered: usize,
}

impl Auditor {
    /// Creates an auditor for attribute `protected` over `n` respondents.
    pub fn new(protected: impl Into<String>, n: usize) -> Self {
        Self {
            protected: protected.into(),
            scale: 1000,
            system: QMatrix::new(n),
            refused: 0,
            answered: 0,
        }
    }

    /// Queries refused so far.
    pub fn refused_count(&self) -> usize {
        self.refused
    }

    /// Queries answered (and absorbed) so far.
    pub fn answered_count(&self) -> usize {
        self.answered
    }

    fn to_rational(&self, v: f64) -> Rational {
        Rational::from_ratio((v * self.scale as f64).round() as i64, self.scale)
    }

    fn apply(&mut self, data: &Dataset, query: &Query, eval: &Evaluation) -> Answer {
        let touches_protected = query.aggregate.attribute() == Some(self.protected.as_str());
        match (&query.aggregate, touches_protected) {
            // COUNTs and aggregates of other attributes reveal nothing
            // about the protected attribute's values.
            (Aggregate::Count, _) | (_, false) => match eval.value {
                Some(v) => {
                    self.answered += 1;
                    Answer::Exact(v)
                }
                None => Answer::Refused("aggregate undefined on empty query set"),
            },
            // MIN/MAX of the protected attribute: auditing them exactly is
            // intractable; a safe auditor refuses.
            (Aggregate::Min(_) | Aggregate::Max(_), true) => {
                self.refused += 1;
                Answer::Refused("extrema of the protected attribute are not auditable")
            }
            (Aggregate::Sum(_) | Aggregate::Avg(_), true) => {
                let value = match eval.value {
                    Some(v) => v,
                    None => return Answer::Refused("aggregate undefined on empty query set"),
                };
                // The linear equation this answer would hand the user.
                let mut row = vec![Rational::zero(); data.num_rows()];
                for &i in &eval.query_set {
                    row[i] = Rational::one();
                }
                // Exact rational right-hand side, recomputed from data.
                let col = data
                    .schema()
                    .index_of(&self.protected)
                    .expect("protected attribute exists");
                let view = data.col(col);
                let rhs = eval
                    .query_set
                    .iter()
                    .map(|&i| self.to_rational(view.f64(i).unwrap_or(0.0)))
                    .fold(Rational::zero(), |a, b| a.add_ref(&b));

                // Would answering disclose any single respondent's value?
                // (Invariant: the current system determines nothing, since
                // dangerous queries are refused before absorption — so one
                // probe absorption suffices for all targets.)
                let dangerous = {
                    let mut probe = self.system.clone();
                    probe.absorb_row_space(&row);
                    !probe.all_determined().is_empty()
                };
                if dangerous {
                    self.refused += 1;
                    return Answer::Refused("answer would disclose an individual value");
                }
                self.system.absorb(&row, &rhs);
                self.answered += 1;
                Answer::Exact(value)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Predicate;
    use crate::engine::evaluate;
    use crate::parser::parse;
    use tdf_microdata::patients;

    fn run(policy: &mut ControlPolicy, data: &Dataset, src: &str) -> Answer {
        let q = parse(src).unwrap();
        let e = evaluate(data, &q).unwrap();
        policy.apply(data, &q, &e)
    }

    #[test]
    fn no_control_answers_exactly() {
        let d = patients::dataset2();
        let mut p = ControlPolicy::None;
        let a = run(
            &mut p,
            &d,
            "SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105",
        );
        assert_eq!(a, Answer::Exact(146.0));
    }

    #[test]
    fn size_restriction_blocks_small_and_large_sets() {
        let d = patients::dataset2();
        let mut p = ControlPolicy::SizeRestriction { min_size: 2 };
        let small = run(
            &mut p,
            &d,
            "SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105",
        );
        assert!(small.is_refused());
        let large = run(&mut p, &d, "SELECT COUNT(*) FROM t WHERE height > 0");
        assert!(large.is_refused(), "complement too small must also refuse");
        let ok = run(
            &mut p,
            &d,
            "SELECT AVG(blood_pressure) FROM t WHERE aids = N",
        );
        assert!(matches!(ok, Answer::Exact(_)));
    }

    #[test]
    fn auditor_answers_first_sum_then_blocks_the_isolating_one() {
        let d = patients::dataset1();
        let mut p = ControlPolicy::Audit(Auditor::new("blood_pressure", d.num_rows()));
        // Sum over the (170, 70) group: 4 records — safe.
        let a1 = run(
            &mut p,
            &d,
            "SELECT SUM(blood_pressure) FROM t WHERE height = 170",
        );
        assert!(matches!(a1, Answer::Exact(_)));
        // Sum over the same group minus one member would determine that
        // member: refuse.
        let a2 = run(
            &mut p,
            &d,
            "SELECT SUM(blood_pressure) FROM t WHERE height = 170 AND aids = N",
        );
        assert!(a2.is_refused(), "got {a2:?}");
    }

    #[test]
    fn auditor_blocks_singleton_sums_immediately() {
        let d = patients::dataset2();
        let mut p = ControlPolicy::Audit(Auditor::new("blood_pressure", d.num_rows()));
        let a = run(
            &mut p,
            &d,
            "SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105",
        );
        assert!(a.is_refused());
    }

    #[test]
    fn auditor_allows_counts_and_other_attributes() {
        let d = patients::dataset2();
        let mut p = ControlPolicy::Audit(Auditor::new("blood_pressure", d.num_rows()));
        let c = run(
            &mut p,
            &d,
            "SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105",
        );
        assert_eq!(c, Answer::Exact(1.0));
        let w = run(&mut p, &d, "SELECT SUM(weight) FROM t WHERE height < 165");
        assert!(matches!(w, Answer::Exact(_)));
    }

    #[test]
    fn auditor_refuses_minmax_of_protected() {
        let d = patients::dataset1();
        let mut p = ControlPolicy::Audit(Auditor::new("blood_pressure", d.num_rows()));
        let a = run(&mut p, &d, "SELECT MAX(blood_pressure) FROM t");
        assert!(a.is_refused());
        let ok = run(&mut p, &d, "SELECT MAX(weight) FROM t");
        assert!(matches!(ok, Answer::Exact(_)));
    }

    #[test]
    fn noise_perturbs_but_tracks_truth() {
        let d = patients::dataset1();
        let mut p = ControlPolicy::noise(2.0, 99);
        let a = run(&mut p, &d, "SELECT AVG(blood_pressure) FROM t");
        match a {
            Answer::Perturbed(v) => assert!((v - 134.4).abs() < 10.0, "{v}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overlap_restriction_blocks_differencing() {
        let d = patients::dataset1();
        let mut p = ControlPolicy::overlap(3, 2);
        // First query over the (170, 70) class: 4 records, answered.
        let a1 = run(
            &mut p,
            &d,
            "SELECT SUM(blood_pressure) FROM t WHERE height = 170",
        );
        assert!(matches!(a1, Answer::Exact(_)));
        // Subset differing by one record: overlap 3 > 2 → refused.
        let a2 = run(
            &mut p,
            &d,
            "SELECT SUM(blood_pressure) FROM t WHERE height = 170 AND aids = N",
        );
        assert!(a2.is_refused(), "{a2:?}");
        // A disjoint class is fine.
        let a3 = run(
            &mut p,
            &d,
            "SELECT SUM(blood_pressure) FROM t WHERE height = 175",
        );
        assert!(matches!(a3, Answer::Exact(_)));
    }

    #[test]
    fn overlap_restriction_stops_the_tracker() {
        use crate::ast::CmpOp;
        use crate::statdb::StatDb;
        use crate::tracker::disclose_individual;
        let d = patients::dataset2();
        let mut db = StatDb::new(d, ControlPolicy::overlap(2, 3));
        let target = Predicate::cmp("height", CmpOp::Lt, 165.0).and(Predicate::cmp(
            "weight",
            CmpOp::Gt,
            105.0,
        ));
        let tracker = Predicate::cmp("aids", CmpOp::Eq, false);
        let got = disclose_individual(&mut db, "blood_pressure", &target, &tracker).unwrap();
        assert_eq!(
            got, None,
            "tracker probes overlap heavily and must be cut off"
        );
        assert!(db.refusals() > 0);
    }

    #[test]
    fn rounding_coarsens_answers() {
        let d = patients::dataset1();
        let mut p = ControlPolicy::Rounding { base: 10.0 };
        let a = run(&mut p, &d, "SELECT SUM(weight) FROM t");
        assert_eq!(a, Answer::Perturbed(810.0)); // 805 rounds up
        let b = run(&mut p, &d, "SELECT AVG(blood_pressure) FROM t");
        match b {
            Answer::Perturbed(v) => {
                assert_eq!(v % 10.0, 0.0);
                assert!((v - 134.4).abs() < 10.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interval_contains_truth() {
        let d = patients::dataset1();
        let mut p = ControlPolicy::Interval { gamma: 0.05 };
        let a = run(&mut p, &d, "SELECT SUM(weight) FROM t");
        match a {
            Answer::Interval(lo, hi) => {
                let truth = 805.0; // 3*80 + 3*95 + 4*70
                assert!(lo < truth && truth < hi, "[{lo}, {hi}]");
            }
            other => panic!("{other:?}"),
        }
    }
}
