//! Query evaluation over a microdata dataset.

use crate::ast::{Aggregate, CmpOp, Predicate, Query};
use tdf_microdata::{ColumnView, Dataset, Error, Result, Schema, SegmentedDataset, Value};

/// The evaluation of one query: its query set and exact aggregate value.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Row indices matching the predicate (the *query set* of the
    /// inference-control literature).
    pub query_set: Vec<usize>,
    /// The exact aggregate over the query set. `None` when the aggregate
    /// is undefined (e.g. AVG over an empty set).
    pub value: Option<f64>,
}

/// Per-query resource limits. The deadline is expressed as a row-scan
/// allowance, not a wall-clock duration, so refusal decisions are
/// deterministic and reproducible; a query whose scan would exceed the
/// allowance is refused *before* any row is read — never answered from a
/// partial scan, which would be a silent wrong answer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryLimits {
    /// Maximum rows one evaluation may scan; `None` is unlimited.
    pub max_rows: Option<u64>,
}

impl QueryLimits {
    /// No limits.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A row-scan allowance of `max_rows`.
    pub fn with_max_rows(max_rows: u64) -> Self {
        QueryLimits {
            max_rows: Some(max_rows),
        }
    }

    /// The ambient limits of this evaluation: the fault plan's injected
    /// per-query deadline (`querydb.deadline`, a row allowance), when one
    /// applies to this draw. With no plan installed this is free.
    pub fn ambient() -> Self {
        QueryLimits {
            max_rows: faultkit::param("querydb.deadline"),
        }
    }

    /// The stricter combination of two limit sets.
    pub fn tightened(self, other: QueryLimits) -> Self {
        QueryLimits {
            max_rows: match (self.max_rows, other.max_rows) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }
}

/// Evaluates `query` against `data`, exactly and without any protection,
/// under the ambient [`QueryLimits`] (the injected deadline, if any).
pub fn evaluate(data: &Dataset, query: &Query) -> Result<Evaluation> {
    evaluate_with_limits(data, query, &QueryLimits::ambient())
}

/// [`evaluate`] under explicit resource limits. Exceeding the row
/// allowance returns [`Error::ResourceExhausted`] with nothing scanned.
pub fn evaluate_with_limits(
    data: &Dataset,
    query: &Query,
    limits: &QueryLimits,
) -> Result<Evaluation> {
    // Resolve the aggregate attribute early so bad queries fail loudly.
    let agg_col = match query.aggregate.attribute() {
        Some(name) => {
            let idx = data.schema().index_of(name)?;
            if !data.schema().attribute(idx).kind.is_numeric() {
                return Err(Error::NotNumeric(name.to_owned()));
            }
            Some(idx)
        }
        None => None,
    };

    // Attribute names are resolved to column views once; the per-row scan
    // below then reads cells straight out of the columnar storage.
    let _span = obs::span("querydb.evaluate");
    obs::count("querydb.queries", 1);
    if let Some(max_rows) = limits.max_rows {
        let needed = data.num_rows() as u64;
        if needed > max_rows {
            obs::count("querydb.deadline_refusals", 1);
            return Err(Error::ResourceExhausted(format!(
                "query needs {needed} row scans but its deadline allows {max_rows}"
            )));
        }
    }
    obs::count("querydb.rows_scanned", data.num_rows() as u64);
    let compiled = CompiledPredicate::compile(&query.predicate, data)?;
    let mut query_set = Vec::new();
    for i in 0..data.num_rows() {
        if compiled.matches(i) {
            query_set.push(i);
        }
    }

    let values = || -> Vec<f64> {
        let col = agg_col.expect("aggregate reads an attribute");
        let cells = data.f64_cells(col).expect("numeric column");
        query_set.iter().filter_map(|&i| cells.get(i)).collect()
    };

    let value = match &query.aggregate {
        Aggregate::Count => Some(query_set.len() as f64),
        Aggregate::Sum(_) => Some(values().iter().sum()),
        Aggregate::Avg(_) => {
            let v = values();
            if v.is_empty() {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            }
        }
        Aggregate::Min(_) => values().into_iter().min_by(f64::total_cmp),
        Aggregate::Max(_) => values().into_iter().max_by(f64::total_cmp),
    };
    Ok(Evaluation { query_set, value })
}

/// [`evaluate`] over a [`SegmentedDataset`], streaming one part at a time
/// under the ambient limits. Results are bit-identical to evaluating the
/// materialized dataset: global row indices are `part start + local`, and
/// every aggregate folds in row order exactly as the monolithic path does.
pub fn evaluate_segmented(data: &SegmentedDataset, query: &Query) -> Result<Evaluation> {
    evaluate_segmented_with_limits(data, query, &QueryLimits::ambient())
}

/// [`evaluate_segmented`] under explicit resource limits. The deadline is
/// charged for the *whole* table up front — sealed segments plus tail — so
/// a refusal never pins (or reloads) a single segment.
pub fn evaluate_segmented_with_limits(
    data: &SegmentedDataset,
    query: &Query,
    limits: &QueryLimits,
) -> Result<Evaluation> {
    let agg_col = match query.aggregate.attribute() {
        Some(name) => {
            let idx = data.schema().index_of(name)?;
            if !data.schema().attribute(idx).kind.is_numeric() {
                return Err(Error::NotNumeric(name.to_owned()));
            }
            Some(idx)
        }
        None => None,
    };

    let _span = obs::span("querydb.evaluate");
    obs::count("querydb.queries", 1);
    if let Some(max_rows) = limits.max_rows {
        let needed = data.num_rows() as u64;
        if needed > max_rows {
            obs::count("querydb.deadline_refusals", 1);
            return Err(Error::ResourceExhausted(format!(
                "query needs {needed} row scans but its deadline allows {max_rows}"
            )));
        }
    }
    obs::count("querydb.rows_scanned", data.num_rows() as u64);
    // The predicate compiles per part (views borrow that part's columns),
    // so name resolution is checked once against the shared schema first —
    // a bad query must fail even when every part happens to be empty.
    check_predicate_names(&query.predicate, data.schema())?;

    let mut query_set = Vec::new();
    // Running fold state. Sum and Avg left-fold from 0.0 in row order, and
    // Min/Max compare with `f64::total_cmp`, matching the monolithic
    // `iter().sum()` / `min_by` bit for bit (total_cmp ties are
    // bit-identical values, so tie-breaking order cannot matter).
    let mut sum = 0.0f64;
    let mut present = 0usize;
    let mut extreme: Option<f64> = None;
    let want_min = matches!(query.aggregate, Aggregate::Min(_));
    data.for_each_part(|part, base| {
        let compiled = CompiledPredicate::compile(&query.predicate, part)?;
        let cells = agg_col.map(|c| part.f64_cells(c).expect("numeric column"));
        for i in 0..part.num_rows() {
            if !compiled.matches(i) {
                continue;
            }
            query_set.push(base + i);
            if let Some(cells) = &cells {
                if let Some(v) = cells.get(i) {
                    sum += v;
                    present += 1;
                    extreme = Some(match extreme {
                        None => v,
                        Some(b) if want_min && v.total_cmp(&b).is_lt() => v,
                        Some(b) if !want_min && v.total_cmp(&b).is_gt() => v,
                        Some(b) => b,
                    });
                }
            }
        }
        Ok(())
    })?;

    let value = match &query.aggregate {
        Aggregate::Count => Some(query_set.len() as f64),
        Aggregate::Sum(_) => Some(sum),
        Aggregate::Avg(_) => (present > 0).then(|| sum / present as f64),
        Aggregate::Min(_) | Aggregate::Max(_) => extreme,
    };
    Ok(Evaluation { query_set, value })
}

/// Resolves every attribute the predicate mentions against `schema`,
/// returning the same error the per-part compile would.
fn check_predicate_names(p: &Predicate, schema: &Schema) -> Result<()> {
    match p {
        Predicate::True => Ok(()),
        Predicate::Cmp { attribute, .. } | Predicate::In { attribute, .. } => {
            schema.index_of(attribute).map(|_| ())
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            check_predicate_names(a, schema)?;
            check_predicate_names(b, schema)
        }
        Predicate::Not(inner) => check_predicate_names(inner, schema),
    }
}

/// A predicate with attribute names resolved to column views: compiled once
/// per query, then evaluated per row without hash lookups, `Value`
/// materialization, or allocation.
enum CompiledPredicate<'a> {
    True,
    Cmp {
        view: ColumnView<'a>,
        op: CmpOp,
        literal: &'a Value,
    },
    And(Box<CompiledPredicate<'a>>, Box<CompiledPredicate<'a>>),
    Or(Box<CompiledPredicate<'a>>, Box<CompiledPredicate<'a>>),
    Not(Box<CompiledPredicate<'a>>),
    In {
        view: ColumnView<'a>,
        values: &'a [Value],
    },
}

impl<'a> CompiledPredicate<'a> {
    fn compile(p: &'a Predicate, data: &'a Dataset) -> Result<Self> {
        Ok(match p {
            Predicate::True => CompiledPredicate::True,
            Predicate::Cmp {
                attribute,
                op,
                literal,
            } => CompiledPredicate::Cmp {
                view: data.col(data.schema().index_of(attribute)?),
                op: *op,
                literal,
            },
            Predicate::And(a, b) => CompiledPredicate::And(
                Box::new(Self::compile(a, data)?),
                Box::new(Self::compile(b, data)?),
            ),
            Predicate::Or(a, b) => CompiledPredicate::Or(
                Box::new(Self::compile(a, data)?),
                Box::new(Self::compile(b, data)?),
            ),
            Predicate::Not(inner) => CompiledPredicate::Not(Box::new(Self::compile(inner, data)?)),
            Predicate::In { attribute, values } => CompiledPredicate::In {
                view: data.col(data.schema().index_of(attribute)?),
                values,
            },
        })
    }

    fn matches(&self, i: usize) -> bool {
        match self {
            CompiledPredicate::True => true,
            CompiledPredicate::Cmp { view, op, literal } => {
                if view.is_missing(i) {
                    return false; // suppressed cells match nothing
                }
                let ord = view.cmp_value(i, literal);
                match op {
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                }
            }
            CompiledPredicate::And(a, b) => a.matches(i) && b.matches(i),
            CompiledPredicate::Or(a, b) => a.matches(i) || b.matches(i),
            CompiledPredicate::Not(inner) => !inner.matches(i),
            CompiledPredicate::In { view, values } => {
                if view.is_missing(i) {
                    return false;
                }
                // `group_eq` is `total_cmp == Equal`, so the packed compare
                // matches the row-slice evaluator exactly.
                values
                    .iter()
                    .any(|v| view.cmp_value(i, v) == std::cmp::Ordering::Equal)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use tdf_microdata::patients;

    #[test]
    fn the_papers_isolation_queries_return_1_and_146() {
        // §3: "The first query tells the user that there is only one
        // individual in the dataset smaller than 165 cm and heavier than
        // 105 kg ... the average blood pressure 146 returned by the second
        // query corresponds to that single individual."
        let d = patients::dataset2();
        let count = evaluate(
            &d,
            &parse("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105").unwrap(),
        )
        .unwrap();
        assert_eq!(count.value, Some(1.0));
        let avg = evaluate(
            &d,
            &parse("SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105")
                .unwrap(),
        )
        .unwrap();
        assert_eq!(avg.value, Some(146.0));
        assert_eq!(avg.query_set, vec![patients::DATASET2_ISOLATED_ROW]);
    }

    #[test]
    fn aggregates_on_dataset1() {
        let d = patients::dataset1();
        let count = evaluate(&d, &parse("SELECT COUNT(*) FROM t").unwrap()).unwrap();
        assert_eq!(count.value, Some(10.0));
        let min = evaluate(&d, &parse("SELECT MIN(blood_pressure) FROM t").unwrap()).unwrap();
        assert_eq!(min.value, Some(128.0));
        let max = evaluate(&d, &parse("SELECT MAX(weight) FROM t").unwrap()).unwrap();
        assert_eq!(max.value, Some(95.0));
        let sum = evaluate(
            &d,
            &parse("SELECT SUM(weight) FROM t WHERE height = 170").unwrap(),
        )
        .unwrap();
        assert_eq!(sum.value, Some(280.0));
    }

    #[test]
    fn empty_query_set_semantics() {
        let d = patients::dataset1();
        let q = parse("SELECT AVG(weight) FROM t WHERE height > 999").unwrap();
        let e = evaluate(&d, &q).unwrap();
        assert!(e.query_set.is_empty());
        assert_eq!(e.value, None);
        let c = evaluate(
            &d,
            &parse("SELECT COUNT(*) FROM t WHERE height > 999").unwrap(),
        )
        .unwrap();
        assert_eq!(c.value, Some(0.0));
    }

    #[test]
    fn non_numeric_aggregate_is_rejected() {
        let d = patients::dataset1();
        let q = parse("SELECT SUM(aids) FROM t").unwrap();
        assert!(evaluate(&d, &q).is_err());
    }

    #[test]
    fn row_budget_refuses_before_scanning() {
        let d = patients::dataset1(); // 10 rows
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        // A generous allowance changes nothing.
        let ok = evaluate_with_limits(&d, &q, &QueryLimits::with_max_rows(10)).unwrap();
        assert_eq!(ok.value, Some(10.0));
        assert_eq!(ok, evaluate(&d, &q).unwrap());
        // A tight allowance is an explicit typed refusal, not a partial
        // answer.
        let err = evaluate_with_limits(&d, &q, &QueryLimits::with_max_rows(9)).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)), "got {err:?}");
        assert!(err.to_string().contains("10 row scans"));
    }

    #[test]
    fn limits_tighten_to_the_stricter_combination() {
        let a = QueryLimits::with_max_rows(5);
        let b = QueryLimits::with_max_rows(9);
        assert_eq!(a.tightened(b).max_rows, Some(5));
        assert_eq!(b.tightened(a).max_rows, Some(5));
        assert_eq!(a.tightened(QueryLimits::unlimited()).max_rows, Some(5));
        assert_eq!(QueryLimits::unlimited().tightened(b).max_rows, Some(9));
        assert_eq!(
            QueryLimits::unlimited().tightened(QueryLimits::unlimited()),
            QueryLimits::unlimited()
        );
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let d = patients::dataset1();
        let q = parse("SELECT SUM(salary) FROM t").unwrap();
        assert!(evaluate(&d, &q).is_err());
        let q2 = parse("SELECT COUNT(*) FROM t WHERE salary > 3").unwrap();
        assert!(evaluate(&d, &q2).is_err());
    }

    #[test]
    fn segmented_evaluation_matches_monolithic_bit_for_bit() {
        use tdf_microdata::synth::{patients as synth_patients, PatientConfig};
        use tdf_microdata::SegmentedDataset;
        let d = synth_patients(&PatientConfig {
            n: 137,
            ..Default::default()
        });
        let seg = SegmentedDataset::from_dataset(&d, 40); // 3 sealed + tail of 17
        let queries = [
            "SELECT COUNT(*) FROM t WHERE height < 170",
            "SELECT SUM(weight) FROM t WHERE height >= 160 AND height <= 180",
            "SELECT AVG(blood_pressure) FROM t WHERE weight > 70",
            "SELECT MIN(height) FROM t WHERE weight < 90",
            "SELECT MAX(weight) FROM t",
            "SELECT AVG(weight) FROM t WHERE height > 999",
        ];
        for sql in queries {
            let q = parse(sql).unwrap();
            let mono = evaluate(&d, &q).unwrap();
            let segd = evaluate_segmented(&seg, &q).unwrap();
            assert_eq!(segd.query_set, mono.query_set, "{sql}");
            match (mono.value, segd.value) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits(), "{sql}"),
                (a, b) => assert_eq!(a, b, "{sql}"),
            }
        }
    }

    #[test]
    fn segmented_evaluation_streams_through_spilled_segments() {
        use tdf_microdata::synth::{patients as synth_patients, PatientConfig};
        use tdf_microdata::SegmentedDataset;
        let d = synth_patients(&PatientConfig {
            n: 160,
            ..Default::default()
        });
        let seg = SegmentedDataset::from_dataset(&d, 40);
        assert_eq!(seg.spill_all(), 4);
        let q = parse("SELECT SUM(weight) FROM t WHERE height < 175").unwrap();
        let mono = evaluate(&d, &q).unwrap();
        let segd = evaluate_segmented(&seg, &q).unwrap();
        assert_eq!(segd, mono, "out-of-core scan must be exact");
    }

    #[test]
    fn segmented_deadline_refuses_for_the_whole_table() {
        use tdf_microdata::synth::{patients as synth_patients, PatientConfig};
        use tdf_microdata::SegmentedDataset;
        let d = synth_patients(&PatientConfig {
            n: 100,
            ..Default::default()
        });
        let seg = SegmentedDataset::from_dataset(&d, 30);
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        let ok =
            evaluate_segmented_with_limits(&seg, &q, &QueryLimits::with_max_rows(100)).unwrap();
        assert_eq!(ok.value, Some(100.0));
        let err =
            evaluate_segmented_with_limits(&seg, &q, &QueryLimits::with_max_rows(99)).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)), "got {err:?}");
    }

    #[test]
    fn segmented_rejects_bad_names_even_with_empty_parts() {
        use tdf_microdata::SegmentedDataset;
        let d = patients::dataset1();
        let empty = SegmentedDataset::new(d.schema().clone());
        let q = parse("SELECT COUNT(*) FROM t WHERE salary > 3").unwrap();
        assert!(evaluate_segmented(&empty, &q).is_err());
        let q2 = parse("SELECT SUM(salary) FROM t").unwrap();
        assert!(evaluate_segmented(&empty, &q2).is_err());
    }
}
