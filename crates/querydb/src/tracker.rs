//! The Schlörer tracker attack [22].
//!
//! Query-set-size restriction refuses queries whose sets are too small or
//! too large — but a *tracker* predicate `T` of comfortable size lets the
//! attacker reassemble forbidden answers from permitted ones, via
//! inclusion–exclusion:
//!
//! `q(C ∨ T) + q(C ∨ ¬T) = q(C) + q(ALL)` and `q(ALL) = q(T) + q(¬T)`
//!
//! hold for COUNT and SUM alike, and every query on the left/right sides
//! can be made to pass the size filter. This is why the paper calls the SDC
//! problem for interactive databases "known to be difficult since the
//! 1980s" (§3).

use crate::ast::{Aggregate, Predicate, Query};
use crate::control::Answer;
use crate::statdb::StatDb;
use tdf_microdata::Result;

/// Outcome of a tracker attack.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerOutcome {
    /// The inferred aggregate over the forbidden query set, if every
    /// auxiliary query was answered.
    pub inferred: Option<f64>,
    /// Number of auxiliary queries issued.
    pub queries_issued: usize,
    /// Number of auxiliary queries refused by the database.
    pub refused: usize,
}

fn ask(db: &mut StatDb, aggregate: Aggregate, predicate: Predicate) -> Result<Answer> {
    db.query(Query {
        aggregate,
        predicate,
    })
}

/// Runs the general tracker attack to compute `aggregate` over the
/// (presumably forbidden) `target` query set, padding with `tracker`.
///
/// The four auxiliary queries are `q(target ∨ tracker)`,
/// `q(target ∨ ¬tracker)`, `q(tracker)` and `q(¬tracker)`; the identity
/// above recovers `q(target)`. Works against exact-answer policies; against
/// output noise the estimate degrades; against auditing the final queries
/// are refused.
pub fn general_tracker_attack(
    db: &mut StatDb,
    aggregate: Aggregate,
    target: &Predicate,
    tracker: &Predicate,
) -> Result<TrackerOutcome> {
    obs::count("querydb.tracker.attacks", 1);
    let mut refused = 0usize;
    let mut values = Vec::with_capacity(4);
    let probes = [
        target.clone().or(tracker.clone()),
        target.clone().or(tracker.clone().not()),
        tracker.clone(),
        tracker.clone().not(),
    ];
    for p in probes {
        match ask(db, aggregate.clone(), p)? {
            Answer::Refused(_) => refused += 1,
            a => values.push(a.point().expect("non-refused answers carry a value")),
        }
    }
    let inferred = if refused == 0 {
        // q(C) = q(C∨T) + q(C∨¬T) − (q(T) + q(¬T)).
        Some(values[0] + values[1] - (values[2] + values[3]))
    } else {
        None
    };
    obs::count("querydb.tracker.refused", refused as u64);
    Ok(TrackerOutcome {
        inferred,
        queries_issued: 4,
        refused,
    })
}

/// Convenience: full §3-style disclosure of one respondent's value of
/// `attribute` using COUNT + SUM trackers. Returns the value when the
/// target set turned out to be a singleton and all queries were answered.
pub fn disclose_individual(
    db: &mut StatDb,
    attribute: &str,
    target: &Predicate,
    tracker: &Predicate,
) -> Result<Option<f64>> {
    let count = general_tracker_attack(db, Aggregate::Count, target, tracker)?;
    let sum = general_tracker_attack(db, Aggregate::Sum(attribute.to_owned()), target, tracker)?;
    Ok(match (count.inferred, sum.inferred) {
        (Some(c), Some(s)) if (c - 1.0).abs() < 1e-6 => Some(s),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::control::{Auditor, ControlPolicy};
    use tdf_microdata::patients;

    fn target() -> Predicate {
        // The paper's Mr./Mrs. X: unique in Dataset 2.
        Predicate::cmp("height", CmpOp::Lt, 165.0).and(Predicate::cmp("weight", CmpOp::Gt, 105.0))
    }

    fn tracker() -> Predicate {
        // aids = N matches 7 of 10 records: comfortably inside the band.
        Predicate::cmp("aids", CmpOp::Eq, false)
    }

    #[test]
    fn direct_isolation_is_refused_but_tracker_succeeds() {
        let mut db = StatDb::new(
            patients::dataset2(),
            ControlPolicy::SizeRestriction { min_size: 2 },
        );
        // The direct §3 attack is stopped by the size filter...
        let direct = db
            .query_str("SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105")
            .unwrap();
        assert!(direct.is_refused());
        // ...and the tracker walks around it: full disclosure of 146.
        let value = disclose_individual(&mut db, "blood_pressure", &target(), &tracker())
            .unwrap()
            .expect("tracker defeats size restriction");
        assert!((value - 146.0).abs() < 1e-9, "disclosed {value}");
    }

    #[test]
    fn tracker_count_identity_holds_on_dataset1() {
        let mut db = StatDb::new(patients::dataset1(), ControlPolicy::None);
        let t = Predicate::cmp("aids", CmpOp::Eq, false);
        let c = Predicate::cmp("height", CmpOp::Eq, 175.0);
        let out = general_tracker_attack(&mut db, Aggregate::Count, &c, &t).unwrap();
        assert_eq!(out.inferred, Some(3.0));
        assert_eq!(out.refused, 0);
    }

    #[test]
    fn auditing_stops_the_tracker() {
        let d = patients::dataset2();
        let n = d.num_rows();
        let mut db = StatDb::new(d, ControlPolicy::Audit(Auditor::new("blood_pressure", n)));
        let value = disclose_individual(&mut db, "blood_pressure", &target(), &tracker()).unwrap();
        assert_eq!(value, None, "auditor must refuse some tracker query");
        assert!(db.refusals() > 0);
    }

    #[test]
    fn noise_bounds_the_disclosure() {
        let mut db = StatDb::new(patients::dataset2(), ControlPolicy::noise(5.0, 1234));
        let value = disclose_individual(&mut db, "blood_pressure", &target(), &tracker()).unwrap();
        // The count estimate is itself noisy; the attack may or may not
        // conclude. When it does, the value must be off the mark by the
        // accumulated noise rather than exact.
        if let Some(v) = value {
            assert!(
                (v - 146.0).abs() > 1e-9,
                "noise must not reproduce the exact value"
            );
        }
    }

    #[test]
    fn queries_issued_accounting() {
        let mut db = StatDb::new(patients::dataset2(), ControlPolicy::None);
        let out = general_tracker_attack(&mut db, Aggregate::Count, &target(), &tracker()).unwrap();
        assert_eq!(out.queries_issued, 4);
        assert_eq!(db.query_log().len(), 4);
    }
}
