//! Abstract syntax of the mini statistical query language.

use std::fmt;
use tdf_microdata::{Dataset, Result, Value};

/// Aggregate functions supported by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)`.
    Count,
    /// `SUM(attr)`.
    Sum(String),
    /// `AVG(attr)`.
    Avg(String),
    /// `MIN(attr)`.
    Min(String),
    /// `MAX(attr)`.
    Max(String),
}

impl Aggregate {
    /// The attribute the aggregate reads, if any.
    pub fn attribute(&self) -> Option<&str> {
        match self {
            Aggregate::Count => None,
            Aggregate::Sum(a) | Aggregate::Avg(a) | Aggregate::Min(a) | Aggregate::Max(a) => {
                Some(a)
            }
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

/// A selection predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (no WHERE clause).
    True,
    /// Attribute comparison against a literal.
    Cmp {
        /// Attribute name.
        attribute: String,
        /// Operator.
        op: CmpOp,
        /// Literal value.
        literal: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Set membership: `attribute IN (v1, v2, …)`.
    In {
        /// Attribute name.
        attribute: String,
        /// Accepted values.
        values: Vec<Value>,
    },
}

impl Predicate {
    /// Convenience conjunction.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Convenience disjunction.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Convenience negation (a DSL builder, deliberately named like SQL's
    /// `NOT` rather than implementing `std::ops::Not`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Convenience comparison.
    pub fn cmp(attribute: impl Into<String>, op: CmpOp, literal: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            attribute: attribute.into(),
            op,
            literal: literal.into(),
        }
    }

    /// Convenience range: `lo <= attribute <= hi` (SQL `BETWEEN`).
    pub fn between(
        attribute: impl Into<String> + Clone,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Predicate {
        Predicate::cmp(attribute.clone(), CmpOp::Ge, lo).and(Predicate::cmp(
            attribute,
            CmpOp::Le,
            hi,
        ))
    }

    /// Evaluates the predicate on a row of `data`'s schema.
    pub fn matches(&self, data: &Dataset, row: &[Value]) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp {
                attribute,
                op,
                literal,
            } => {
                let idx = data.schema().index_of(attribute)?;
                let cell = &row[idx];
                if cell.is_missing() {
                    return Ok(false); // suppressed cells match nothing
                }
                let ord = cell.total_cmp(literal);
                Ok(match op {
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                })
            }
            Predicate::And(a, b) => Ok(a.matches(data, row)? && b.matches(data, row)?),
            Predicate::Or(a, b) => Ok(a.matches(data, row)? || b.matches(data, row)?),
            Predicate::Not(p) => Ok(!p.matches(data, row)?),
            Predicate::In { attribute, values } => {
                let idx = data.schema().index_of(attribute)?;
                let cell = &row[idx];
                if cell.is_missing() {
                    return Ok(false);
                }
                Ok(values.iter().any(|v| cell.group_eq(v)))
            }
        }
    }
}

/// A full statistical query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The aggregate to compute.
    pub aggregate: Aggregate,
    /// The selection predicate.
    pub predicate: Predicate,
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregate::Count => write!(f, "COUNT(*)"),
            Aggregate::Sum(a) => write!(f, "SUM({a})"),
            Aggregate::Avg(a) => write!(f, "AVG({a})"),
            Aggregate::Min(a) => write!(f, "MIN({a})"),
            Aggregate::Max(a) => write!(f, "MAX({a})"),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Cmp {
                attribute,
                op,
                literal,
            } => write!(f, "{attribute} {op} {literal}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "(NOT {p})"),
            Predicate::In { attribute, values } => {
                let list: Vec<String> = values
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => format!("'{s}'"),
                        other => other.to_string(),
                    })
                    .collect();
                write!(f, "{attribute} IN ({})", list.join(", "))
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicate == Predicate::True {
            write!(f, "SELECT {} FROM t", self.aggregate)
        } else {
            write!(
                f,
                "SELECT {} FROM t WHERE {}",
                self.aggregate, self.predicate
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::patients;

    #[test]
    fn predicate_evaluation_matches_paper_example() {
        let d = patients::dataset2();
        let p = Predicate::cmp("height", CmpOp::Lt, 165.0).and(Predicate::cmp(
            "weight",
            CmpOp::Gt,
            105.0,
        ));
        let matching: Vec<usize> = (0..d.num_rows())
            .filter(|&i| p.matches(&d, &d.row(i)).unwrap())
            .collect();
        assert_eq!(matching, vec![patients::DATASET2_ISOLATED_ROW]);
    }

    #[test]
    fn boolean_and_negation() {
        let d = patients::dataset1();
        let p = Predicate::cmp("aids", CmpOp::Eq, true);
        let n = (0..d.num_rows())
            .filter(|&i| p.matches(&d, &d.row(i)).unwrap())
            .count();
        assert_eq!(n, 3);
        let np = p.not();
        let m = (0..d.num_rows())
            .filter(|&i| np.matches(&d, &d.row(i)).unwrap())
            .count();
        assert_eq!(m, 7);
    }

    #[test]
    fn missing_cells_never_match() {
        let mut d = patients::dataset1();
        d.set_value(0, 0, Value::Missing).unwrap();
        let p = Predicate::cmp("height", CmpOp::Gt, 0.0);
        assert!(!p.matches(&d, &d.row(0)).unwrap());
        assert!(p.matches(&d, &d.row(1)).unwrap());
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let d = patients::dataset1();
        let p = Predicate::cmp("zip", CmpOp::Eq, 1.0);
        assert!(p.matches(&d, &d.row(0)).is_err());
    }

    #[test]
    fn display_round_trips_visually() {
        let q = Query {
            aggregate: Aggregate::Avg("blood_pressure".into()),
            predicate: Predicate::cmp("height", CmpOp::Lt, 165.0).and(Predicate::cmp(
                "weight",
                CmpOp::Gt,
                105.0,
            )),
        };
        let s = q.to_string();
        assert!(s.contains("AVG(blood_pressure)"));
        assert!(s.contains("height < 165"));
        assert!(s.contains("AND"));
    }
}
