//! The statistical-database front-end: evaluation + policy + query log.

use crate::ast::Query;
use crate::control::{Answer, ControlPolicy};
use crate::engine::{evaluate_with_limits, QueryLimits};
use crate::parser::parse;
use tdf_microdata::{Dataset, Error, Result};

/// An interactively queryable statistical database.
///
/// Every submitted query is appended to [`StatDb::query_log`] before being
/// answered — modelling the paper's observation that "all SDC methods for
/// interactive statistical databases assume that the data owner operating
/// the database exactly knows the queries submitted by users" (§3). The log
/// *is* the user-privacy leak.
#[derive(Debug)]
pub struct StatDb {
    data: Dataset,
    policy: ControlPolicy,
    limits: QueryLimits,
    log: Vec<(Query, Answer)>,
}

impl StatDb {
    /// Opens a database over `data` with the given policy and no
    /// explicit resource limits.
    pub fn new(data: Dataset, policy: ControlPolicy) -> Self {
        Self::with_limits(data, policy, QueryLimits::unlimited())
    }

    /// Opens a database with explicit per-query [`QueryLimits`]. The
    /// effective limits of each query are these tightened by the ambient
    /// (fault-injected) ones.
    pub fn with_limits(data: Dataset, policy: ControlPolicy, limits: QueryLimits) -> Self {
        Self {
            data,
            policy,
            limits,
            log: Vec::new(),
        }
    }

    /// The underlying data (the owner's view).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Submits a parsed query. A query that exhausts its evaluation
    /// budget degrades to an explicit [`Answer::Refused`] — the paper's
    /// tracker semantics — and is logged like any other refusal; it is
    /// never answered from a partial scan.
    pub fn query(&mut self, query: Query) -> Result<Answer> {
        let limits = self.limits.tightened(QueryLimits::ambient());
        let answer = match evaluate_with_limits(&self.data, &query, &limits) {
            Ok(eval) => self.policy.apply(&self.data, &query, &eval),
            Err(Error::ResourceExhausted(_)) => {
                Answer::Refused("query exceeded its evaluation deadline")
            }
            Err(e) => return Err(e),
        };
        self.log.push((query, answer.clone()));
        Ok(answer)
    }

    /// Submits a query in the mini-SQL syntax.
    pub fn query_str(&mut self, src: &str) -> Result<Answer> {
        self.query(parse(src)?)
    }

    /// The owner's complete record of what every user asked.
    pub fn query_log(&self) -> &[(Query, Answer)] {
        &self.log
    }

    /// Number of refused queries so far.
    pub fn refusals(&self) -> usize {
        self.log.iter().filter(|(_, a)| a.is_refused()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdf_microdata::patients;

    #[test]
    fn logs_every_query_including_refused_ones() {
        let mut db = StatDb::new(
            patients::dataset2(),
            ControlPolicy::SizeRestriction { min_size: 2 },
        );
        db.query_str("SELECT COUNT(*) FROM t WHERE aids = Y")
            .unwrap();
        db.query_str("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105")
            .unwrap();
        assert_eq!(db.query_log().len(), 2);
        assert_eq!(db.refusals(), 1);
        // The owner sees the full predicate of the refused query too.
        let (q, a) = &db.query_log()[1];
        assert!(q.to_string().contains("height < 165"));
        assert!(a.is_refused());
    }

    #[test]
    fn parse_errors_do_not_pollute_the_log() {
        let mut db = StatDb::new(patients::dataset1(), ControlPolicy::None);
        assert!(db.query_str("SELEKT lol").is_err());
        assert!(db.query_log().is_empty());
    }

    #[test]
    fn full_paper_attack_runs_without_control() {
        // §3 end-to-end with no protection: two queries, full disclosure.
        let mut db = StatDb::new(patients::dataset2(), ControlPolicy::None);
        let c = db
            .query_str("SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105")
            .unwrap();
        assert_eq!(c.point(), Some(1.0));
        let avg = db
            .query_str("SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105")
            .unwrap();
        assert_eq!(avg.point(), Some(146.0));
    }
}
