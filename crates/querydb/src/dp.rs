//! Differentially private query answering (Laplace mechanism) with an
//! explicit privacy budget.
//!
//! The paper (2007) predates the mainstream adoption of differential
//! privacy, but its §6 asks for "other possible solutions satisfying the
//! privacy of respondents, owners and users" — ε-DP is the answer the
//! field converged on for the respondent dimension of interactive
//! databases: a *provable* bound on what any query sequence reveals about
//! one respondent, replacing both size restriction and auditing. Included
//! here as the natural extension experiment.
//!
//! Sensitivity model: COUNT queries have sensitivity 1; SUM/AVG need a
//! declared per-attribute value range `[lo, hi]` (sensitivity `hi − lo`
//! for SUM; `(hi − lo) / max(1, |query set|)` for AVG). MIN/MAX have
//! unbounded sensitivity and are refused.

use crate::ast::{Aggregate, Query};
use crate::control::Answer;
use crate::engine::Evaluation;
use rngkit::rngs::StdRng;
use rngkit::SeedableRng;
use std::collections::BTreeMap;
use tdf_microdata::rng::laplace;
use tdf_microdata::Dataset;

/// A Laplace-mechanism answering policy with budget tracking.
#[derive(Debug)]
pub struct DpPolicy {
    /// ε spent per query.
    epsilon_per_query: f64,
    /// Total ε the owner is willing to spend; further queries are refused.
    budget: f64,
    spent: f64,
    /// Declared value ranges per attribute (required for SUM/AVG).
    ranges: BTreeMap<String, (f64, f64)>,
    rng: StdRng,
}

impl DpPolicy {
    /// Creates a policy spending `epsilon_per_query` per answer out of a
    /// total `budget`.
    pub fn new(epsilon_per_query: f64, budget: f64, seed: u64) -> Self {
        assert!(
            epsilon_per_query > 0.0 && budget > 0.0,
            "epsilon and budget must be positive"
        );
        Self {
            epsilon_per_query,
            budget,
            spent: 0.0,
            ranges: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Declares the value range of an attribute (enables SUM/AVG on it).
    pub fn with_range(mut self, attribute: &str, lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "range must be non-degenerate");
        self.ranges.insert(attribute.to_owned(), (lo, hi));
        self
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining budget.
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent).max(0.0)
    }

    /// Answers one evaluated query under ε-DP.
    pub fn apply(&mut self, _data: &Dataset, query: &Query, eval: &Evaluation) -> Answer {
        self.apply_eval(query, eval)
    }

    /// [`DpPolicy::apply`] without the dataset handle. The mechanism only
    /// reads the evaluation (value + query-set size) and the declared
    /// ranges, so callers evaluating out-of-core — where no monolithic
    /// [`Dataset`] exists — use this entry point.
    pub fn apply_eval(&mut self, query: &Query, eval: &Evaluation) -> Answer {
        let answer = self.answer(query, eval);
        match &answer {
            Answer::Refused(_) => obs::count("querydb.dp.refusals", 1),
            _ => {
                obs::count("querydb.dp.answers", 1);
                // The ε ledger is exported in micro-ε so it stays an exact,
                // sum-mergeable integer counter.
                obs::count(
                    "querydb.dp.epsilon_spent_micro",
                    (self.epsilon_per_query * 1e6).round() as u64,
                );
            }
        }
        answer
    }

    fn answer(&mut self, query: &Query, eval: &Evaluation) -> Answer {
        if self.spent + self.epsilon_per_query > self.budget + 1e-12 {
            return Answer::Refused("privacy budget exhausted");
        }
        let sensitivity = match &query.aggregate {
            Aggregate::Count => 1.0,
            Aggregate::Sum(attr) => match self.ranges.get(attr) {
                Some(&(lo, hi)) => hi - lo,
                None => return Answer::Refused("no declared range for SUM attribute"),
            },
            Aggregate::Avg(attr) => match self.ranges.get(attr) {
                Some(&(lo, hi)) => (hi - lo) / eval.query_set.len().max(1) as f64,
                None => return Answer::Refused("no declared range for AVG attribute"),
            },
            Aggregate::Min(_) | Aggregate::Max(_) => {
                return Answer::Refused("extrema have unbounded sensitivity under DP")
            }
        };
        let value = eval.value.unwrap_or(0.0);
        self.spent += self.epsilon_per_query;
        let scale = sensitivity / self.epsilon_per_query;
        Answer::Perturbed(value + laplace(&mut self.rng, scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate;
    use crate::parser::parse;
    use tdf_microdata::patients;

    fn ask(policy: &mut DpPolicy, data: &Dataset, src: &str) -> Answer {
        let q = parse(src).unwrap();
        let e = evaluate(data, &q).unwrap();
        policy.apply(data, &q, &e)
    }

    #[test]
    fn noisy_counts_concentrate_around_truth() {
        let d = patients::dataset1();
        let mut errors = Vec::new();
        for seed in 0..200 {
            let mut p = DpPolicy::new(1.0, 10.0, seed);
            if let Answer::Perturbed(v) = ask(&mut p, &d, "SELECT COUNT(*) FROM t WHERE aids = Y") {
                errors.push((v - 3.0).abs());
            }
        }
        let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
        // Laplace(1/1) has mean absolute deviation 1.
        assert!((mean_err - 1.0).abs() < 0.3, "mean error {mean_err}");
    }

    #[test]
    fn budget_exhaustion_refuses() {
        let d = patients::dataset1();
        let mut p = DpPolicy::new(1.0, 2.5, 7);
        assert!(!ask(&mut p, &d, "SELECT COUNT(*) FROM t").is_refused());
        assert!(!ask(&mut p, &d, "SELECT COUNT(*) FROM t").is_refused());
        // Third query would spend 3.0 > 2.5.
        assert!(ask(&mut p, &d, "SELECT COUNT(*) FROM t").is_refused());
        assert_eq!(p.spent(), 2.0);
        assert!(p.remaining() < 0.6);
    }

    #[test]
    fn sums_need_declared_ranges() {
        let d = patients::dataset1();
        let mut p = DpPolicy::new(1.0, 10.0, 1);
        assert!(ask(&mut p, &d, "SELECT SUM(weight) FROM t").is_refused());
        let mut p = DpPolicy::new(1.0, 10.0, 1).with_range("weight", 40.0, 160.0);
        match ask(&mut p, &d, "SELECT SUM(weight) FROM t") {
            Answer::Perturbed(v) => assert!((v - 805.0).abs() < 600.0, "{v}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extrema_are_refused() {
        let d = patients::dataset1();
        let mut p = DpPolicy::new(1.0, 10.0, 2).with_range("weight", 40.0, 160.0);
        assert!(ask(&mut p, &d, "SELECT MAX(weight) FROM t").is_refused());
    }

    #[test]
    fn empty_query_sets_are_not_distinguishable() {
        // The answer for an empty set is noise around 0, not a refusal —
        // refusing would itself leak the emptiness.
        let d = patients::dataset1();
        let mut p = DpPolicy::new(1.0, 10.0, 3).with_range("weight", 40.0, 160.0);
        let a = ask(&mut p, &d, "SELECT AVG(weight) FROM t WHERE height > 999");
        assert!(matches!(a, Answer::Perturbed(_)), "{a:?}");
    }

    #[test]
    fn smaller_epsilon_means_noisier_answers() {
        let d = patients::dataset1();
        let spread = |eps: f64| -> f64 {
            let mut vals = Vec::new();
            for seed in 0..100 {
                let mut p = DpPolicy::new(eps, 1000.0, seed);
                if let Answer::Perturbed(v) = ask(&mut p, &d, "SELECT COUNT(*) FROM t") {
                    vals.push(v);
                }
            }
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        assert!(spread(0.1) > 3.0 * spread(1.0));
    }

    #[test]
    fn the_isolation_attack_yields_only_noise() {
        // The paper's §3 attack against DP: COUNT ≈ 1 ± noise, AVG of the
        // singleton is noise-dominated (sensitivity (hi−lo)/1).
        let d = patients::dataset2();
        let mut p = DpPolicy::new(0.5, 10.0, 11).with_range("blood_pressure", 120.0, 160.0);
        let avg = ask(
            &mut p,
            &d,
            "SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105",
        );
        match avg {
            Answer::Perturbed(v) => {
                // Laplace scale = 40/0.5 = 80: the answer is useless to the
                // attacker with overwhelming probability.
                assert!((v - 146.0).abs() > 1.0, "noise must dominate: {v}");
            }
            other => panic!("{other:?}"),
        }
    }
}
