//! Recursive-descent parser for the mini statistical query language.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT agg FROM ident (WHERE pred)?
//! agg     := COUNT '(' '*' ')' | (SUM|AVG|MIN|MAX) '(' ident ')'
//! pred    := conj (OR conj)*
//! conj    := unary (AND unary)*
//! unary   := NOT unary | '(' pred ')' | cmp
//! cmp     := ident op literal
//!          | ident BETWEEN literal AND literal
//!          | ident IN '(' literal (',' literal)* ')'
//! op      := '<' | '<=' | '>' | '>=' | '=' | '!='
//! literal := number | 'Y' | 'N' | quoted string | bareword
//! ```

use crate::ast::{Aggregate, CmpOp, Predicate, Query};
use tdf_microdata::{Error, Result, Value};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LParen,
    RParen,
    Star,
    Comma,
}

fn err(msg: impl Into<String>) -> Error {
    Error::InvalidParameter(format!("query parse error: {}", msg.into()))
}

fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Le);
                } else {
                    tokens.push(Token::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Ge);
                } else {
                    tokens.push(Token::Gt);
                }
            }
            '=' => {
                chars.next();
                tokens.push(Token::Eq);
            }
            '!' => {
                chars.next();
                if chars.next() == Some('=') {
                    tokens.push(Token::Ne);
                } else {
                    return Err(err("expected `=` after `!`"));
                }
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some(ch) if ch == quote => break,
                        Some(ch) => s.push(ch),
                        None => return Err(err("unterminated string literal")),
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' | '-' | '.' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Number(
                    s.parse().map_err(|_| err(format!("bad number `{s}`")))?,
                ));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        match self.next() {
            Some(tok) if tok == t => Ok(()),
            other => Err(err(format!("expected {t:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn aggregate(&mut self) -> Result<Aggregate> {
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        let agg = if name.eq_ignore_ascii_case("count") {
            self.expect(Token::Star)?;
            Aggregate::Count
        } else {
            let attr = self.ident()?;
            match name.to_ascii_lowercase().as_str() {
                "sum" => Aggregate::Sum(attr),
                "avg" => Aggregate::Avg(attr),
                "min" => Aggregate::Min(attr),
                "max" => Aggregate::Max(attr),
                other => return Err(err(format!("unknown aggregate `{other}`"))),
            }
        };
        self.expect(Token::RParen)?;
        Ok(agg)
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let mut left = self.conjunction()?;
        while self.keyword_is("or") {
            self.next();
            let right = self.conjunction()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Predicate> {
        let mut left = self.unary()?;
        while self.keyword_is("and") {
            self.next();
            let right = self.unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Predicate> {
        if self.keyword_is("not") {
            self.next();
            return Ok(self.unary()?.not());
        }
        if self.peek() == Some(&Token::LParen) {
            self.next();
            let p = self.predicate()?;
            self.expect(Token::RParen)?;
            return Ok(p);
        }
        self.comparison()
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Number(x)) => Ok(Value::Float(x)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Ident(s))
                if s.eq_ignore_ascii_case("y") || s.eq_ignore_ascii_case("true") =>
            {
                Ok(Value::Bool(true))
            }
            Some(Token::Ident(s))
                if s.eq_ignore_ascii_case("n") || s.eq_ignore_ascii_case("false") =>
            {
                Ok(Value::Bool(false))
            }
            Some(Token::Ident(s)) => Ok(Value::Str(s)),
            other => Err(err(format!("expected literal, found {other:?}"))),
        }
    }

    fn comparison(&mut self) -> Result<Predicate> {
        let attribute = self.ident()?;
        if self.keyword_is("between") {
            // attr BETWEEN lo AND hi  (inclusive on both ends)
            self.next();
            let lo = self.literal()?;
            self.expect_keyword("and")?;
            let hi = self.literal()?;
            return Ok(Predicate::between(attribute, lo, hi));
        }
        if self.keyword_is("in") {
            self.next();
            self.expect(Token::LParen)?;
            let mut values = vec![self.literal()?];
            while self.peek() == Some(&Token::Comma) {
                self.next();
                values.push(self.literal()?);
            }
            self.expect(Token::RParen)?;
            return Ok(Predicate::In { attribute, values });
        }
        let op = match self.next() {
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            other => {
                return Err(err(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let literal = self.literal()?;
        Ok(Predicate::Cmp {
            attribute,
            op,
            literal,
        })
    }
}

/// Parses one query.
/// ```
/// use tdf_querydb::parser::parse;
///
/// let q = parse("SELECT AVG(blood_pressure) FROM t \
///                WHERE height < 165 AND weight > 105").unwrap();
/// assert_eq!(q.aggregate.attribute(), Some("blood_pressure"));
/// ```
pub fn parse(input: &str) -> Result<Query> {
    let mut p = Parser {
        tokens: lex(input)?,
        pos: 0,
    };
    p.expect_keyword("select")?;
    let aggregate = p.aggregate()?;
    p.expect_keyword("from")?;
    let _table = p.ident()?;
    let predicate = if p.keyword_is("where") {
        p.next();
        p.predicate()?
    } else {
        Predicate::True
    };
    if p.peek().is_some() {
        return Err(err(format!("trailing tokens after query: {:?}", p.peek())));
    }
    Ok(Query {
        aggregate,
        predicate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_two_attack_queries() {
        // Verbatim from §3 of the paper (modulo the table name).
        let q1 =
            parse("SELECT COUNT(*) FROM Dataset2 WHERE height < 165 AND weight > 105").unwrap();
        assert_eq!(q1.aggregate, Aggregate::Count);
        let q2 =
            parse("SELECT AVG(blood_pressure) FROM Dataset2 WHERE height < 165 AND weight > 105")
                .unwrap();
        assert_eq!(q2.aggregate, Aggregate::Avg("blood_pressure".into()));
        assert_eq!(q1.predicate, q2.predicate);
    }

    #[test]
    fn parses_all_aggregates() {
        for (src, want) in [
            ("SELECT COUNT(*) FROM t", Aggregate::Count),
            ("SELECT SUM(x) FROM t", Aggregate::Sum("x".into())),
            ("select avg(x) from t", Aggregate::Avg("x".into())),
            ("SELECT MIN(x) FROM t", Aggregate::Min("x".into())),
            ("SELECT MAX(x) FROM t", Aggregate::Max("x".into())),
        ] {
            assert_eq!(parse(src).unwrap().aggregate, want, "{src}");
        }
    }

    #[test]
    fn operator_precedence_and_parens() {
        let q = parse("SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter: a=1 OR (b=2 AND c=3).
        match q.predicate {
            Predicate::Or(_, rhs) => match *rhs {
                Predicate::And(_, _) => {}
                other => panic!("expected AND on the right, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
        let q2 = parse("SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        assert!(matches!(q2.predicate, Predicate::And(_, _)));
    }

    #[test]
    fn not_and_boolean_literals() {
        let q = parse("SELECT COUNT(*) FROM t WHERE NOT aids = Y").unwrap();
        assert!(matches!(q.predicate, Predicate::Not(_)));
        let q2 = parse("SELECT COUNT(*) FROM t WHERE aids = N").unwrap();
        assert_eq!(
            q2.predicate,
            Predicate::Cmp {
                attribute: "aids".into(),
                op: CmpOp::Eq,
                literal: Value::Bool(false)
            }
        );
    }

    #[test]
    fn string_literals_and_negative_numbers() {
        let q = parse("SELECT COUNT(*) FROM t WHERE city = 'Tarragona' AND delta > -2.5").unwrap();
        let s = q.predicate.to_string();
        assert!(s.contains("Tarragona"));
        assert!(s.contains("-2.5"));
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT COUNT(*) FROM").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a ! 1").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a = 'unclosed").is_err());
        assert!(parse("SELECT COUNT(*) FROM t extra junk").is_err());
        assert!(parse("SELECT MEDIAN(x) FROM t").is_err());
    }

    #[test]
    fn between_desugars_to_inclusive_range() {
        let q = parse("SELECT COUNT(*) FROM t WHERE height BETWEEN 160 AND 170").unwrap();
        assert_eq!(q.predicate, Predicate::between("height", 160.0, 170.0));
        // Inclusivity check through evaluation-free structure:
        let s = q.predicate.to_string();
        assert!(s.contains(">= 160") && s.contains("<= 170"), "{s}");
    }

    #[test]
    fn in_lists_parse_and_display() {
        let q = parse("SELECT COUNT(*) FROM t WHERE city IN ('Reus', 'Valls') AND age IN (18, 21)")
            .unwrap();
        let s = q.predicate.to_string();
        assert!(s.contains("city IN ('Reus', 'Valls')"), "{s}");
        assert!(s.contains("age IN (18, 21)"), "{s}");
        // Round-trips through the parser.
        let q2 = parse(&format!("SELECT COUNT(*) FROM t WHERE {s}")).unwrap();
        assert_eq!(q.predicate, q2.predicate);
    }

    #[test]
    fn in_and_between_error_cases() {
        assert!(parse("SELECT COUNT(*) FROM t WHERE a IN ()").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a IN (1,").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a BETWEEN 1").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a BETWEEN 1 OR 2").is_err());
    }

    #[test]
    fn missing_where_is_true_predicate() {
        let q = parse("SELECT SUM(income) FROM census").unwrap();
        assert_eq!(q.predicate, Predicate::True);
    }
}
