//! Disguised states scored through the existing metric harness: a
//! disguise must *improve* respondent privacy on the release view, and —
//! the re-publication half of the tentpole — publishing again after a
//! disguise must not let a cross-epoch attacker re-link the ghosts.

use std::sync::Mutex;
use tdf_disguise::{DisguiseEngine, DisguisePolicy};
use tdf_microdata::synth::PatientConfig;
use tdf_microdata::Dataset;

static PLAN: Mutex<()> = Mutex::new(());

fn quiesced<T>(f: impl FnOnce() -> T) -> T {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    faultkit::set_plan(None);
    f()
}

const SEED: u64 = 0x5C0E;
const USERS: u64 = 10;

fn engine(tag: &str) -> (DisguiseEngine, Dataset) {
    let base = tdf_disguise::owned_patients(
        &PatientConfig {
            n: 300,
            seed: SEED,
            ..Default::default()
        },
        USERS,
    );
    let path = std::env::temp_dir().join(format!("tdf_scoring_{tag}_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let (e, _) =
        DisguiseEngine::open(&path, base, DisguisePolicy::patients_default(), SEED).unwrap();
    let original_release = e.release();
    (e, original_release)
}

#[test]
fn disguising_improves_the_respondent_score_of_the_release() {
    quiesced(|| {
        let (mut e, original) = engine("respondent");
        for user in [2u64, 5, 8] {
            e.disguise(user).unwrap();
        }
        let disguised = e.release();
        let identity = tdf_core::metrics::respondent_score(&original, &original).unwrap();
        let after = tdf_core::metrics::respondent_score(&original, &disguised).unwrap();
        assert!(
            after > identity + 0.2,
            "90/300 rows lost their quasi-identifiers; linkage must drop \
             (identity score {identity:.3}, disguised score {after:.3})"
        );
        let _ = std::fs::remove_file(e.wal_path());
    });
}

#[test]
fn republication_after_disguise_does_not_relink_ghosts() {
    quiesced(|| {
        let (mut e, epoch_a) = engine("linkage");
        // Without a disguise, re-publication is fully trackable: stable
        // masked values link every respondent across epochs.
        let stable =
            tdf_sdc::risk::cross_epoch_linkage_rate(&epoch_a, &epoch_a, &epoch_a, &[0, 1]).unwrap();
        assert!(stable > 0.9, "identical epochs must link (got {stable:.3})");
        for user in [2u64, 5, 8] {
            e.disguise(user).unwrap();
        }
        let epoch_b = e.release();
        let after =
            tdf_sdc::risk::cross_epoch_linkage_rate(&epoch_a, &epoch_a, &epoch_b, &[0, 1]).unwrap();
        // 3 of 10 users (90 of 300 rows) are ghosts with redacted QIs:
        // the attacker keeps tracking the untouched 70% but the ghosts
        // fall out of reach.
        assert!(
            after < 0.78,
            "ghost rows re-linked across the re-publication ({after:.3})"
        );
        assert!(
            stable - after > 0.15,
            "disguise must measurably cut continuity ({stable:.3} -> {after:.3})"
        );
        // Restoring brings continuity back — the disguise, not some side
        // effect, was the cause.
        for user in [2u64, 5, 8] {
            e.restore(user).unwrap();
        }
        let restored = e.release();
        let back = tdf_sdc::risk::cross_epoch_linkage_rate(&epoch_a, &epoch_a, &restored, &[0, 1])
            .unwrap();
        assert!(
            (back - stable).abs() < 1e-9,
            "restore returns the epoch bit-exactly"
        );
        let _ = std::fs::remove_file(e.wal_path());
    });
}
