//! The crash matrix: a crash injected at every `disguise.*` fault site,
//! in every phase — mid-disguise, mid-restore, mid-recovery — followed
//! by a restart, must land on a state bit-identical (row-stream
//! fingerprint) to either the fully-original or the fully-disguised
//! dataset. Never a mix. And `restore ∘ disguise` is the identity.
//!
//! Everything runs pinned at 1 and 4 worker threads: the engine itself
//! is single-writer, but the surrounding stack (obs, faultkit budgets)
//! is shared, and the acceptance criterion pins both widths.

use std::path::PathBuf;
use std::sync::Mutex;
use tdf_disguise::{DisguiseEngine, DisguisePolicy, Error};
use tdf_microdata::synth::PatientConfig;
use tdf_microdata::Dataset;

/// Fault plans are process-global; every test in this binary serialises
/// on this lock.
static PLAN: Mutex<()> = Mutex::new(());

fn with_plan<T>(text: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    faultkit::set_plan(text.map(|t| faultkit::FaultPlan::parse(t).unwrap()));
    let out = f();
    faultkit::set_plan(None);
    out
}

const SEED: u64 = 0xC4A5;
const USERS: u64 = 8;
const USER: u64 = 5;

fn base() -> Dataset {
    tdf_disguise::owned_patients(
        &PatientConfig {
            n: 120,
            seed: SEED,
            ..Default::default()
        },
        USERS,
    )
}

fn wal(tag: &str, threads: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tdf_matrix_{tag}_t{threads}_{}.wal",
        std::process::id()
    ))
}

fn open(path: &std::path::Path) -> DisguiseEngine {
    DisguiseEngine::open(path, base(), DisguisePolicy::patients_default(), SEED)
        .unwrap()
        .0
}

/// Clean-run reference fingerprints: original, and disguised(USER).
fn reference_fps(threads: usize) -> (u64, u64) {
    let path = wal("ref", threads);
    let _ = std::fs::remove_file(&path);
    let mut e = open(&path);
    let fp_original = e.fingerprint();
    e.disguise(USER).unwrap();
    let fp_disguised = e.fingerprint();
    e.restore(USER).unwrap();
    assert_eq!(
        e.fingerprint(),
        fp_original,
        "restore ∘ disguise ≡ identity"
    );
    let _ = std::fs::remove_file(&path);
    (fp_original, fp_disguised)
}

/// One matrix cell: crash `site` during `phase`, restart, and check the
/// recovered fingerprint is exactly the all-or-nothing expectation.
fn run_cell(site: &str, phase: &str, threads: usize) {
    let (fp_original, fp_disguised) = reference_fps(threads);
    let path = wal(&format!("{}_{phase}", site.replace('.', "_")), threads);
    let _ = std::fs::remove_file(&path);
    let plan = format!("{site}=0");

    // Arrange the pre-crash state and fire the crash.
    let expected = match phase {
        "disguise" => {
            let mut e = open(&path);
            faultkit::set_plan(Some(faultkit::FaultPlan::parse(&plan).unwrap()));
            let err = e.disguise(USER).unwrap_err();
            faultkit::set_plan(None);
            assert!(matches!(err, Error::Crashed(_)), "{site}/{phase}: {err}");
            assert!(
                e.is_poisoned(),
                "{site}/{phase}: crash-stop after exhaustion"
            );
            assert_eq!(e.disguise(1), Err(Error::Poisoned));
            // wal_append crashed before the commit point → nothing
            // happened; an apply crash is after it → it fully happened.
            if site == "disguise.wal_append" {
                fp_original
            } else {
                fp_disguised
            }
        }
        "restore" => {
            let mut e = open(&path);
            e.disguise(USER).unwrap();
            faultkit::set_plan(Some(faultkit::FaultPlan::parse(&plan).unwrap()));
            let err = e.restore(USER).unwrap_err();
            faultkit::set_plan(None);
            assert!(matches!(err, Error::Crashed(_)), "{site}/{phase}: {err}");
            if site == "disguise.wal_append" {
                fp_disguised
            } else {
                fp_original
            }
        }
        "recover" => {
            // Commit a disguise (and for the restore site, a restore),
            // then crash the *replay* of that journal on restart.
            let mut e = open(&path);
            e.disguise(USER).unwrap();
            let replay_crashes = if site == "disguise.restore" {
                e.restore(USER).unwrap();
                true
            } else {
                site == "disguise.apply"
            };
            drop(e);
            faultkit::set_plan(Some(faultkit::FaultPlan::parse(&plan).unwrap()));
            let crashed =
                DisguiseEngine::open(&path, base(), DisguisePolicy::patients_default(), SEED);
            faultkit::set_plan(None);
            if replay_crashes {
                assert!(
                    matches!(crashed, Err(Error::Crashed(_))),
                    "{site}/{phase}: recovery must crash-stop, not half-recover"
                );
            } else {
                // wal_append never fires during replay; recovery is clean.
                assert!(crashed.is_ok(), "{site}/{phase}: unexpected crash");
            }
            if site == "disguise.restore" {
                fp_original
            } else {
                fp_disguised
            }
        }
        other => unreachable!("unknown phase {other}"),
    };

    // Restart: recovery must land exactly on the all-or-nothing state.
    let e = open(&path);
    let got = e.fingerprint();
    assert_eq!(
        got, expected,
        "{site}/{phase} at {threads} threads: recovered state is neither \
         fully-original nor fully-disguised"
    );
    assert!(
        got == fp_original || got == fp_disguised,
        "{site}/{phase}: mixed state"
    );
    assert!(!e.is_poisoned());
    let _ = std::fs::remove_file(&path);
}

fn full_matrix(threads: usize) {
    par::with_threads(threads, || {
        for site in ["disguise.wal_append", "disguise.apply"] {
            run_cell(site, "disguise", threads);
        }
        for site in ["disguise.wal_append", "disguise.restore"] {
            run_cell(site, "restore", threads);
        }
        for site in ["disguise.wal_append", "disguise.apply", "disguise.restore"] {
            run_cell(site, "recover", threads);
        }
    });
}

#[test]
fn crash_matrix_is_all_or_nothing_at_1_thread() {
    with_plan(None, || full_matrix(1));
}

#[test]
fn crash_matrix_is_all_or_nothing_at_4_threads() {
    with_plan(None, || full_matrix(4));
}

#[test]
fn restore_of_disguise_is_identity_for_every_user() {
    with_plan(None, || {
        let path = wal("identity_all", 0);
        let _ = std::fs::remove_file(&path);
        let mut e = open(&path);
        let fp0 = e.fingerprint();
        let d0 = base();
        for user in 1..=USERS {
            e.disguise(user).unwrap();
        }
        assert_eq!(e.disguised_users().len(), USERS as usize);
        for user in 1..=USERS {
            e.restore(user).unwrap();
        }
        assert_eq!(e.fingerprint(), fp0, "row stream restored bit-exactly");
        // Belt and braces: cell-by-cell equality, not just the hash.
        for r in 0..d0.num_rows() {
            for c in 0..d0.num_columns() {
                assert_eq!(e.data().value(r, c), d0.value(r, c), "row {r} col {c}");
            }
        }
        let _ = std::fs::remove_file(&path);
    });
}

#[test]
fn repeated_crashes_across_restarts_converge() {
    with_plan(None, || {
        let path = wal("churn", 0);
        let _ = std::fs::remove_file(&path);
        let (fp_original, fp_disguised) = reference_fps(0);
        // Alternate crash-y disguises and restores across restarts; every
        // intermediate recovery must be one of the two legal states.
        for round in 0..4u32 {
            let site = if round % 2 == 0 {
                "disguise.apply"
            } else {
                "disguise.wal_append"
            };
            let mut e = open(&path);
            let want_disguise = !e.is_disguised(USER);
            faultkit::set_plan(Some(
                faultkit::FaultPlan::parse(&format!("{site}=0")).unwrap(),
            ));
            let _ = if want_disguise {
                e.disguise(USER)
            } else {
                e.restore(USER)
            };
            faultkit::set_plan(None);
            drop(e);
            let recovered = open(&path);
            let got = recovered.fingerprint();
            assert!(
                got == fp_original || got == fp_disguised,
                "round {round}: mixed state after crash at {site}"
            );
        }
        let _ = std::fs::remove_file(&path);
    });
}
