//! Adversarial corpus over journal files — the WAL counterpart of the
//! TSV mutation suite: byte flips at a stride, truncations at every
//! interesting boundary, and garbage tails. The contract under attack:
//!
//! * the strict reader ([`tdf_disguise::wal::read_all`]) turns *any*
//!   damage into a typed [`Error::Wal`], never wrong records and never
//!   a panic;
//! * recovery ([`Journal::open`]) keeps exactly the longest clean prefix
//!   of committed transactions — so a disguise is replayed in full or
//!   not at all, never partially.

use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;
use tdf_disguise::wal::{read_all, CellOp, Journal, OpKind, TxnRecord};
use tdf_disguise::Error;
use tdf_microdata::Value;

static PLAN: Mutex<()> = Mutex::new(());

fn quiesced<T>(f: impl FnOnce() -> T) -> T {
    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    faultkit::set_plan(None);
    f()
}

fn rec(txn_id: u64) -> TxnRecord {
    TxnRecord {
        txn_id,
        kind: if txn_id % 2 == 0 {
            OpKind::Disguise
        } else {
            OpKind::Restore
        },
        user: 10 + txn_id,
        ops: (0..5)
            .map(|i| CellOp {
                row: txn_id * 16 + i,
                col: (i % 5) as u32,
                before: match i % 4 {
                    0 => Value::Float(171.5 + i as f64),
                    1 => Value::Int(7 + i as i64),
                    2 => Value::Bool(i % 2 == 0),
                    _ => Value::Str(format!("cell-{i}")),
                },
                after: if i % 2 == 0 {
                    Value::Missing
                } else {
                    Value::Int((1i64 << 48) + i as i64)
                },
            })
            .collect(),
    }
}

/// A clean 3-entry journal plus the byte offsets where each frame ends.
fn build(tag: &str) -> (PathBuf, Vec<u8>, Vec<usize>) {
    let path = std::env::temp_dir().join(format!("tdf_adv_{tag}_{}.wal", std::process::id()));
    let _ = fs::remove_file(&path);
    let (mut j, _, _) = Journal::open(&path).unwrap();
    let mut ends = Vec::new();
    for t in 0..3 {
        j.append(&rec(t)).unwrap();
        ends.push(j.committed_len() as usize);
    }
    drop(j);
    let bytes = fs::read(&path).unwrap();
    assert_eq!(*ends.last().unwrap(), bytes.len());
    (path, bytes, ends)
}

#[test]
fn every_flipped_byte_fails_strictly_and_recovers_to_a_clean_prefix() {
    quiesced(|| {
        let (path, bytes, ends) = build("flip");
        let magic = 8usize;
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            fs::write(&path, &bad).unwrap();
            if pos < magic {
                assert!(
                    matches!(read_all(&path), Err(Error::Wal(_))),
                    "flip at {pos}: magic damage must fail closed"
                );
                assert!(Journal::open(&path).is_err(), "flip at {pos}");
                continue;
            }
            // Any flip past the magic damages exactly one frame: the
            // strict read refuses the file, recovery keeps the entries
            // before that frame and drops it and everything after.
            assert!(
                matches!(read_all(&path), Err(Error::Wal(_))),
                "flip at {pos} must not read back as clean"
            );
            let expect: Vec<TxnRecord> = (0..3)
                .take_while(|&t| pos >= ends[t as usize])
                .map(rec)
                .collect();
            let (_, got, report) = Journal::open(&path).unwrap();
            assert_eq!(got, expect, "flip at {pos}: wrong recovered prefix");
            assert!(report.repaired, "flip at {pos}: tail must be truncated");
            // After repair, the strict reader agrees with recovery.
            assert_eq!(read_all(&path).unwrap(), expect, "flip at {pos}");
        }
        let _ = fs::remove_file(&path);
    });
}

#[test]
fn every_truncation_keeps_exactly_the_committed_whole_entries() {
    quiesced(|| {
        let (path, bytes, ends) = build("trunc");
        let mut cuts: Vec<usize> = (8..bytes.len()).step_by(11).collect();
        // Frame boundaries and their neighbours are the interesting cuts.
        for &e in &ends {
            for d in [0usize, 1, 4, 12] {
                cuts.push(e.saturating_sub(d));
                cuts.push((e + d).min(bytes.len()));
            }
        }
        for keep in cuts {
            fs::write(&path, &bytes[..keep]).unwrap();
            let full_entries = ends.iter().filter(|&&e| e <= keep).count();
            let expect: Vec<TxnRecord> = (0..full_entries as u64).map(rec).collect();
            // A cut exactly at the magic or a frame boundary leaves a
            // clean (shorter) journal; anywhere else is a torn tail.
            if keep == 8 || ends.contains(&keep) {
                assert_eq!(read_all(&path).unwrap(), expect, "cut at {keep}");
            } else {
                assert!(
                    matches!(read_all(&path), Err(Error::Wal(_))),
                    "cut at {keep}: strict read of a torn file must fail"
                );
            }
            let (_, got, _) = Journal::open(&path).unwrap();
            assert_eq!(got, expect, "cut at {keep}: partial entry survived");
        }
        let _ = fs::remove_file(&path);
    });
}

#[test]
fn garbage_tails_and_foreign_files_never_parse() {
    quiesced(|| {
        let (path, bytes, _) = build("garbage");
        // Random-looking garbage appended after clean entries.
        let mut noisy = bytes.clone();
        noisy.extend_from_slice(&[0xAB; 37]);
        fs::write(&path, &noisy).unwrap();
        assert!(matches!(read_all(&path), Err(Error::Wal(_))));
        let (_, got, report) = Journal::open(&path).unwrap();
        assert_eq!(got.len(), 3, "all committed entries survive");
        assert_eq!(report.truncated_bytes, 37);
        // A length prefix claiming more than the file holds.
        let mut huge = bytes.clone();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &huge).unwrap();
        assert!(matches!(read_all(&path), Err(Error::Wal(_))));
        let (_, got, _) = Journal::open(&path).unwrap();
        assert_eq!(got.len(), 3);
        // A file that simply is not a journal.
        fs::write(&path, b"height\tweight\n171.5\t80.0\n").unwrap();
        assert!(matches!(read_all(&path), Err(Error::Wal(_))));
        assert!(matches!(Journal::open(&path), Err(Error::Wal(_))));
        let _ = fs::remove_file(&path);
    });
}

#[test]
fn recovered_journal_keeps_accepting_appends() {
    quiesced(|| {
        let (path, bytes, ends) = build("resume");
        // Tear the last entry in half, recover, then append two more.
        fs::write(&path, &bytes[..(ends[1] + ends[2]) / 2]).unwrap();
        let (mut j, got, report) = Journal::open(&path).unwrap();
        assert_eq!(got.len(), 2);
        assert!(report.repaired);
        j.append(&rec(7)).unwrap();
        j.append(&rec(8)).unwrap();
        drop(j);
        let all = read_all(&path).unwrap();
        assert_eq!(
            all.iter().map(|r| r.txn_id).collect::<Vec<_>>(),
            vec![0, 1, 7, 8]
        );
        let _ = fs::remove_file(&path);
    });
}
